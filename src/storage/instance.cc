#include "storage/instance.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <utility>

namespace spider {

namespace {
const std::vector<int32_t> kEmptyRows;
}  // namespace

int32_t Instance::RelationData::FindInBucket(size_t hash,
                                             const Tuple& tuple) const {
  auto it = dedup.find(hash);
  if (it == dedup.end()) return -1;
  for (int32_t row : it->second) {
    if (rows[row] == tuple) return row;
  }
  return -1;
}

Instance::Instance(const Schema* schema) : schema_(schema) {
  SPIDER_CHECK(schema != nullptr, "instance requires a schema");
  relations_.resize(schema->size());
  for (size_t r = 0; r < relations_.size(); ++r) {
    size_t arity = schema->relation(static_cast<RelationId>(r)).arity();
    relations_[r].indexes.resize(arity);
    relations_[r].index_built.assign(arity, false);
  }
}

InsertResult Instance::Insert(RelationId rel, Tuple tuple) {
  SPIDER_CHECK(rel >= 0 && static_cast<size_t>(rel) < relations_.size(),
               "relation id out of range");
  const RelationDef& def = schema_->relation(rel);
  SPIDER_CHECK(tuple.arity() == def.arity(),
               "arity mismatch inserting into '" + def.name() + "': got " +
                   std::to_string(tuple.arity()) + ", want " +
                   std::to_string(def.arity()));
  RelationData& data = relations_[rel];
  size_t hash = tuple.Hash();
  int32_t existing = data.FindInBucket(hash, tuple);
  if (existing >= 0) return {existing, false};
  int32_t row = static_cast<int32_t>(data.rows.size());
  // Maintain any already-built indexes incrementally.
  for (size_t col = 0; col < def.arity(); ++col) {
    if (data.index_built[col]) {
      data.indexes[col][tuple.at(col)].push_back(row);
    }
  }
  data.dedup[hash].push_back(row);
  data.rows.push_back(std::move(tuple));
  ++version_;
  return {row, true};
}

InsertResult Instance::Insert(const std::string& relation,
                              std::vector<Value> values) {
  return Insert(schema_->Require(relation), Tuple(std::move(values)));
}

std::optional<int32_t> Instance::FindRow(RelationId rel,
                                         const Tuple& tuple) const {
  const RelationData& data = relations_[rel];
  int32_t row = data.FindInBucket(tuple.Hash(), tuple);
  if (row < 0) return std::nullopt;
  return row;
}

std::optional<int32_t> Instance::FindRowRef(
    RelationId rel, const std::vector<const Value*>& cells) const {
  const RelationData& data = relations_[rel];
  SPIDER_CHECK(cells.size() == schema_->relation(rel).arity(),
               "FindRowRef arity mismatch for relation '" +
                   schema_->relation(rel).name() + "'");
  // Must hash exactly like Tuple::Hash to land in the same dedup bucket.
  size_t hash = kTupleHashSeed;
  for (const Value* v : cells) hash = HashCombine(hash, v->Hash());
  auto it = data.dedup.find(hash);
  if (it == data.dedup.end()) return std::nullopt;
  for (int32_t row : it->second) {
    const Tuple& candidate = data.rows[row];
    bool equal = true;
    for (size_t col = 0; col < cells.size(); ++col) {
      if (!(candidate.at(col) == *cells[col])) {
        equal = false;
        break;
      }
    }
    if (equal) return row;
  }
  return std::nullopt;
}

size_t Instance::TotalTuples() const {
  size_t total = 0;
  for (const RelationData& data : relations_) total += data.rows.size();
  return total;
}

void Instance::EnsureIndex(RelationId rel, int col) const {
  const RelationData& data = relations_[rel];
  if (data.index_built[col]) return;
  auto& index = data.indexes[col];
  index.clear();
  for (int32_t row = 0; row < static_cast<int32_t>(data.rows.size()); ++row) {
    index[data.rows[row].at(col)].push_back(row);
  }
  data.index_built[col] = true;
}

void Instance::WarmIndexes() const {
  for (size_t r = 0; r < relations_.size(); ++r) {
    size_t arity = schema_->relation(static_cast<RelationId>(r)).arity();
    for (size_t col = 0; col < arity; ++col) {
      EnsureIndex(static_cast<RelationId>(r), static_cast<int>(col));
    }
  }
}

const std::vector<int32_t>& Instance::Probe(RelationId rel, int col,
                                            const Value& v) const {
  EnsureIndex(rel, col);
  const auto& index = relations_[rel].indexes[col];
  auto it = index.find(v);
  return it == index.end() ? kEmptyRows : it->second;
}

size_t Instance::NumDistinct(RelationId rel, int col) const {
  EnsureIndex(rel, col);
  return relations_[rel].indexes[col].size();
}

bool Instance::ContainsNulls() const {
  for (const RelationData& data : relations_) {
    for (const Tuple& t : data.rows) {
      if (t.ContainsNulls()) return true;
    }
  }
  return false;
}

size_t Instance::ApplySubstitution(NullId from, const Value& to) {
  const Value from_value = Value::Null(from.id);
  size_t rewritten = 0;
  ++version_;
  for (RelationData& data : relations_) {
    bool touched = false;
    std::vector<Tuple> rows = std::move(data.rows);
    data.rows.clear();
    data.dedup.clear();
    for (size_t col = 0; col < data.index_built.size(); ++col) {
      data.index_built[col] = false;
      data.indexes[col].clear();
    }
    for (Tuple& t : rows) {
      for (size_t i = 0; i < t.arity(); ++i) {
        if (t.at(i) == from_value) {
          t.at(i) = to;
          ++rewritten;
          touched = true;
        }
      }
      size_t hash = t.Hash();
      if (data.FindInBucket(hash, t) < 0) {
        data.dedup[hash].push_back(static_cast<int32_t>(data.rows.size()));
        data.rows.push_back(std::move(t));
      }
    }
    (void)touched;
  }
  return rewritten;
}

namespace {

/// Removes `id` from an unsorted candidate list by swap-with-last.
void DropFromBucket(std::vector<int32_t>* list, int32_t id) {
  for (int32_t& entry : *list) {
    if (entry == id) {
      entry = list->back();
      list->pop_back();
      return;
    }
  }
}

/// Removes `id` from a row-id-sorted posting list, keeping it sorted.
void EraseSorted(std::vector<int32_t>* list, int32_t id) {
  auto it = std::lower_bound(list->begin(), list->end(), id);
  if (it != list->end() && *it == id) list->erase(it);
}

/// Renumbers `from` to `to` (with to < from) in a sorted posting list.
void MoveSorted(std::vector<int32_t>* list, int32_t from, int32_t to) {
  EraseSorted(list, from);
  list->insert(std::lower_bound(list->begin(), list->end(), to), to);
}

}  // namespace

size_t Instance::EraseRows(RelationId rel, std::vector<int32_t> rows) {
  SPIDER_CHECK(rel >= 0 && static_cast<size_t>(rel) < relations_.size(),
               "relation id out of range");
  if (rows.empty()) return 0;
  RelationData& data = relations_[rel];
  std::vector<bool> dead(data.rows.size(), false);
  size_t removed = 0;
  for (int32_t row : rows) {
    SPIDER_CHECK(row >= 0 && static_cast<size_t>(row) < data.rows.size(),
                 "row index out of range in EraseRows");
    if (!dead[row]) {
      dead[row] = true;
      ++removed;
    }
  }
  if (removed == 0) return 0;
  ++version_;

  // Erasing a large fraction: rebuilding dedup from scratch costs about the
  // same as maintaining it and leaves nothing stale, so take the simple
  // path (indexes invalidate and rebuild lazily on the next probe).
  if (removed * 4 >= data.rows.size()) {
    std::vector<Tuple> old_rows = std::move(data.rows);
    data.rows.clear();
    data.dedup.clear();
    for (size_t col = 0; col < data.index_built.size(); ++col) {
      data.index_built[col] = false;
      data.indexes[col].clear();
    }
    for (size_t row = 0; row < old_rows.size(); ++row) {
      if (dead[row]) continue;
      Tuple& t = old_rows[row];
      data.dedup[t.Hash()].push_back(static_cast<int32_t>(data.rows.size()));
      data.rows.push_back(std::move(t));
    }
    return removed;
  }

  // Small batch: maintain dedup and built indexes in place so the cost
  // scales with the batch, not the relation (the incremental chaser's
  // deletion path retracts a few hundred rows from relations of tens of
  // thousands). Compaction fills each hole with a surviving row from the
  // tail — remaining-row ORDER is not preserved — and every maintained
  // posting list ends up exactly as a fresh EnsureIndex rebuild would
  // produce it (sorted by row id), so behavior cannot depend on WHEN an
  // index was built relative to the erase.
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

  // Plan the compaction: holes ascending, donors from the live tail.
  std::vector<std::pair<int32_t, int32_t>> moves;  // {from, to}
  moves.reserve(removed);
  int32_t tail = static_cast<int32_t>(data.rows.size()) - 1;
  for (int32_t hole : rows) {
    while (tail > hole && dead[tail]) --tail;
    if (tail <= hole) break;
    moves.emplace_back(tail, hole);
    --tail;
  }

  // Dedup: drop dead rows, renumber donors (bucket order is irrelevant —
  // buckets hold hash-collision candidates, at most one of which matches).
  for (int32_t row : rows) {
    auto it = data.dedup.find(data.rows[row].Hash());
    if (it == data.dedup.end()) continue;
    DropFromBucket(&it->second, row);
    if (it->second.empty()) data.dedup.erase(it);
  }
  for (const auto& [from, to] : moves) {
    auto it = data.dedup.find(data.rows[from].Hash());
    if (it == data.dedup.end()) continue;
    for (int32_t& entry : it->second) {
      if (entry == from) entry = to;
    }
  }

  // Built column indexes: maintain in place unless the disturbed posting
  // lists sum to more work than the O(rows) lazy rebuild the index would
  // otherwise get — low-cardinality columns hit that bound, key-like
  // columns never do.
  for (size_t col = 0; col < data.index_built.size(); ++col) {
    if (!data.index_built[col]) continue;
    auto& index = data.indexes[col];
    size_t touched = 0;
    for (int32_t row : rows) {
      auto it = index.find(data.rows[row].at(col));
      if (it != index.end()) touched += it->second.size();
    }
    for (const auto& [from, to] : moves) {
      auto it = index.find(data.rows[from].at(col));
      if (it != index.end()) touched += it->second.size();
    }
    if (touched > data.rows.size()) {
      data.index_built[col] = false;
      index.clear();
      continue;
    }
    for (int32_t row : rows) {
      auto it = index.find(data.rows[row].at(col));
      if (it == index.end()) continue;
      EraseSorted(&it->second, row);
      if (it->second.empty()) index.erase(it);
    }
    for (const auto& [from, to] : moves) {
      auto it = index.find(data.rows[from].at(col));
      if (it != index.end()) MoveSorted(&it->second, from, to);
    }
  }

  // Physically move the donors and truncate the dead tail.
  for (const auto& [from, to] : moves) {
    data.rows[to] = std::move(data.rows[from]);
  }
  data.rows.resize(data.rows.size() - removed);
  return removed;
}

bool Instance::Erase(RelationId rel, const Tuple& tuple) {
  std::optional<int32_t> row = FindRow(rel, tuple);
  if (!row.has_value()) return false;
  return EraseRows(rel, {*row}) == 1;
}

void Instance::ReplaceContents(Instance&& other) {
  SPIDER_CHECK(schema_ == other.schema_ ||
                   schema_->size() == other.schema_->size(),
               "ReplaceContents requires instances over the same schema");
  uint64_t next = std::max(version_, other.version_) + 1;
  relations_ = std::move(other.relations_);
  version_ = next;
}

std::string Instance::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Instance& instance) {
  for (size_t r = 0; r < instance.NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    const RelationDef& def = instance.schema().relation(rel);
    for (const Tuple& t : instance.tuples(rel)) {
      os << def.name() << t << '\n';
    }
  }
  return os;
}

}  // namespace spider
