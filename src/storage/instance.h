#ifndef SPIDER_STORAGE_INSTANCE_H_
#define SPIDER_STORAGE_INSTANCE_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/tuple.h"
#include "base/value.h"
#include "catalog/schema.h"

namespace spider {

/// Outcome of Instance::Insert.
struct InsertResult {
  int32_t row = -1;        ///< Row index of the (new or pre-existing) tuple.
  bool inserted = false;   ///< True when the tuple was not already present.
};

/// A database instance over a Schema: one duplicate-free bag of tuples per
/// relation, with lazily built per-column hash indexes.
///
/// Tuples are identified by (relation id, row index); rows are stable under
/// insertion. Three operations mutate content beyond Insert:
/// ApplySubstitution (the egd chase unifying labeled nulls), EraseRows (the
/// incremental maintainer retracting tuples) and ReplaceContents (wholesale
/// swap-in of a re-chased instance). All three make row indexes unstable
/// (EraseRows keeps small-batch erases index-maintaining instead of
/// index-invalidating); all content mutations bump version() — PlanCache
/// and the incremental route cache key on it, so a missed bump would be
/// silent stale-plan corruption (tests/storage/instance_test.cc audits every
/// mutation path).
class Instance {
 public:
  explicit Instance(const Schema* schema);

  const Schema& schema() const { return *schema_; }

  /// Inserts a tuple (deduplicating). Throws SpiderError on arity mismatch.
  InsertResult Insert(RelationId rel, Tuple tuple);

  /// Convenience: inserts into the named relation.
  InsertResult Insert(const std::string& relation, std::vector<Value> values);

  const std::vector<Tuple>& tuples(RelationId rel) const {
    return relations_[rel].rows;
  }
  const Tuple& tuple(RelationId rel, int32_t row) const {
    return relations_[rel].rows[row];
  }

  /// Returns the row index of the given tuple in `rel`, if present.
  std::optional<int32_t> FindRow(RelationId rel, const Tuple& tuple) const;

  /// FindRow without materializing a Tuple: `cells` holds one borrowed Value
  /// per column (all non-null, arity-checked). This is the evaluator's
  /// fully-bound point-lookup path — the cells point into the query's terms
  /// and binding, so the exact-tuple check costs zero Value copies. Hashes
  /// exactly like Tuple::Hash, so it sees the same dedup buckets Insert
  /// maintains.
  std::optional<int32_t> FindRowRef(RelationId rel,
                                    const std::vector<const Value*>& cells)
      const;

  size_t NumRelations() const { return relations_.size(); }
  size_t NumTuples(RelationId rel) const { return relations_[rel].rows.size(); }
  size_t TotalTuples() const;

  /// Rows of `rel` whose column `col` equals `v`, served from a hash index
  /// (built on first use, maintained incrementally afterwards). The returned
  /// reference is invalidated by the next mutation of this instance.
  const std::vector<int32_t>& Probe(RelationId rel, int col,
                                    const Value& v) const;

  /// Length of the posting list for (rel, col, v) — the exact number of rows
  /// whose column `col` equals `v`. Like Probe, this builds only that one
  /// column's index on first use; it never forces a full WarmIndexes pass,
  /// so the planner can ask for one statistic without paying for the rest.
  size_t PostingListSize(RelationId rel, int col, const Value& v) const {
    return Probe(rel, col, v).size();
  }

  /// Number of distinct values in column `col` of `rel` (the column index's
  /// bucket count; builds only that column's index on first use). The
  /// selectivity planner uses NumTuples/NumDistinct as the expected posting
  /// length for a column that will be bound to a yet-unknown value.
  size_t NumDistinct(RelationId rel, int col) const;

  /// Monotonic content version: bumped by every content mutation — Insert
  /// (when a tuple is actually added), ApplySubstitution, EraseRows/Erase
  /// (when rows are actually removed) and ReplaceContents. PlanCache entries
  /// record the version they were planned against and re-plan when it moves;
  /// the incremental route cache likewise discards entries from old versions.
  uint64_t version() const { return version_; }

  /// Builds every per-column index now. Probe's lazy build mutates shared
  /// (mutable) state, so an instance that will be read from several exec
  /// workers concurrently must be warmed first; afterwards concurrent
  /// Probe/tuple reads are safe as long as nobody mutates the instance.
  void WarmIndexes() const;

  /// True when some tuple of the instance contains a labeled null.
  bool ContainsNulls() const;

  /// Replaces every occurrence of labeled null `from` with `to` across all
  /// relations, re-deduplicating rows and rebuilding indexes. Returns the
  /// number of cells rewritten. Row indexes are NOT stable across this call.
  size_t ApplySubstitution(NullId from, const Value& to);

  /// Removes the given rows of `rel` (duplicates tolerated, out-of-range
  /// rejected), filling each hole with a surviving row from the tail; the
  /// ORDER of remaining rows is unspecified and row indexes are NOT stable
  /// across this call. Small batches maintain the dedup table and built
  /// indexes in place (cost scales with the batch, and every maintained
  /// posting list matches what a fresh rebuild would produce); erasing a
  /// large fraction of the relation rebuilds instead. Returns the number of
  /// rows removed.
  size_t EraseRows(RelationId rel, std::vector<int32_t> rows);

  /// Removes the tuple from `rel` if present. Returns true when a row was
  /// removed. Row indexes of the relation are NOT stable across this call.
  bool Erase(RelationId rel, const Tuple& tuple);

  /// Replaces this instance's content with `other`'s (same schema required).
  /// The version is bumped STRICTLY ABOVE both instances' versions rather
  /// than copied, so plan-cache entries keyed on (instance, version) can
  /// never alias the pre-replacement content — the incremental maintainer
  /// uses this to swap in a full re-chase without reseating any pointer.
  void ReplaceContents(Instance&& other);

  /// Renders the full instance, one `Rel(v1, ...)` fact per line.
  std::string ToString() const;

 private:
  struct RelationData {
    std::vector<Tuple> rows;
    // Hash -> candidate row indexes (tuples are not duplicated; candidates
    // are verified against `rows`).
    std::unordered_map<size_t, std::vector<int32_t>> dedup;
    /// Returns the row equal to `tuple` within the bucket, or -1.
    int32_t FindInBucket(size_t hash, const Tuple& tuple) const;
    // Lazily built: per column, value -> row indexes.
    mutable std::vector<
        std::unordered_map<Value, std::vector<int32_t>, ValueHash>>
        indexes;
    mutable std::vector<bool> index_built;
  };

  void EnsureIndex(RelationId rel, int col) const;

  const Schema* schema_;
  std::vector<RelationData> relations_;
  uint64_t version_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Instance& instance);

}  // namespace spider

#endif  // SPIDER_STORAGE_INSTANCE_H_
