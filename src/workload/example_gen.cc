#include "workload/example_gen.h"

#include <string>

#include "base/status.h"
#include "query/binding.h"

namespace spider {

size_t GenerateIllustrativeSource(Scenario* scenario,
                                  const ExampleGenOptions& options) {
  SPIDER_CHECK(scenario != nullptr && scenario->mapping != nullptr &&
                   scenario->source != nullptr,
               "GenerateIllustrativeSource requires a populated scenario");
  const SchemaMapping& mapping = *scenario->mapping;
  Instance* source = scenario->source.get();
  size_t inserted = 0;
  int64_t counter = 1;
  for (TgdId id : mapping.st_tgds()) {
    const Tgd& tgd = mapping.tgd(id);
    for (int row = 0; row < options.rows_per_tgd; ++row) {
      Binding h(tgd.num_vars());
      for (VarId v : tgd.UniversalVars()) {
        if (options.use_integers) {
          h.Set(v, Value::Int(counter++));
        } else {
          h.Set(v, Value::Str(tgd.var_names()[v] + "_" + tgd.name() + "_" +
                              std::to_string(row)));
        }
      }
      for (const Atom& atom : tgd.lhs()) {
        if (source->Insert(atom.relation, h.Instantiate(atom)).inserted) {
          ++inserted;
        }
      }
    }
  }
  return inserted;
}

}  // namespace spider
