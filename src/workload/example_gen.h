#ifndef SPIDER_WORKLOAD_EXAMPLE_GEN_H_
#define SPIDER_WORKLOAD_EXAMPLE_GEN_H_

#include <cstdint>

#include "mapping/scenario.h"

namespace spider {

/// Generates a small ILLUSTRATIVE source instance for a mapping — the
/// complementary functionality of Yan et al. (SIGMOD'01) that §5 discusses:
/// instead of debugging with whatever data the user supplies, synthesize a
/// compact instance that exercises every source-to-target tgd, so that
/// every dependency's behaviour is visible in the solution.
///
/// For every s-t tgd and every one of `rows_per_tgd` examples, each
/// universal variable is assigned a fresh constant (`<var>_<k>` strings, or
/// sequential integers when `use_integers`), and the instantiated LHS atoms
/// are inserted into the source. Join conditions hold by construction
/// (shared variables share values); distinct tgds never share values, so a
/// probed target fact's routes exercise exactly one tgd (plus whatever the
/// target tgds derive).
struct ExampleGenOptions {
  int rows_per_tgd = 1;
  bool use_integers = false;
  uint64_t seed = 1;  ///< Reserved for future randomized variants.
};

/// Appends the generated facts to scenario->source. Returns the number of
/// facts inserted. The scenario's target is untouched (run ChaseScenario
/// afterwards).
size_t GenerateIllustrativeSource(Scenario* scenario,
                                  const ExampleGenOptions& options = {});

}  // namespace spider

#endif  // SPIDER_WORKLOAD_EXAMPLE_GEN_H_
