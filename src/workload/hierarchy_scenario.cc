#include "workload/hierarchy_scenario.h"

#include <unordered_set>

#include "base/status.h"
#include "workload/relational_scenario.h"
#include "workload/rng.h"
#include "workload/tpch.h"

namespace spider {

namespace {

/// The five nesting levels of the deep hierarchy, shredded: each level
/// carries its own key, its parent's key, and one payload attribute.
void AddDeepRelations(Schema* schema, const std::string& suffix) {
  schema->AddRelation("Region" + suffix, {"regionkey", "rname"});
  schema->AddRelation("Nation" + suffix, {"nationkey", "regionkey", "nname"});
  schema->AddRelation("Customer" + suffix,
                      {"custkey", "nationkey", "cname"});
  schema->AddRelation("Orders" + suffix, {"orderkey", "custkey", "ostatus"});
  schema->AddRelation("Lineitem" + suffix,
                      {"linekey", "orderkey", "quantity"});
}

constexpr const char* kDepthRelation[] = {"Region", "Nation", "Customer",
                                          "Orders", "Lineitem"};

}  // namespace

Scenario BuildDeepHierarchyScenario(const DeepHierarchyOptions& options) {
  Schema source("source");
  Schema target("target");
  AddDeepRelations(&source, "0");
  AddDeepRelations(&target, "1");

  Scenario scenario;
  scenario.mapping =
      std::make_unique<SchemaMapping>(std::move(source), std::move(target));
  // One s-t tgd copying the entire hierarchy; the joins reconstruct the
  // root-to-leaf path of the nested representation.
  AddCopyTgd(scenario.mapping.get(), "deep_copy",
             {"Region", "Nation", "Customer", "Orders", "Lineitem"}, "0", "1",
             {{0, "regionkey", 1, "regionkey"},
              {1, "nationkey", 2, "nationkey"},
              {2, "custkey", 3, "custkey"},
              {3, "orderkey", 4, "orderkey"}},
             /*source_to_target=*/true);

  scenario.source = std::make_unique<Instance>(&scenario.mapping->source());
  scenario.target = std::make_unique<Instance>(&scenario.mapping->target());

  Instance* I = scenario.source.get();
  const Schema& s = scenario.mapping->source();
  Rng rng(options.seed);
  int nation_id = 0;
  int cust_id = 0;
  int order_id = 0;
  int line_id = 0;
  for (int r = 0; r < options.regions; ++r) {
    I->Insert(s.Require("Region0"),
              Tuple({Value::Int(r), Value::Str("region#" + std::to_string(r))}));
    for (int n = 0; n < options.fanout; ++n) {
      int nk = nation_id++;
      I->Insert(s.Require("Nation0"),
                Tuple({Value::Int(nk), Value::Int(r),
                       Value::Str("nation#" + std::to_string(nk))}));
      for (int c = 0; c < options.fanout; ++c) {
        int ck = cust_id++;
        I->Insert(s.Require("Customer0"),
                  Tuple({Value::Int(ck), Value::Int(nk),
                         Value::Str("customer#" + std::to_string(ck))}));
        for (int o = 0; o < options.fanout; ++o) {
          int ok = order_id++;
          I->Insert(s.Require("Orders0"),
                    Tuple({Value::Int(ok), Value::Int(ck),
                           Value::Str(rng.Below(2) == 0 ? "O" : "F")}));
          for (int l = 0; l < options.fanout; ++l) {
            int lk = line_id++;
            I->Insert(s.Require("Lineitem0"),
                      Tuple({Value::Int(lk), Value::Int(ok),
                             Value::Int(static_cast<int64_t>(
                                 rng.Below(50) + 1))}));
          }
        }
      }
    }
  }
  return scenario;
}

std::vector<FactRef> SelectDepthFacts(const Scenario& scenario, int depth,
                                      size_t count, uint64_t seed) {
  SPIDER_CHECK(depth >= 1 && depth <= 5, "depth must be in 1..5");
  const Instance& target = *scenario.target;
  RelationId rel = scenario.mapping->target().Require(
      std::string(kDepthRelation[depth - 1]) + "1");
  size_t available = target.NumTuples(rel);
  SPIDER_CHECK(available > 0, "no facts at requested depth (chase first?)");
  Rng rng(seed);
  std::vector<FactRef> facts;
  std::unordered_set<FactRef, FactRefHash> seen;
  size_t attempts = 0;
  while (facts.size() < count && facts.size() < available &&
         attempts < count * 50 + 100) {
    ++attempts;
    FactRef fact{Side::kTarget, rel,
                 static_cast<int32_t>(rng.Below(available))};
    if (seen.insert(fact).second) facts.push_back(fact);
  }
  return facts;
}

Scenario BuildFlatHierarchyScenario(const FlatHierarchyOptions& options) {
  // Shredded encoding: every relation gets a leading rootid column shared
  // with all other relations of its document; tgds join through the root.
  Schema source("source");
  Schema target("target");
  auto add_flat = [](Schema* schema, const std::string& suffix) {
    Schema plain("plain");
    AddTpchRelations(&plain, suffix);
    for (const RelationDef& rel : plain.relations()) {
      std::vector<std::string> attrs = {"rootid"};
      attrs.insert(attrs.end(), rel.attributes().begin(),
                   rel.attributes().end());
      schema->AddRelation(rel.name(), std::move(attrs));
    }
  };
  add_flat(&source, "0");
  for (int g = 1; g <= options.groups; ++g) {
    add_flat(&target, std::to_string(g));
  }

  Scenario scenario;
  scenario.mapping =
      std::make_unique<SchemaMapping>(std::move(source), std::move(target));

  std::vector<CopyTemplate> templates = TpchJoinTemplates(options.joins);
  // Join every relation of a template to the first through the root.
  for (CopyTemplate& t : templates) {
    for (int i = 1; i < static_cast<int>(t.relations.size()); ++i) {
      t.joins.push_back(JoinSpec{0, "rootid", i, "rootid"});
    }
  }
  int counter = 0;
  for (const CopyTemplate& t : templates) {
    AddCopyTgd(scenario.mapping.get(), "st" + std::to_string(++counter),
               t.relations, "0", "1", t.joins, /*source_to_target=*/true);
  }
  for (int g = 1; g < options.groups; ++g) {
    counter = 0;
    for (const CopyTemplate& t : templates) {
      AddCopyTgd(scenario.mapping.get(),
                 "t" + std::to_string(g) + "_" + std::to_string(++counter),
                 t.relations, std::to_string(g), std::to_string(g + 1),
                 t.joins, /*source_to_target=*/false);
    }
  }

  scenario.source = std::make_unique<Instance>(&scenario.mapping->source());
  scenario.target = std::make_unique<Instance>(&scenario.mapping->target());

  // Generate plain TPC-H data, then shred it under a single document root.
  Schema plain_schema("plain");
  AddTpchRelations(&plain_schema, "0");
  Instance plain(&plain_schema);
  TpchSizes sizes;
  sizes.units = options.units;
  GenerateTpchData(&plain, "0", sizes, options.seed);
  for (size_t r = 0; r < plain.NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    RelationId dst =
        scenario.mapping->source().Require(plain_schema.relation(rel).name());
    for (const Tuple& t : plain.tuples(rel)) {
      std::vector<Value> values = {Value::Int(0)};
      values.insert(values.end(), t.values().begin(), t.values().end());
      scenario.source->Insert(dst, Tuple(std::move(values)));
    }
  }
  return scenario;
}

}  // namespace spider
