#ifndef SPIDER_WORKLOAD_HIERARCHY_SCENARIO_H_
#define SPIDER_WORKLOAD_HIERARCHY_SCENARIO_H_

#include <cstdint>
#include <vector>

#include "base/tuple.h"
#include "mapping/scenario.h"

namespace spider {

/// The paper's deep-hierarchy scenario (§4.1): source and target are the
/// nesting Region/Nation/Customer/Orders/Lineitem, and Σst is a single tgd
/// copying the whole hierarchy (Σt is empty). The XML documents of the paper
/// are represented by shredding: each nesting level is a relation carrying
/// its parent's key, and the copy tgd joins the full root-to-leaf path —
/// exactly the path context a nested tgd binds.
///
/// Fig. 11's effect (probing a DEEPER element is FASTER) comes from the XML
/// engine fetching all assignments eagerly: a deep element pins the whole
/// path (few assignments), a shallow one leaves the subtree below it free
/// (many assignments). Benchmarks reproduce it by enabling
/// RouteOptions::eager_findhom.
struct DeepHierarchyOptions {
  /// Fanout per level: regions, nations/region, customers/nation,
  /// orders/customer, lineitems/order.
  int regions = 5;
  int fanout = 4;
  uint64_t seed = 42;
};

Scenario BuildDeepHierarchyScenario(const DeepHierarchyOptions& options);

/// Selects up to `count` facts at the given depth (1 = Region ... 5 =
/// Lineitem) in the target instance.
std::vector<FactRef> SelectDepthFacts(const Scenario& scenario, int depth,
                                      size_t count, uint64_t seed);

/// The flat-hierarchy scenario (§4.1): a root record with the eight TPC-H
/// sets nested directly underneath (depth 1). Shredded, this is the
/// relational scenario with an extra Root relation joined into every tgd.
/// Benchmarks run it with eager_findhom (and reorder_atoms=false) to model
/// the Saxon XSLT engine.
struct FlatHierarchyOptions {
  int joins = 1;
  int groups = 6;
  int units = 4;  ///< TpchSizes units (XML instances are small in the paper).
  uint64_t seed = 42;
};

Scenario BuildFlatHierarchyScenario(const FlatHierarchyOptions& options);

}  // namespace spider

#endif  // SPIDER_WORKLOAD_HIERARCHY_SCENARIO_H_
