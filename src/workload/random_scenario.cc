#include "workload/random_scenario.h"

#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "workload/rng.h"

namespace spider {

namespace {

/// Accumulates the variable table of one dependency under construction.
class VarTable {
 public:
  VarId Fresh() {
    VarId v = static_cast<VarId>(names_.size());
    names_.push_back("x" + std::to_string(v));
    return v;
  }

  std::vector<std::string>& names() { return names_; }

 private:
  std::vector<std::string> names_;
};

Schema RandomSchema(const std::string& prefix, int relations, int max_arity,
                    Rng* rng) {
  Schema schema(prefix);
  for (int r = 0; r < relations; ++r) {
    size_t arity = 1 + rng->Below(static_cast<uint64_t>(max_arity));
    std::vector<std::string> attrs;
    for (size_t a = 0; a < arity; ++a) {
      attrs.push_back("a" + std::to_string(a));
    }
    schema.AddRelation(prefix + std::to_string(r), std::move(attrs));
  }
  return schema;
}

Value RandomConstant(const RandomScenarioOptions& options, Rng* rng) {
  return Value::Int(
      static_cast<int64_t>(rng->Below(static_cast<uint64_t>(options.fanout))));
}

/// Builds atoms over `rels`, drawing each position from `pool` (variables
/// eligible for reuse), a fresh variable, or occasionally a constant. Fresh
/// variables are appended to `pool` so later positions can join on them.
std::vector<Atom> RandomAtoms(const Schema& schema,
                              const std::vector<RelationId>& rels,
                              std::vector<VarId>* pool, VarTable* vars,
                              const RandomScenarioOptions& options, Rng* rng) {
  std::vector<Atom> atoms;
  for (RelationId rel : rels) {
    Atom atom;
    atom.relation = rel;
    size_t arity = schema.relation(rel).arity();
    for (size_t col = 0; col < arity; ++col) {
      uint64_t roll = rng->Below(8);
      if (roll == 0) {
        atom.terms.push_back(Term::Const(RandomConstant(options, rng)));
      } else if (roll <= 3 && !pool->empty()) {
        atom.terms.push_back(
            Term::Var((*pool)[rng->Below(pool->size())]));
      } else {
        VarId v = vars->Fresh();
        pool->push_back(v);
        atom.terms.push_back(Term::Var(v));
      }
    }
    atoms.push_back(std::move(atom));
  }
  return atoms;
}

std::vector<RelationId> PickRelations(size_t count, RelationId lo,
                                      RelationId hi, Rng* rng) {
  std::vector<RelationId> rels;
  for (size_t i = 0; i < count; ++i) {
    rels.push_back(static_cast<RelationId>(
        lo + static_cast<RelationId>(rng->Below(
                 static_cast<uint64_t>(hi - lo)))));
  }
  return rels;
}

void AddRandomStTgd(SchemaMapping* mapping, int index,
                    const RandomScenarioOptions& options, Rng* rng) {
  VarTable vars;
  std::vector<VarId> lhs_pool;
  std::vector<RelationId> lhs_rels =
      PickRelations(1 + rng->Below(2), 0,
                    static_cast<RelationId>(mapping->source().size()), rng);
  std::vector<Atom> lhs = RandomAtoms(mapping->source(), lhs_rels, &lhs_pool,
                                      &vars, options, rng);
  // RHS positions favor universal variables (so routes have source
  // witnesses) but also introduce existentials, which become labeled nulls.
  std::vector<VarId> rhs_pool = lhs_pool;
  std::vector<RelationId> rhs_rels =
      PickRelations(1 + rng->Below(2), 0,
                    static_cast<RelationId>(mapping->target().size()), rng);
  std::vector<Atom> rhs = RandomAtoms(mapping->target(), rhs_rels, &rhs_pool,
                                      &vars, options, rng);
  mapping->AddTgd(Tgd("rst" + std::to_string(index), std::move(vars.names()),
                      std::move(lhs), std::move(rhs),
                      /*source_to_target=*/true));
}

void AddRandomTargetTgd(SchemaMapping* mapping, int index,
                        const RandomScenarioOptions& options, Rng* rng) {
  // Stratify: LHS relations strictly below the pivot, RHS at or above it.
  // Relation T_i is then only ever written by tgds reading strictly lower
  // relations, so the target chase terminates by induction on i.
  RelationId m = static_cast<RelationId>(mapping->target().size());
  RelationId pivot = 1 + static_cast<RelationId>(
                             rng->Below(static_cast<uint64_t>(m - 1)));
  VarTable vars;
  std::vector<VarId> lhs_pool;
  std::vector<RelationId> lhs_rels =
      PickRelations(1 + rng->Below(2), 0, pivot, rng);
  std::vector<Atom> lhs = RandomAtoms(mapping->target(), lhs_rels, &lhs_pool,
                                      &vars, options, rng);
  std::vector<VarId> rhs_pool = lhs_pool;
  std::vector<RelationId> rhs_rels = PickRelations(1, pivot, m, rng);
  std::vector<Atom> rhs = RandomAtoms(mapping->target(), rhs_rels, &rhs_pool,
                                      &vars, options, rng);
  mapping->AddTgd(Tgd("rt" + std::to_string(index), std::move(vars.names()),
                      std::move(lhs), std::move(rhs),
                      /*source_to_target=*/false));
}

bool AddRandomEgd(SchemaMapping* mapping, int index, Rng* rng) {
  // Key-style: R(x, y1, ...), R(x, z1, ...) -> y_c = z_c for a random
  // relation of arity >= 2 and a random non-key column c.
  std::vector<RelationId> candidates;
  for (size_t r = 0; r < mapping->target().size(); ++r) {
    if (mapping->target().relation(static_cast<RelationId>(r)).arity() >= 2) {
      candidates.push_back(static_cast<RelationId>(r));
    }
  }
  if (candidates.empty()) return false;
  RelationId rel = candidates[rng->Below(candidates.size())];
  size_t arity = mapping->target().relation(rel).arity();
  VarTable vars;
  VarId key = vars.Fresh();
  Atom left_atom{rel, {Term::Var(key)}};
  Atom right_atom{rel, {Term::Var(key)}};
  VarId left_eq = -1;
  VarId right_eq = -1;
  size_t eq_col = 1 + rng->Below(arity - 1);
  for (size_t col = 1; col < arity; ++col) {
    VarId y = vars.Fresh();
    VarId z = vars.Fresh();
    left_atom.terms.push_back(Term::Var(y));
    right_atom.terms.push_back(Term::Var(z));
    if (col == eq_col) {
      left_eq = y;
      right_eq = z;
    }
  }
  mapping->AddEgd(Egd("re" + std::to_string(index), std::move(vars.names()),
                      {std::move(left_atom), std::move(right_atom)}, left_eq,
                      right_eq));
  return true;
}

}  // namespace

Scenario BuildRandomScenario(const RandomScenarioOptions& options) {
  SPIDER_CHECK(options.source_relations >= 1 && options.target_relations >= 1,
               "random scenario needs at least one relation per schema");
  SPIDER_CHECK(options.max_arity >= 1 && options.fanout >= 1,
               "random scenario needs positive arity and fanout");
  Rng rng(options.seed);
  Schema source =
      RandomSchema("S", options.source_relations, options.max_arity, &rng);
  Schema target =
      RandomSchema("T", options.target_relations, options.max_arity, &rng);

  Scenario scenario;
  scenario.mapping =
      std::make_unique<SchemaMapping>(std::move(source), std::move(target));
  for (int i = 0; i < options.st_tgds; ++i) {
    AddRandomStTgd(scenario.mapping.get(), i, options, &rng);
  }
  if (options.target_relations >= 2) {
    for (int i = 0; i < options.target_tgds; ++i) {
      AddRandomTargetTgd(scenario.mapping.get(), i, options, &rng);
    }
  }
  for (int i = 0; i < options.egds; ++i) {
    if (!AddRandomEgd(scenario.mapping.get(), i, &rng)) break;
  }

  scenario.source = std::make_unique<Instance>(&scenario.mapping->source());
  scenario.target = std::make_unique<Instance>(&scenario.mapping->target());
  for (size_t r = 0; r < scenario.mapping->source().size(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    size_t arity = scenario.mapping->source().relation(rel).arity();
    for (int row = 0; row < options.rows_per_relation; ++row) {
      std::vector<Value> values;
      for (size_t col = 0; col < arity; ++col) {
        values.push_back(RandomConstant(options, &rng));
      }
      scenario.source->Insert(rel, Tuple(std::move(values)));
    }
  }
  return scenario;
}

PipelineScenario BuildRandomPipeline(const RandomPipelineOptions& options) {
  SPIDER_CHECK(options.source_relations >= 1 && options.t_relations >= 1 &&
                   options.u_relations >= 1,
               "random pipeline needs at least one relation per schema");
  SPIDER_CHECK(options.max_arity >= 1 && options.fanout >= 1,
               "random pipeline needs positive arity and fanout");
  Rng rng(options.seed);
  Schema source =
      RandomSchema("S", options.source_relations, options.max_arity, &rng);
  Schema middle =
      RandomSchema("T", options.t_relations, options.max_arity, &rng);
  Schema target =
      RandomSchema("U", options.u_relations, options.max_arity, &rng);

  RandomScenarioOptions atom_options;
  atom_options.fanout = options.fanout;

  PipelineScenario pipeline;
  pipeline.st.mapping = std::make_unique<SchemaMapping>(std::move(source),
                                                        Schema(middle));
  pipeline.tu.mapping = std::make_unique<SchemaMapping>(std::move(middle),
                                                        std::move(target));
  for (int i = 0; i < options.st_tgds; ++i) {
    AddRandomStTgd(pipeline.st.mapping.get(), i, atom_options, &rng);
  }
  for (int i = 0; i < options.tu_tgds; ++i) {
    AddRandomStTgd(pipeline.tu.mapping.get(), i, atom_options, &rng);
  }

  pipeline.st.source =
      std::make_unique<Instance>(&pipeline.st.mapping->source());
  pipeline.st.target =
      std::make_unique<Instance>(&pipeline.st.mapping->target());
  pipeline.tu.source =
      std::make_unique<Instance>(&pipeline.tu.mapping->source());
  pipeline.tu.target =
      std::make_unique<Instance>(&pipeline.tu.mapping->target());
  for (size_t r = 0; r < pipeline.st.mapping->source().size(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    size_t arity = pipeline.st.mapping->source().relation(rel).arity();
    for (int row = 0; row < options.rows_per_relation; ++row) {
      std::vector<Value> values;
      for (size_t col = 0; col < arity; ++col) {
        values.push_back(RandomConstant(atom_options, &rng));
      }
      pipeline.st.source->Insert(rel, Tuple(std::move(values)));
    }
  }
  return pipeline;
}

}  // namespace spider
