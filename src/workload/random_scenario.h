#ifndef SPIDER_WORKLOAD_RANDOM_SCENARIO_H_
#define SPIDER_WORKLOAD_RANDOM_SCENARIO_H_

#include <cstdint>

#include "mapping/scenario.h"

namespace spider {

/// Knobs for BuildRandomScenario. The defaults produce a small but
/// non-trivial setting: multi-atom premises, shared join variables,
/// existential nulls, occasional constants, stratified target tgds, and
/// key-style egds.
struct RandomScenarioOptions {
  uint64_t seed = 1;

  int source_relations = 3;
  int target_relations = 3;
  /// Relation arities are drawn uniformly from [1, max_arity].
  int max_arity = 3;

  int st_tgds = 3;
  /// Target tgds are stratified (every LHS relation index is strictly below
  /// every RHS relation index), which guarantees chase termination; with
  /// target_relations < 2 none can be generated.
  int target_tgds = 2;
  /// Key-style egds R(x, y..), R(x, z..) -> y_c = z_c over random target
  /// relations of arity >= 2. Egds may fail the chase (equating two
  /// distinct constants); callers that need a solution must check the
  /// chase outcome.
  int egds = 1;

  int rows_per_relation = 12;
  /// Size of the integer value domain per source column. Smaller domains
  /// mean more duplicate join keys, i.e. higher join fan-out and more
  /// chase triggers / routes per fact; larger domains approach key-like
  /// columns.
  int fanout = 4;
};

/// Generates a reproducible random data-exchange scenario: random source and
/// target schemas, random s-t tgds, stratified target tgds, key-style egds,
/// and a populated source instance (target left empty for the chase). The
/// same options always produce the identical scenario.
Scenario BuildRandomScenario(const RandomScenarioOptions& options);

/// Knobs for BuildRandomPipeline. Both hops draw their dependencies from the
/// same generator family as BuildRandomScenario's s-t tgds; target tgds and
/// egds are left to the caller (the composition differential oracle wants a
/// pure s-t second hop, and M_tu target dependencies carry over verbatim
/// anyway).
struct RandomPipelineOptions {
  uint64_t seed = 1;

  int source_relations = 3;
  int t_relations = 3;
  int u_relations = 3;
  int max_arity = 3;

  int st_tgds = 3;
  int tu_tgds = 3;

  int rows_per_relation = 12;
  int fanout = 4;
};

/// Generates a reproducible random three-schema pipeline S —M_st→ T —M_tu→ U:
/// the two mappings share the intermediate schema T by name, the source
/// instance is populated, and the T and U instances are empty (fill them with
/// ChasePipeline). The same options always produce the identical pipeline.
PipelineScenario BuildRandomPipeline(const RandomPipelineOptions& options);

}  // namespace spider

#endif  // SPIDER_WORKLOAD_RANDOM_SCENARIO_H_
