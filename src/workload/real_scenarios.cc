#include "workload/real_scenarios.h"

#include <string>
#include <vector>

#include "mapping/parser.h"
#include "workload/rng.h"

namespace spider {

namespace {

constexpr const char* kDblpText = R"(
// ---- DBLP1: flattened bibliographic records (nesting depth 1) ----
source schema {
  D1Article(pubkey, title, journal, year, volume, number, pages, month, ee);
  D1Inproceedings(pubkey, title, booktitle, year, pages, ee);
  D1Book(pubkey, title, publisher, year, isbn, series);
  D1Incollection(pubkey, title, booktitle, year, pages, chapter);
  D1Phdthesis(pubkey, title, school, year);
  D1Mastersthesis(pubkey, title, school, year);
  D1Www(pubkey, title, url);
  D1AuthorOf(author, pubkey, position);
  D1Editor(pubkey, editor);
  D1Publisher(pname, address);
  D1Cite(citing, cited);
  // ---- DBLP2: nested proceedings/inproceedings/author (depth 4),
  //      shredded with parent keys ----
  D2Proceedings(prockey, ptitle, pyear);
  D2Inproc(inprockey, prockey, ititle, ipages);
  D2InprocAuthor(inprockey, aname);
}
// ---- Amalgam-style relational target ----
target schema {
  AAuthor(authorid, name);
  APublication(pubid, title, year, month, note, annote, class, crossref);
  AWrote(authorid, pubid, position);
  AJournal(journalid, jname, publisherinfo);
  AArticleIn(pubid, journalid, volume, number, pages);
  AConference(confid, cname, location);
  AInProcPub(pubid, confid, pages);
  APublisher(publisherid, pname, address);
  ABookPub(pubid, publisherid, isbn, series);
  ASchool(schoolid, sname);
  AThesis(pubid, schoolid, kind);
  AWebResource(pubid, url);
  ACitation(citingpub, citedpub);
  AEditorOf(editorid, pubid);
}

// ---- Σst: 12 source-to-target tgds ----
d1: D1Article(pk,t,j,y,v,n,p,mo,e) -> exists J, NT, AN, CL, CR, PI .
      APublication(pk,t,y,mo,NT,AN,CL,CR) & AJournal(J,j,PI) &
      AArticleIn(pk,J,v,n,p);
d2: D1Inproceedings(pk,t,bt,y,p,e) -> exists C, MO, NT, AN, CL, CR, LOC .
      APublication(pk,t,y,MO,NT,AN,CL,CR) & AConference(C,bt,LOC) &
      AInProcPub(pk,C,p);
d3: D1Book(pk,t,pub,y,isbn,ser) & D1Publisher(pub,addr) ->
      exists P, MO, NT, AN, CL, CR .
      APublication(pk,t,y,MO,NT,AN,CL,CR) & APublisher(P,pub,addr) &
      ABookPub(pk,P,isbn,ser);
d4: D1Incollection(pk,t,bt,y,p,ch) -> exists C, MO, NT, AN, CL, CR, LOC .
      APublication(pk,t,y,MO,NT,AN,CL,CR) & AConference(C,bt,LOC) &
      AInProcPub(pk,C,p);
d5: D1Phdthesis(pk,t,sch,y) -> exists S, MO, NT, AN, CL, CR .
      APublication(pk,t,y,MO,NT,AN,CL,CR) & ASchool(S,sch) &
      AThesis(pk,S,"phd");
d6: D1Mastersthesis(pk,t,sch,y) -> exists S, MO, NT, AN, CL, CR .
      APublication(pk,t,y,MO,NT,AN,CL,CR) & ASchool(S,sch) &
      AThesis(pk,S,"ms");
d7: D1Www(pk,t,u) -> exists Y, MO, NT, AN, CL, CR .
      APublication(pk,t,Y,MO,NT,AN,CL,CR) & AWebResource(pk,u);
d8: D1AuthorOf(a,pk,pos) -> AAuthor(a,a) & AWrote(a,pk,pos);
d9: D1Editor(pk,ed) -> AAuthor(ed,ed) & AEditorOf(ed,pk);
d10: D1Cite(c1,c2) -> ACitation(c1,c2);
d11: D2Proceedings(prk,pt,py) & D2Inproc(ik,prk,it,ip) ->
      exists C, MO, NT, AN, CL, CR, LOC .
      APublication(ik,it,py,MO,NT,AN,CL,CR) & AConference(C,pt,LOC) &
      AInProcPub(ik,C,ip);
d12: D2InprocAuthor(ik,n) -> exists P . AAuthor(n,n) & AWrote(n,ik,P);

// ---- Σt: 14 target tgds (the target schema's foreign keys) ----
f1: AWrote(a,p,pos) -> exists N . AAuthor(a,N);
f2: AWrote(a,p,pos) -> exists T,Y,MO,NT,AN,CL,CR .
      APublication(p,T,Y,MO,NT,AN,CL,CR);
f3: AArticleIn(p,j,v,n,pg) -> exists T,Y,MO,NT,AN,CL,CR .
      APublication(p,T,Y,MO,NT,AN,CL,CR);
f4: AArticleIn(p,j,v,n,pg) -> exists JN,PI . AJournal(j,JN,PI);
f5: AInProcPub(p,c,pg) -> exists T,Y,MO,NT,AN,CL,CR .
      APublication(p,T,Y,MO,NT,AN,CL,CR);
f6: AInProcPub(p,c,pg) -> exists CN,LOC . AConference(c,CN,LOC);
f7: ABookPub(p,pub,isbn,ser) -> exists T,Y,MO,NT,AN,CL,CR .
      APublication(p,T,Y,MO,NT,AN,CL,CR);
f8: ABookPub(p,pub,isbn,ser) -> exists PN,AD . APublisher(pub,PN,AD);
f9: AThesis(p,s,k) -> exists T,Y,MO,NT,AN,CL,CR .
      APublication(p,T,Y,MO,NT,AN,CL,CR);
f10: AThesis(p,s,k) -> exists SN . ASchool(s,SN);
f11: AWebResource(p,u) -> exists T,Y,MO,NT,AN,CL,CR .
      APublication(p,T,Y,MO,NT,AN,CL,CR);
f12: ACitation(c1,c2) -> exists T,Y,MO,NT,AN,CL,CR .
      APublication(c1,T,Y,MO,NT,AN,CL,CR);
f13: ACitation(c1,c2) -> exists T,Y,MO,NT,AN,CL,CR .
      APublication(c2,T,Y,MO,NT,AN,CL,CR);
f14: AEditorOf(e,p) -> exists N . AAuthor(e,N);
)";

constexpr const char* kMondialText = R"(
// ---- Mondial1: relational geography source ----
source schema {
  MCountry(code, cname, capital, area, population, gdp, inflation);
  MProvince(pname, country, pcapital, parea, ppopulation);
  MCity(ctname, country, province, cpopulation, longitude, latitude);
  MContinent(contname, carea);
  MEncompasses(country, continent, percentage);
  MBorders(country1, country2, blength);
  MLanguage(country, lname, lpercentage);
  MReligion(country, rname, rpercentage);
  MEthnicGroup(country, ename, epercentage);
  MOrganization(abbrev, oname, city, ocountry, established);
  MIsMember(country, organization, mtype);
  MMountain(mname, height, mcountry, mprovince);
  MRiver(rivname, rlength, rcountry, rprovince);
  MLake(lakname, larea, lcountry, lprovince);
  MSea(sname, depth, scountry);
  MDesert(dname, darea, dcountry, dprovince);
  MIsland(iname, iarea, icountry, iprovince);
}
// ---- Mondial2: nested target (shredded with parent keys) ----
target schema {
  NCountry(code, cname, capital, area, population);
  NProvince(pname, country, pcapital, ppopulation);
  NCity(ctname, province, country, cpopulation);
  NContinent(contname, carea);
  NEncompasses(country, continent, percentage);
  NBorder(country1, country2, blength);
  NLanguage(country, lname, lpercentage);
  NReligion(country, rname, rpercentage);
  NEthnicGroup(country, ename, epercentage);
  NOrganization(abbrev, oname, hqcity, hqcountry);
  NMember(organization, country, mtype);
  NGeoFeature(gname, gtype, country, size);
}

// ---- Σst: 17 source-to-target tgds ----
g1: MCountry(c,n,cap,a,p,g,i) -> NCountry(c,n,cap,a,p);
g2: MProvince(pn,c,pc,pa,pp) & MCountry(c,n,cap,a,p,gd,inf) ->
      NProvince(pn,c,pc,pp);
g3: MCity(ct,c,pv,cp,lon,lat) & MProvince(pv,c,pc,pa,pp) -> NCity(ct,pv,c,cp);
g4: MContinent(cn,ca) -> NContinent(cn,ca);
g5: MEncompasses(c,ct,pct) -> NEncompasses(c,ct,pct);
g6: MBorders(c1,c2,l) -> NBorder(c1,c2,l);
g7: MLanguage(c,l,p) -> NLanguage(c,l,p);
g8: MReligion(c,r,p) -> NReligion(c,r,p);
g9: MEthnicGroup(c,e,p) -> NEthnicGroup(c,e,p);
g10: MOrganization(ab,o,ci,c,est) -> NOrganization(ab,o,ci,c);
g11: MIsMember(c,o,t) -> NMember(o,c,t);
g12: MMountain(m,h,c,pv) -> NGeoFeature(m,"mountain",c,h);
g13: MRiver(r,l,c,pv) -> NGeoFeature(r,"river",c,l);
g14: MLake(l,a,c,pv) -> NGeoFeature(l,"lake",c,a);
g15: MSea(s,d,c) -> NGeoFeature(s,"sea",c,d);
g16: MDesert(d,a,c,pv) -> NGeoFeature(d,"desert",c,a);
g17: MIsland(i,a,c,pv) -> NGeoFeature(i,"island",c,a);

// ---- Σt: 25 target tgds (foreign keys of the nested target) ----
h1: NProvince(pn,c,pc,pp) -> exists N,CAP,A,P . NCountry(c,N,CAP,A,P);
h2: NCity(ct,pv,c,cp) -> exists PC,PP . NProvince(pv,c,PC,PP);
h3: NCity(ct,pv,c,cp) -> exists N,CAP,A,P . NCountry(c,N,CAP,A,P);
h4: NEncompasses(c,ct,pct) -> exists N,CAP,A,P . NCountry(c,N,CAP,A,P);
h5: NEncompasses(c,ct,pct) -> exists CA . NContinent(ct,CA);
h6: NBorder(c1,c2,l) -> exists N,CAP,A,P . NCountry(c1,N,CAP,A,P);
h7: NBorder(c1,c2,l) -> exists N,CAP,A,P . NCountry(c2,N,CAP,A,P);
h8: NLanguage(c,l,p) -> exists N,CAP,A,P . NCountry(c,N,CAP,A,P);
h9: NReligion(c,r,p) -> exists N,CAP,A,P . NCountry(c,N,CAP,A,P);
h10: NEthnicGroup(c,e,p) -> exists N,CAP,A,P . NCountry(c,N,CAP,A,P);
h11: NOrganization(ab,o,ci,c) -> exists N,CAP,A,P . NCountry(c,N,CAP,A,P);
h12: NMember(o,c,t) -> exists ON,CI,HC . NOrganization(o,ON,CI,HC);
h13: NMember(o,c,t) -> exists N,CAP,A,P . NCountry(c,N,CAP,A,P);
h14: NGeoFeature(g,t,c,s) -> exists N,CAP,A,P . NCountry(c,N,CAP,A,P);
h15: NCountry(c,n,cap,a,p) -> exists PV,PC,PP . NProvince(PV,c,PC,PP);
h16: NCountry(c,n,cap,a,p) -> exists CT,PCT . NEncompasses(c,CT,PCT);
h17: NProvince(pn,c,pc,pp) -> exists CT,CP . NCity(CT,pn,c,CP);
h18: NOrganization(ab,o,ci,c) -> exists CC,T . NMember(ab,CC,T);
h19: NCountry(c,n,cap,a,p) -> exists L,P2 . NLanguage(c,L,P2);
h20: NCountry(c,n,cap,a,p) -> exists R,P2 . NReligion(c,R,P2);
h21: NCountry(c,n,cap,a,p) -> exists E,P2 . NEthnicGroup(c,E,P2);
h22: NEncompasses(c,ct,pct) -> exists CA . NContinent(ct,CA);
h23: NGeoFeature(g,t,c,s) -> exists PV,PC,PP . NProvince(PV,c,PC,PP);
h24: NBorder(c1,c2,l) -> exists L2 . NBorder(c2,c1,L2);
h25: NOrganization(ab,o,ci,c) -> exists PV,PC,PP . NProvince(PV,c,PC,PP);
)";

std::string Key(const char* prefix, int i) {
  return std::string(prefix) + std::to_string(i);
}

}  // namespace

Scenario BuildDblpScenario(const RealScenarioOptions& options) {
  Scenario scenario = ParseScenario(kDblpText);
  Instance* I = scenario.source.get();
  Rng rng(options.seed);
  const int u = options.units;

  const int journals = 15;
  const int venues = 25;
  const int publishers = 10;
  const int schools = 12;
  const int authors = 8 * u;

  for (int p = 0; p < publishers; ++p) {
    I->Insert("D1Publisher", {Value::Str(Key("pub", p)),
                              Value::Str(Key("addr", p))});
  }
  std::vector<std::string> pubkeys;
  auto year = [&]() {
    return Value::Int(static_cast<int64_t>(1970 + rng.Below(36)));
  };
  auto pages = [&]() {
    int64_t lo = static_cast<int64_t>(rng.Below(400));
    return Value::Str(std::to_string(lo) + "-" + std::to_string(lo + 12));
  };
  for (int i = 0; i < 12 * u; ++i) {
    std::string key = Key("art", i);
    pubkeys.push_back(key);
    I->Insert("D1Article",
              {Value::Str(key), Value::Str(Key("Title A", i)),
               Value::Str(Key("journal", rng.Below(journals))), year(),
               Value::Int(static_cast<int64_t>(rng.Below(40) + 1)),
               Value::Int(static_cast<int64_t>(rng.Below(12) + 1)), pages(),
               Value::Int(static_cast<int64_t>(rng.Below(12) + 1)),
               Value::Str(Key("http://ee/", i))});
  }
  for (int i = 0; i < 16 * u; ++i) {
    std::string key = Key("inp", i);
    pubkeys.push_back(key);
    I->Insert("D1Inproceedings",
              {Value::Str(key), Value::Str(Key("Title I", i)),
               Value::Str(Key("conf", rng.Below(venues))), year(), pages(),
               Value::Str(Key("http://ee/i", i))});
  }
  for (int i = 0; i < 2 * u; ++i) {
    std::string key = Key("book", i);
    pubkeys.push_back(key);
    I->Insert("D1Book",
              {Value::Str(key), Value::Str(Key("Title B", i)),
               Value::Str(Key("pub", rng.Below(publishers))), year(),
               Value::Str(Key("isbn", i)), Value::Str(Key("series", i % 5))});
  }
  for (int i = 0; i < 3 * u; ++i) {
    std::string key = Key("inc", i);
    pubkeys.push_back(key);
    I->Insert("D1Incollection",
              {Value::Str(key), Value::Str(Key("Title C", i)),
               Value::Str(Key("conf", rng.Below(venues))), year(), pages(),
               Value::Int(static_cast<int64_t>(rng.Below(20) + 1))});
  }
  for (int i = 0; i < u; ++i) {
    std::string key = Key("phd", i);
    pubkeys.push_back(key);
    I->Insert("D1Phdthesis",
              {Value::Str(key), Value::Str(Key("Thesis P", i)),
               Value::Str(Key("school", rng.Below(schools))), year()});
    std::string mkey = Key("msc", i);
    pubkeys.push_back(mkey);
    I->Insert("D1Mastersthesis",
              {Value::Str(mkey), Value::Str(Key("Thesis M", i)),
               Value::Str(Key("school", rng.Below(schools))), year()});
  }
  for (int i = 0; i < u; ++i) {
    std::string key = Key("www", i);
    pubkeys.push_back(key);
    I->Insert("D1Www", {Value::Str(key), Value::Str(Key("Web", i)),
                        Value::Str(Key("http://w/", i))});
  }
  // Authorship: ~2.2 authors per publication; editors and citations.
  for (const std::string& key : pubkeys) {
    int n = static_cast<int>(rng.Below(3)) + 1;
    for (int a = 0; a < n; ++a) {
      I->Insert("D1AuthorOf",
                {Value::Str(Key("author", rng.Below(authors))),
                 Value::Str(key), Value::Int(a + 1)});
    }
    if (rng.Below(8) == 0) {
      I->Insert("D1Editor", {Value::Str(key),
                             Value::Str(Key("author", rng.Below(authors)))});
    }
    if (rng.Below(2) == 0) {
      I->Insert("D1Cite",
                {Value::Str(key),
                 Value::Str(pubkeys[rng.Below(pubkeys.size())])});
    }
  }
  // DBLP2: nested proceedings.
  for (int p = 0; p < 2 * u; ++p) {
    std::string prk = Key("proc", p);
    I->Insert("D2Proceedings",
              {Value::Str(prk), Value::Str(Key("Proc", p)), year()});
    int n = static_cast<int>(rng.Below(6)) + 2;
    for (int i = 0; i < n; ++i) {
      std::string ik = prk + "/" + std::to_string(i);
      I->Insert("D2Inproc", {Value::Str(ik), Value::Str(prk),
                             Value::Str(Key("NTitle", p * 100 + i)), pages()});
      int na = static_cast<int>(rng.Below(3)) + 1;
      for (int a = 0; a < na; ++a) {
        I->Insert("D2InprocAuthor",
                  {Value::Str(ik),
                   Value::Str(Key("author", rng.Below(authors)))});
      }
    }
  }
  return scenario;
}

Scenario BuildMondialScenario(const RealScenarioOptions& options) {
  Scenario scenario = ParseScenario(kMondialText);
  Instance* I = scenario.source.get();
  Rng rng(options.seed);
  const int u = options.units;

  const int countries = 2 * u;
  const int continents = 6;
  auto num = [&](uint64_t n) {
    return Value::Int(static_cast<int64_t>(rng.Below(n) + 1));
  };
  for (int c = 0; c < continents; ++c) {
    I->Insert("MContinent", {Value::Str(Key("continent", c)), num(40000000)});
  }
  int city_count = 0;
  for (int c = 0; c < countries; ++c) {
    std::string code = Key("C", c);
    I->Insert("MCountry", {Value::Str(code), Value::Str(Key("country", c)),
                           Value::Str(Key("city", c * 6)), num(1000000),
                           num(90000000), num(500000), num(20)});
    I->Insert("MEncompasses",
              {Value::Str(code), Value::Str(Key("continent",
                                                rng.Below(continents))),
               num(100)});
    for (int p = 0; p < 4; ++p) {
      std::string pname = Key("prov", c * 4 + p);
      I->Insert("MProvince", {Value::Str(pname), Value::Str(code),
                              Value::Str(Key("city", city_count)), num(80000),
                              num(5000000)});
      for (int t = 0; t < 3; ++t) {
        I->Insert("MCity", {Value::Str(Key("city", city_count++)),
                            Value::Str(code), Value::Str(pname), num(2000000),
                            num(360), num(180)});
      }
    }
    for (int l = 0; l < 2; ++l) {
      I->Insert("MLanguage", {Value::Str(code),
                              Value::Str(Key("lang", rng.Below(30))),
                              num(100)});
      I->Insert("MReligion", {Value::Str(code),
                              Value::Str(Key("rel", rng.Below(12))),
                              num(100)});
      I->Insert("MEthnicGroup", {Value::Str(code),
                                 Value::Str(Key("eth", rng.Below(40))),
                                 num(100)});
    }
    if (c > 0) {
      I->Insert("MBorders", {Value::Str(code),
                             Value::Str(Key("C", rng.Below(c))), num(4000)});
    }
    // Geographic features.
    I->Insert("MMountain",
              {Value::Str(Key("mountain", c)), num(8000), Value::Str(code),
               Value::Str(Key("prov", c * 4))});
    I->Insert("MRiver", {Value::Str(Key("river", c)), num(6000),
                         Value::Str(code), Value::Str(Key("prov", c * 4 + 1))});
    if (rng.Below(2) == 0) {
      I->Insert("MLake", {Value::Str(Key("lake", c)), num(30000),
                          Value::Str(code), Value::Str(Key("prov", c * 4))});
      I->Insert("MSea",
                {Value::Str(Key("sea", rng.Below(20))), num(10000),
                 Value::Str(code)});
      I->Insert("MDesert", {Value::Str(Key("desert", c)), num(100000),
                            Value::Str(code),
                            Value::Str(Key("prov", c * 4 + 2))});
      I->Insert("MIsland", {Value::Str(Key("island", c)), num(20000),
                            Value::Str(code),
                            Value::Str(Key("prov", c * 4 + 3))});
    }
  }
  const int organizations = u;
  for (int o = 0; o < organizations; ++o) {
    std::string abbrev = Key("ORG", o);
    int64_t c = static_cast<int64_t>(rng.Below(countries));
    I->Insert("MOrganization",
              {Value::Str(abbrev), Value::Str(Key("organization", o)),
               Value::Str(Key("city", c * 12)), Value::Str(Key("C", c)),
               num(2005)});
    int members = static_cast<int>(rng.Below(6)) + 2;
    for (int m = 0; m < members; ++m) {
      I->Insert("MIsMember",
                {Value::Str(Key("C", rng.Below(countries))),
                 Value::Str(abbrev), Value::Str("member")});
    }
  }
  return scenario;
}

ScenarioStats ComputeStats(const Scenario& scenario) {
  ScenarioStats stats;
  stats.source_elements = scenario.mapping->source().TotalElements();
  stats.target_elements = scenario.mapping->target().TotalElements();
  stats.st_tgds = scenario.mapping->st_tgds().size();
  stats.target_tgds = scenario.mapping->target_tgds().size();
  stats.egds = scenario.mapping->NumEgds();
  stats.source_tuples =
      scenario.source != nullptr ? scenario.source->TotalTuples() : 0;
  stats.target_tuples =
      scenario.target != nullptr ? scenario.target->TotalTuples() : 0;
  return stats;
}

}  // namespace spider
