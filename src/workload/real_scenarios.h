#ifndef SPIDER_WORKLOAD_REAL_SCENARIOS_H_
#define SPIDER_WORKLOAD_REAL_SCENARIOS_H_

#include <cstdint>
#include <string>

#include "mapping/scenario.h"

namespace spider {

/// Emulations of the paper's two real datasets (§4.2, Table 1). The paper's
/// actual data (DBLP dumps, the Mondial database, the Amalgam test suite) is
/// not redistributable here, so these builders synthesize instances with the
/// same *shape*: schemas mirroring the published element counts, s-t tgds
/// mapping publications/geography into the target, and target tgds derived
/// from the target schemas' foreign keys — the properties the §4.2
/// experiment actually exercises (many relations and tgds, FK-shaped target
/// dependencies, a few thousand tuples).
struct RealScenarioOptions {
  int units = 20;  ///< Scale knob; ~70 source tuples per unit (DBLP).
  uint64_t seed = 42;
};

/// DBLP: two bibliographic sources (a flattened DBLP1, a nested/shredded
/// DBLP2) mapped into an Amalgam-style relational target.
Scenario BuildDblpScenario(const RealScenarioOptions& options = {});

/// Mondial: the relational Mondial schema mapped into a nested (shredded)
/// Mondial target, with the target's foreign keys as target tgds.
Scenario BuildMondialScenario(const RealScenarioOptions& options = {});

/// Schema/mapping statistics in the shape of Table 1.
struct ScenarioStats {
  size_t source_elements = 0;  ///< Relations + attributes, source schema.
  size_t target_elements = 0;
  size_t st_tgds = 0;
  size_t target_tgds = 0;
  size_t egds = 0;
  size_t source_tuples = 0;
  size_t target_tuples = 0;
};
ScenarioStats ComputeStats(const Scenario& scenario);

}  // namespace spider

#endif  // SPIDER_WORKLOAD_REAL_SCENARIOS_H_
