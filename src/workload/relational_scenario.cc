#include "workload/relational_scenario.h"

#include <unordered_set>

#include "base/status.h"
#include "workload/rng.h"

namespace spider {

void AddCopyTgd(SchemaMapping* mapping, const std::string& name,
                const std::vector<std::string>& relations,
                const std::string& from_suffix, const std::string& to_suffix,
                const std::vector<JoinSpec>& joins, bool source_to_target) {
  const Schema& lhs_schema =
      source_to_target ? mapping->source() : mapping->target();
  const Schema& rhs_schema = mapping->target();

  // Assign a fresh variable to every (relation, column), then unify along
  // the join specs.
  std::vector<RelationId> lhs_rels;
  std::vector<RelationId> rhs_rels;
  std::vector<std::vector<int>> var_of(relations.size());
  int next_var = 0;
  for (size_t i = 0; i < relations.size(); ++i) {
    lhs_rels.push_back(lhs_schema.Require(relations[i] + from_suffix));
    rhs_rels.push_back(rhs_schema.Require(relations[i] + to_suffix));
    size_t arity = lhs_schema.relation(lhs_rels[i]).arity();
    SPIDER_CHECK(arity == rhs_schema.relation(rhs_rels[i]).arity(),
                 "copy tgd requires equal arities for '" + relations[i] + "'");
    for (size_t c = 0; c < arity; ++c) var_of[i].push_back(next_var++);
  }
  for (const JoinSpec& join : joins) {
    const RelationDef& left = lhs_schema.relation(lhs_rels[join.left_rel]);
    const RelationDef& right = lhs_schema.relation(lhs_rels[join.right_rel]);
    int lc = left.AttributeIndex(join.left_col);
    int rc = right.AttributeIndex(join.right_col);
    SPIDER_CHECK(lc >= 0 && rc >= 0, "join column not found building tgd '" +
                                         name + "'");
    var_of[join.right_rel][rc] = var_of[join.left_rel][lc];
  }

  // Compact the surviving variable ids.
  std::vector<int> dense(static_cast<size_t>(next_var), -1);
  std::vector<std::string> var_names;
  auto intern = [&](int raw) {
    if (dense[raw] < 0) {
      dense[raw] = static_cast<int>(var_names.size());
      var_names.push_back("x" + std::to_string(var_names.size()));
    }
    return dense[raw];
  };
  auto make_atoms = [&](const std::vector<RelationId>& rels) {
    std::vector<Atom> atoms;
    for (size_t i = 0; i < rels.size(); ++i) {
      Atom atom;
      atom.relation = rels[i];
      for (int raw : var_of[i]) {
        atom.terms.push_back(Term::Var(intern(raw)));
      }
      atoms.push_back(std::move(atom));
    }
    return atoms;
  };
  std::vector<Atom> lhs = make_atoms(lhs_rels);
  std::vector<Atom> rhs = make_atoms(rhs_rels);
  mapping->AddTgd(
      Tgd(name, std::move(var_names), std::move(lhs), std::move(rhs),
          source_to_target));
}

std::vector<CopyTemplate> TpchJoinTemplates(int joins) {
  switch (joins) {
    case 0: {
      std::vector<CopyTemplate> templates;
      for (const char* rel : kTpchRelations) {
        templates.push_back(CopyTemplate{{rel}, {}});
      }
      return templates;
    }
    case 1:
      return {
          {{"Supplier", "Lineitem"}, {{0, "suppkey", 1, "suppkey"}}},
          {{"Orders", "Customer"}, {{0, "custkey", 1, "custkey"}}},
          {{"Partsupp", "Part"}, {{0, "partkey", 1, "partkey"}}},
          {{"Nation", "Region"}, {{0, "regionkey", 1, "regionkey"}}},
      };
    case 2:
      return {
          {{"Supplier", "Lineitem", "Orders"},
           {{0, "suppkey", 1, "suppkey"}, {1, "orderkey", 2, "orderkey"}}},
          {{"Supplier", "Partsupp", "Part"},
           {{0, "suppkey", 1, "suppkey"}, {1, "partkey", 2, "partkey"}}},
          {{"Customer", "Nation", "Region"},
           {{0, "nationkey", 1, "nationkey"},
            {1, "regionkey", 2, "regionkey"}}},
      };
    case 3:
      return {
          {{"Supplier", "Lineitem", "Partsupp", "Part"},
           {{0, "suppkey", 1, "suppkey"},
            {1, "partkey", 2, "partkey"},
            {1, "suppkey", 2, "suppkey"},
            {2, "partkey", 3, "partkey"}}},
          {{"Orders", "Customer", "Nation", "Region"},
           {{0, "custkey", 1, "custkey"},
            {1, "nationkey", 2, "nationkey"},
            {2, "regionkey", 3, "regionkey"}}},
      };
    default:
      throw SpiderError("relational scenario supports 0..3 joins");
  }
}

Scenario BuildRelationalScenario(const RelationalScenarioOptions& options) {
  SPIDER_CHECK(options.groups >= 1, "at least one target group is required");
  Schema source("source");
  Schema target("target");
  AddTpchRelations(&source, "0");
  for (int g = 1; g <= options.groups; ++g) {
    AddTpchRelations(&target, std::to_string(g));
  }

  Scenario scenario;
  scenario.mapping =
      std::make_unique<SchemaMapping>(std::move(source), std::move(target));

  std::vector<CopyTemplate> templates = TpchJoinTemplates(options.joins);
  int counter = 0;
  for (const CopyTemplate& t : templates) {
    AddCopyTgd(scenario.mapping.get(), "st" + std::to_string(++counter),
               t.relations, "0", "1", t.joins, /*source_to_target=*/true);
  }
  for (int g = 1; g < options.groups; ++g) {
    counter = 0;
    for (const CopyTemplate& t : templates) {
      AddCopyTgd(scenario.mapping.get(),
                 "t" + std::to_string(g) + "_" + std::to_string(++counter),
                 t.relations, std::to_string(g), std::to_string(g + 1),
                 t.joins, /*source_to_target=*/false);
    }
  }

  scenario.source = std::make_unique<Instance>(&scenario.mapping->source());
  scenario.target = std::make_unique<Instance>(&scenario.mapping->target());
  GenerateTpchData(scenario.source.get(), "0", options.sizes, options.seed);
  return scenario;
}

std::vector<FactRef> SelectGroupFacts(const Scenario& scenario, int group,
                                      size_t count, uint64_t seed) {
  const Instance& target = *scenario.target;
  const Schema& schema = scenario.mapping->target();
  std::string suffix = std::to_string(group);
  std::vector<RelationId> group_rels;
  for (size_t r = 0; r < schema.size(); ++r) {
    const std::string& name = schema.relation(static_cast<RelationId>(r))
                                  .name();
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0 &&
        target.NumTuples(static_cast<RelationId>(r)) > 0) {
      // Guard against suffix collisions like "1" vs "11": the prefix must
      // not end in a digit.
      char before = name[name.size() - suffix.size() - 1];
      if (before < '0' || before > '9') {
        group_rels.push_back(static_cast<RelationId>(r));
      }
    }
  }
  SPIDER_CHECK(!group_rels.empty(),
               "no populated relations found for group " + suffix);
  Rng rng(seed);
  std::vector<FactRef> facts;
  std::unordered_set<FactRef, FactRefHash> seen;
  size_t attempts = 0;
  while (facts.size() < count && attempts < count * 50 + 100) {
    ++attempts;
    RelationId rel = group_rels[rng.Below(group_rels.size())];
    FactRef fact{Side::kTarget, rel,
                 static_cast<int32_t>(rng.Below(target.NumTuples(rel)))};
    if (seen.insert(fact).second) facts.push_back(fact);
  }
  return facts;
}

}  // namespace spider
