#ifndef SPIDER_WORKLOAD_RELATIONAL_SCENARIO_H_
#define SPIDER_WORKLOAD_RELATIONAL_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/tuple.h"
#include "mapping/scenario.h"
#include "workload/tpch.h"

namespace spider {

/// The paper's relational synthetic scenario (§4.1): the source schema is
/// TPC-H-shaped; the target schema consists of `groups` copies of it. The
/// s-t tgds copy group 0 (the source) into group 1, and the target tgds copy
/// group g into group g+1, so a tuple in group g is witnessed by exactly g
/// satisfaction steps (the paper's "M/T factor" = g). Each tgd carries
/// `joins` joins per side, following the join templates of Fig. 9.
struct RelationalScenarioOptions {
  int joins = 1;     ///< 0..3 (the paper's M0..M3).
  int groups = 6;    ///< Number of target copy groups.
  TpchSizes sizes;   ///< Source instance scale.
  uint64_t seed = 42;
};

/// Builds the mapping and the source instance. Run ChaseScenario afterwards
/// to materialize the solution J.
Scenario BuildRelationalScenario(const RelationalScenarioOptions& options);

/// Selects up to `count` random facts from the target relations of the
/// given group (1-based), i.e. facts with M/T factor = `group`. The target
/// instance must be populated (chased).
std::vector<FactRef> SelectGroupFacts(const Scenario& scenario, int group,
                                      size_t count, uint64_t seed);

/// Shared helper for workload builders: appends a tgd copying the suffixed
/// `relations` (joined per `joins`) from one suffix to another. `joins`
/// entries reference relation positions within `relations` and attribute
/// names. Variables are generated per (relation, column) and unified along
/// the joins on both sides.
struct JoinSpec {
  int left_rel;
  std::string left_col;
  int right_rel;
  std::string right_col;
};

/// One copy-tgd template: a group of relations plus the joins tying them
/// together (Fig. 9).
struct CopyTemplate {
  std::vector<std::string> relations;
  std::vector<JoinSpec> joins;
};

/// The templates of Fig. 9 for 0..3 joins. Together the groups of each
/// template set cover all eight TPC-H relations.
std::vector<CopyTemplate> TpchJoinTemplates(int joins);

void AddCopyTgd(SchemaMapping* mapping, const std::string& name,
                const std::vector<std::string>& relations,
                const std::string& from_suffix, const std::string& to_suffix,
                const std::vector<JoinSpec>& joins, bool source_to_target);

}  // namespace spider

#endif  // SPIDER_WORKLOAD_RELATIONAL_SCENARIO_H_
