#ifndef SPIDER_WORKLOAD_RNG_H_
#define SPIDER_WORKLOAD_RNG_H_

#include <cstdint>

namespace spider {

/// Small deterministic PRNG (splitmix64). The workload generators are fully
/// reproducible from their seeds, independent of the platform's
/// std::mt19937 stream.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). n must be positive.
  uint64_t Below(uint64_t n) { return Next() % n; }

 private:
  uint64_t state_;
};

}  // namespace spider

#endif  // SPIDER_WORKLOAD_RNG_H_
