#include "workload/tpch.h"

#include <vector>

#include "base/status.h"
#include "workload/rng.h"

namespace spider {

void AddTpchRelations(Schema* schema, const std::string& suffix) {
  schema->AddRelation("Region" + suffix, {"regionkey", "rname"});
  schema->AddRelation("Nation" + suffix, {"nationkey", "regionkey", "nname"});
  schema->AddRelation("Supplier" + suffix,
                      {"suppkey", "nationkey", "sname", "sacctbal"});
  schema->AddRelation("Part" + suffix, {"partkey", "pname", "retailprice"});
  schema->AddRelation("Partsupp" + suffix,
                      {"partkey", "suppkey", "availqty", "supplycost"});
  schema->AddRelation("Customer" + suffix,
                      {"custkey", "nationkey", "cname", "acctbal"});
  schema->AddRelation("Orders" + suffix,
                      {"orderkey", "custkey", "ostatus", "totalprice"});
  schema->AddRelation(
      "Lineitem" + suffix,
      {"orderkey", "partkey", "suppkey", "linenumber", "quantity",
       "extprice"});
}

void GenerateTpchData(Instance* instance, const std::string& suffix,
                      const TpchSizes& sizes, uint64_t seed) {
  Rng rng(seed);
  const Schema& schema = instance->schema();
  auto rel = [&](const char* name) { return schema.Require(name + suffix); };

  RelationId region = rel("Region");
  for (int r = 0; r < sizes.regions(); ++r) {
    instance->Insert(region, Tuple({Value::Int(r),
                                    Value::Str("region#" + std::to_string(r))}));
  }
  RelationId nation = rel("Nation");
  for (int n = 0; n < sizes.nations(); ++n) {
    instance->Insert(nation,
                     Tuple({Value::Int(n), Value::Int(n % sizes.regions()),
                            Value::Str("nation#" + std::to_string(n))}));
  }
  RelationId supplier = rel("Supplier");
  for (int s = 0; s < sizes.suppliers(); ++s) {
    instance->Insert(
        supplier,
        Tuple({Value::Int(s),
               Value::Int(static_cast<int64_t>(rng.Below(sizes.nations()))),
               Value::Str("supplier#" + std::to_string(s)),
               Value::Int(static_cast<int64_t>(rng.Below(100000)))}));
  }
  RelationId part = rel("Part");
  for (int p = 0; p < sizes.parts(); ++p) {
    instance->Insert(part,
                     Tuple({Value::Int(p),
                            Value::Str("part#" + std::to_string(p)),
                            Value::Int(static_cast<int64_t>(rng.Below(10000)))}));
  }
  // Partsupp: 4 suppliers per part, distinct (partkey, suppkey) pairs. The
  // pairs are remembered so Lineitems can reference valid combinations.
  RelationId partsupp = rel("Partsupp");
  std::vector<std::pair<int, int>> ps_pairs;
  ps_pairs.reserve(static_cast<size_t>(sizes.partsupps()));
  for (int p = 0; p < sizes.parts(); ++p) {
    for (int j = 0; j < 4; ++j) {
      int s = (p + j * 7 + j) % sizes.suppliers();
      ps_pairs.emplace_back(p, s);
      instance->Insert(
          partsupp,
          Tuple({Value::Int(p), Value::Int(s),
                 Value::Int(static_cast<int64_t>(rng.Below(1000))),
                 Value::Int(static_cast<int64_t>(rng.Below(500)))}));
    }
  }
  RelationId customer = rel("Customer");
  for (int c = 0; c < sizes.customers(); ++c) {
    instance->Insert(
        customer,
        Tuple({Value::Int(c),
               Value::Int(static_cast<int64_t>(rng.Below(sizes.nations()))),
               Value::Str("customer#" + std::to_string(c)),
               Value::Int(static_cast<int64_t>(rng.Below(100000)))}));
  }
  RelationId orders = rel("Orders");
  for (int o = 0; o < sizes.orders(); ++o) {
    instance->Insert(
        orders,
        Tuple({Value::Int(o),
               Value::Int(static_cast<int64_t>(rng.Below(sizes.customers()))),
               Value::Str(rng.Below(2) == 0 ? "O" : "F"),
               Value::Int(static_cast<int64_t>(rng.Below(500000)))}));
  }
  RelationId lineitem = rel("Lineitem");
  for (int l = 0; l < sizes.lineitems(); ++l) {
    const auto& [pk, sk] = ps_pairs[rng.Below(ps_pairs.size())];
    instance->Insert(
        lineitem,
        Tuple({Value::Int(l / 4), Value::Int(pk), Value::Int(sk),
               Value::Int(l % 4 + 1),
               Value::Int(static_cast<int64_t>(rng.Below(50) + 1)),
               Value::Int(static_cast<int64_t>(rng.Below(100000)))}));
  }
}

}  // namespace spider
