#ifndef SPIDER_WORKLOAD_TPCH_H_
#define SPIDER_WORKLOAD_TPCH_H_

#include <cstdint>
#include <string>

#include "catalog/schema.h"
#include "storage/instance.h"

namespace spider {

/// Row counts for the TPC-H-shaped synthetic data, scaled by `units`
/// (roughly 140 tuples per unit). The relation ratios follow TPC-H:
/// Lineitem is the largest by far, Region and Nation are constant.
struct TpchSizes {
  int units = 15;

  int regions() const { return 5; }
  int nations() const { return 25; }
  int suppliers() const { return 5 * units; }
  int parts() const { return 10 * units; }
  int partsupps() const { return 4 * parts(); }
  int customers() const { return 8 * units; }
  int orders() const { return 15 * units; }
  int lineitems() const { return 4 * orders(); }

  size_t total() const {
    return static_cast<size_t>(regions()) + nations() + suppliers() + parts() +
           partsupps() + customers() + orders() + lineitems();
  }
};

/// Names of the 8 TPC-H relations, in generation order.
inline constexpr const char* kTpchRelations[] = {
    "Region", "Nation", "Supplier", "Part",
    "Partsupp", "Customer", "Orders", "Lineitem"};
inline constexpr int kNumTpchRelations = 8;

/// Adds the 8 TPC-H-shaped relations, each named `<relation><suffix>`, to
/// `schema`:
///   Region(regionkey, rname)
///   Nation(nationkey, regionkey, nname)
///   Supplier(suppkey, nationkey, sname, sacctbal)
///   Part(partkey, pname, retailprice)
///   Partsupp(partkey, suppkey, availqty, supplycost)
///   Customer(custkey, nationkey, cname, acctbal)
///   Orders(orderkey, custkey, ostatus, totalprice)
///   Lineitem(orderkey, partkey, suppkey, linenumber, quantity, extprice)
void AddTpchRelations(Schema* schema, const std::string& suffix);

/// Populates the suffixed relations with referentially consistent data:
/// every foreign key refers to an existing row, and every Lineitem's
/// (partkey, suppkey) pair exists in Partsupp (so that the 3-join tgds of
/// Fig. 9 have matches).
void GenerateTpchData(Instance* instance, const std::string& suffix,
                      const TpchSizes& sizes, uint64_t seed);

}  // namespace spider

#endif  // SPIDER_WORKLOAD_TPCH_H_
