#include "algebra/compose.h"

#include <gtest/gtest.h>

#include <string>

#include "mapping/parser.h"

namespace spider {
namespace {

Scenario Parse(const std::string& text) { return ParseScenario(text); }

TEST(ComposeTest, FullTgdsComposeDirectly) {
  Scenario st = Parse(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    sigma: S(x, y) -> T(x, y);
  )");
  Scenario tu = Parse(R"(
    source schema { T(a, b); }
    target schema { U(a, b); }
    tau: T(x, y) -> U(y, x);
  )");
  ComposeResult result = ComposeMappings(*st.mapping, *tu.mapping);
  ASSERT_EQ(result.status, ComposeStatus::kComposed) << result.reason;
  ASSERT_NE(result.mapping, nullptr);
  EXPECT_EQ(result.mapping->NumTgds(), 1u);
  EXPECT_TRUE(result.membership_exact);
  const Tgd& tgd = result.mapping->tgd(result.mapping->st_tgds()[0]);
  EXPECT_EQ(tgd.lhs().size(), 1u);
  EXPECT_EQ(tgd.lhs()[0].relation, st.mapping->source().Require("S"));
  EXPECT_EQ(tgd.rhs()[0].relation, tu.mapping->target().Require("U"));
  ASSERT_EQ(result.origins.size(), 1u);
  EXPECT_EQ(result.origins[0].tu_tgd, tu.mapping->st_tgds()[0]);
  ASSERT_EQ(result.origins[0].st_tgds.size(), 1u);
  EXPECT_EQ(result.origins[0].st_tgds[0], st.mapping->st_tgds()[0]);
  EXPECT_FALSE(result.Summary().empty());
}

TEST(ComposeTest, AbsorbedExistentialStaysOut) {
  // sigma invents z, tau never mentions the second column in its conclusion:
  // the composed tgd needs no existential at all.
  Scenario st = Parse(R"(
    source schema { S(a); }
    target schema { T(a, b); }
    sigma: S(x) -> exists Z . T(x, Z);
  )");
  Scenario tu = Parse(R"(
    source schema { T(a, b); }
    target schema { U(a); }
    tau: T(x, y) -> U(x);
  )");
  ComposeResult result = ComposeMappings(*st.mapping, *tu.mapping);
  ASSERT_EQ(result.status, ComposeStatus::kComposed) << result.reason;
  ASSERT_EQ(result.mapping->NumTgds(), 1u);
  const Tgd& tgd = result.mapping->tgd(0);
  EXPECT_EQ(tgd.rhs().size(), 1u);
  // Every RHS variable also occurs in the LHS -> no existentials.
  EXPECT_EQ(tgd.var_names().size(), 1u);
  EXPECT_TRUE(result.membership_exact);
}

TEST(ComposeTest, SafeExportRequantifiesExistential) {
  Scenario st = Parse(R"(
    source schema { S(a); }
    target schema { T(a, b); }
    sigma: S(x) -> exists Z . T(x, Z);
  )");
  Scenario tu = Parse(R"(
    source schema { T(a, b); }
    target schema { U(a, b); }
    tau: T(x, y) -> U(x, y);
  )");
  ComposeResult result = ComposeMappings(*st.mapping, *tu.mapping);
  ASSERT_EQ(result.status, ComposeStatus::kComposed) << result.reason;
  ASSERT_EQ(result.mapping->NumTgds(), 1u);
  const Tgd& tgd = result.mapping->tgd(0);
  // S(x) -> exists Z . U(x, Z): two variables, one of them existential
  // (absent from the LHS).
  EXPECT_EQ(tgd.var_names().size(), 2u);
  EXPECT_EQ(tgd.lhs().size(), 1u);
  EXPECT_EQ(tgd.lhs()[0].terms.size(), 1u);
  EXPECT_TRUE(result.membership_exact);
}

TEST(ComposeTest, ExistentialExportedTwiceIsInexpressible) {
  // Both tau tgds consume sigma's invented value in different conclusions;
  // the composed mapping would need ONE shared null across two tgds (a
  // Skolem function), so plain s-t tgds cannot express it.
  Scenario st = Parse(R"(
    source schema { S(a); }
    target schema { T(a, b); }
    sigma: S(x) -> exists Z . T(x, Z);
  )");
  Scenario tu = Parse(R"(
    source schema { T(a, b); }
    target schema { P(a, b); Q(a); }
    tau1: T(x, y) -> P(x, y);
    tau2: T(x, y) -> Q(y);
  )");
  ComposeResult result = ComposeMappings(*st.mapping, *tu.mapping);
  EXPECT_EQ(result.status, ComposeStatus::kInexpressible);
  EXPECT_EQ(result.offending, "sigma");
  EXPECT_NE(result.reason.find("Z"), std::string::npos) << result.reason;
}

TEST(ComposeTest, CollapseCoverSkippedUnderCanonicalSemantics) {
  // FKPT's manager example: tau matches only when sigma's invented manager
  // equals the employee, which the canonical chase never makes true. Under
  // canonical-solution semantics the cover is skipped (tau composes to
  // nothing); under exact membership semantics the composition needs
  // second-order tgds.
  Scenario st = Parse(R"(
    source schema { Emp(e); }
    target schema { Mgr(e, m); }
    sigma: Emp(x) -> exists M . Mgr(x, M);
  )");
  Scenario tu = Parse(R"(
    source schema { Mgr(e, m); }
    target schema { SelfMgr(e); }
    tau: Mgr(x, x) -> SelfMgr(x);
  )");
  ComposeResult relaxed = ComposeMappings(*st.mapping, *tu.mapping);
  ASSERT_EQ(relaxed.status, ComposeStatus::kComposed) << relaxed.reason;
  EXPECT_FALSE(relaxed.membership_exact);
  EXPECT_EQ(relaxed.mapping->NumTgds(), 0u);
  EXPECT_GE(relaxed.covers_skipped_collapse, 1u);

  ComposeOptions strict;
  strict.require_membership_exact = true;
  ComposeResult exact = ComposeMappings(*st.mapping, *tu.mapping, strict);
  EXPECT_EQ(exact.status, ComposeStatus::kInexpressible);
  EXPECT_EQ(exact.offending, "tau");
}

TEST(ComposeTest, CopySharingCapturesSameFiringMatches) {
  // tau's two premise atoms can be produced by ONE firing of sigma (sharing
  // the invented E); the shared-copy cover composes to the plain A(x)->B(x).
  Scenario st = Parse(R"(
    source schema { A(a); }
    target schema { P(a, b); Q(a, b); }
    sigma: A(x) -> exists E . P(x, E) & Q(x, E);
  )");
  Scenario tu = Parse(R"(
    source schema { P(a, b); Q(a, b); }
    target schema { B(a); }
    tau: P(x, y) & Q(x, y) -> B(x);
  )");
  ComposeResult result = ComposeMappings(*st.mapping, *tu.mapping);
  ASSERT_EQ(result.status, ComposeStatus::kComposed) << result.reason;
  bool found = false;
  for (TgdId id : result.mapping->st_tgds()) {
    const Tgd& tgd = result.mapping->tgd(id);
    if (tgd.lhs().size() == 1 && tgd.rhs().size() == 1 &&
        tgd.var_names().size() == 1) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << result.Summary();
}

TEST(ComposeTest, StTargetDependenciesBlockUnfolding) {
  Scenario st = Parse(R"(
    source schema { S(a); }
    target schema { T(a); T2(a); }
    sigma: S(x) -> T(x);
    closure: T(x) -> T2(x);
  )");
  Scenario tu = Parse(R"(
    source schema { T(a); T2(a); }
    target schema { U(a); }
    tau: T2(x) -> U(x);
  )");
  ComposeResult result = ComposeMappings(*st.mapping, *tu.mapping);
  EXPECT_EQ(result.status, ComposeStatus::kInexpressible);
  EXPECT_EQ(result.offending, "closure");
}

TEST(ComposeTest, ArityMismatchIsSchemaMismatch) {
  Scenario st = Parse(R"(
    source schema { S(a); }
    target schema { T(a, b); }
    sigma: S(x) -> exists Z . T(x, Z);
  )");
  Scenario tu = Parse(R"(
    source schema { T(a); }
    target schema { U(a); }
    tau: T(x) -> U(x);
  )");
  ComposeResult result = ComposeMappings(*st.mapping, *tu.mapping);
  EXPECT_EQ(result.status, ComposeStatus::kSchemaMismatch);
  EXPECT_NE(result.reason.find("T"), std::string::npos);
}

TEST(ComposeTest, TuTargetDependenciesCarryOver) {
  Scenario st = Parse(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    sigma: S(x, y) -> T(x, y);
  )");
  Scenario tu = Parse(R"(
    source schema { T(a, b); }
    target schema { U(a, b); V(a); }
    tau: T(x, y) -> U(x, y);
    close: U(x, y) -> V(x);
    key: U(x, y) & U(x, z) -> y = z;
  )");
  ComposeResult result = ComposeMappings(*st.mapping, *tu.mapping);
  ASSERT_EQ(result.status, ComposeStatus::kComposed) << result.reason;
  EXPECT_EQ(result.mapping->st_tgds().size(), 1u);
  ASSERT_EQ(result.mapping->target_tgds().size(), 1u);
  EXPECT_EQ(result.mapping->tgd(result.mapping->target_tgds()[0]).name(),
            "close");
  ASSERT_EQ(result.mapping->NumEgds(), 1u);
  EXPECT_EQ(result.mapping->egd(0).name(), "key");
}

TEST(ComposeTest, MissingIntermediateRelationIsVacuous) {
  // tau reads W, which M_st can never produce: it contributes nothing but
  // does not make the composition fail.
  Scenario st = Parse(R"(
    source schema { S(a); }
    target schema { T(a); }
    sigma: S(x) -> T(x);
  )");
  Scenario tu = Parse(R"(
    source schema { T(a); W(a); }
    target schema { U(a); }
    tau1: T(x) -> U(x);
    tau2: W(x) -> U(x);
  )");
  ComposeResult result = ComposeMappings(*st.mapping, *tu.mapping);
  ASSERT_EQ(result.status, ComposeStatus::kComposed) << result.reason;
  EXPECT_EQ(result.mapping->NumTgds(), 1u);
}

TEST(ComposeTest, CoverLimitIsReported) {
  Scenario st = Parse(R"(
    source schema { S1(a); S2(a); }
    target schema { T(a); }
    sigma1: S1(x) -> T(x);
    sigma2: S2(x) -> T(x);
  )");
  Scenario tu = Parse(R"(
    source schema { T(a); }
    target schema { U(a, b); }
    tau: T(x) & T(y) -> U(x, y);
  )");
  ComposeOptions tight;
  tight.max_covers_per_tgd = 1;
  ComposeResult result = ComposeMappings(*st.mapping, *tu.mapping, tight);
  EXPECT_EQ(result.status, ComposeStatus::kCoverLimit);

  ComposeResult full = ComposeMappings(*st.mapping, *tu.mapping);
  ASSERT_EQ(full.status, ComposeStatus::kComposed) << full.reason;
  // Fresh sigma1/sigma1, sigma1/sigma2, sigma2/sigma2 pairs plus the two
  // shared-copy covers, deduplicated up to renaming.
  EXPECT_GE(full.mapping->NumTgds(), 4u);
}

TEST(ComposeTest, DuplicateUnfoldingsAreMerged) {
  Scenario st = Parse(R"(
    source schema { S(a); }
    target schema { T(a); }
    sigma1: S(x) -> T(x);
    sigma2: S(x) -> T(x);
  )");
  Scenario tu = Parse(R"(
    source schema { T(a); }
    target schema { U(a); }
    tau: T(x) -> U(x);
  )");
  ComposeResult result = ComposeMappings(*st.mapping, *tu.mapping);
  ASSERT_EQ(result.status, ComposeStatus::kComposed) << result.reason;
  EXPECT_EQ(result.mapping->NumTgds(), 1u);
  EXPECT_GE(result.duplicates_merged, 1u);
}

TEST(ComposeTest, ConstantsInConclusionsUnify) {
  // sigma pins column b to 7; tau joins on it. The live cover pins y = 7.
  Scenario st = Parse(R"(
    source schema { S(a); }
    target schema { T(a, b); }
    sigma: S(x) -> T(x, 7);
  )");
  Scenario tu = Parse(R"(
    source schema { T(a, b); }
    target schema { U(a, b); }
    tau: T(x, y) -> U(x, y);
  )");
  ComposeResult result = ComposeMappings(*st.mapping, *tu.mapping);
  ASSERT_EQ(result.status, ComposeStatus::kComposed) << result.reason;
  ASSERT_EQ(result.mapping->NumTgds(), 1u);
  const Tgd& tgd = result.mapping->tgd(0);
  ASSERT_EQ(tgd.rhs()[0].terms.size(), 2u);
  ASSERT_FALSE(tgd.rhs()[0].terms[1].is_var());
  EXPECT_EQ(tgd.rhs()[0].terms[1].value(), Value::Int(7));
}

TEST(ComposeTest, DeadCoverWithClashingConstantsIsSkipped) {
  Scenario st = Parse(R"(
    source schema { S(a); }
    target schema { T(a, b); }
    sigma: S(x) -> T(x, 7);
  )");
  Scenario tu = Parse(R"(
    source schema { T(a, b); }
    target schema { U(a); }
    tau: T(x, 8) -> U(x);
  )");
  ComposeResult result = ComposeMappings(*st.mapping, *tu.mapping);
  ASSERT_EQ(result.status, ComposeStatus::kComposed) << result.reason;
  EXPECT_EQ(result.mapping->NumTgds(), 0u);
  EXPECT_GE(result.covers_skipped_dead, 1u);
  EXPECT_TRUE(result.membership_exact);
}

}  // namespace
}  // namespace spider
