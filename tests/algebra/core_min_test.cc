#include "algebra/core_min.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chase/chase.h"
#include "debugger/debugger.h"
#include "mapping/parser.h"
#include "workload/random_scenario.h"

namespace spider {
namespace {

size_t CountFacts(const Instance& instance) {
  size_t n = 0;
  for (size_t r = 0; r < instance.NumRelations(); ++r) {
    n += instance.tuples(static_cast<RelationId>(r)).size();
  }
  return n;
}

std::vector<FactRef> AllTargetFacts(const Instance& target) {
  std::vector<FactRef> facts;
  for (size_t r = 0; r < target.NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    for (size_t row = 0; row < target.tuples(rel).size(); ++row) {
      facts.push_back({Side::kTarget, rel, static_cast<int32_t>(row)});
    }
  }
  return facts;
}

TEST(CoreMinTest, RedundantNullFactFoldsAndRoutesSurvive) {
  Scenario scenario = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    q: S(x, y) -> exists Z . T(x, Z);
    p: S(x, y) -> T(x, y);
    source instance { S(1, 2); }
  )");
  ChaseScenario(&scenario);
  ASSERT_EQ(CountFacts(*scenario.target), 2u);

  // Debugger and route exist BEFORE minimization; the swap must keep both
  // working.
  MappingDebugger debugger(&scenario);
  std::vector<FactRef> facts = AllTargetFacts(*scenario.target);
  OneRouteResult route = debugger.OneRoute(facts);
  ASSERT_TRUE(route.found);

  CoreMinimizationResult result = MinimizeTargetToCore(
      &scenario, {{&route.route, &facts}});
  EXPECT_EQ(result.facts_removed, 1u);
  EXPECT_EQ(result.nulls_collapsed, 1u);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.routes_remapped, 1u);
  EXPECT_EQ(CountFacts(*scenario.target), 1u);

  // The remapped route still proves the (remapped) facts on the core.
  std::string why;
  EXPECT_TRUE(route.route.Validate(*scenario.mapping, *scenario.source,
                                   *scenario.target, facts, &why))
      << why;

  // And replays step by step in the debugger built before the swap.
  RoutePlayer player = debugger.Play(route.route);
  while (player.Step()) {
  }
  EXPECT_TRUE(player.done());
  EXPECT_FALSE(player.produced().empty());

  // The core is a core: retracting again removes nothing.
  CoreMinimizationResult again = MinimizeTargetToCore(&scenario);
  EXPECT_EQ(again.facts_removed, 0u);
  EXPECT_EQ(again.nulls_collapsed, 0u);
}

TEST(CoreMinTest, SourceVisibleNullsAreRigid) {
  // Without rigidity T(#n0) would fold onto T(5); the debugger's source
  // instance still shows #n0, so the fold must not happen.
  Scenario scenario = ParseScenario(R"(
    source schema { S(a); S2(a); }
    target schema { T(a); }
    p: S(x) -> T(x);
    p2: S2(x) -> T(x);
    source instance { S(#n0); S2(5); }
  )");
  ChaseScenario(&scenario);
  ASSERT_EQ(CountFacts(*scenario.target), 2u);

  CoreMinimizationResult result = MinimizeTargetToCore(&scenario);
  EXPECT_EQ(result.facts_removed, 0u);
  EXPECT_EQ(result.nulls_collapsed, 0u);
  EXPECT_EQ(CountFacts(*scenario.target), 2u);
  // The retraction never mentions the rigid null.
  EXPECT_EQ(result.retraction.count(1), 0u);
}

TEST(CoreMinTest, ChaseInventedNullCanFoldOntoRigidOne) {
  Scenario scenario = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a); }
    q: S(x) -> exists Z . T(Z);
    p: S(x) -> T(x);
    source instance { S(#n0); }
  )");
  ChaseScenario(&scenario);
  ASSERT_EQ(CountFacts(*scenario.target), 2u);

  CoreMinimizationResult result = MinimizeTargetToCore(&scenario);
  // T(Z) folds onto T(#n0): the invented null moves, the rigid one stays.
  EXPECT_EQ(result.facts_removed, 1u);
  EXPECT_EQ(result.nulls_collapsed, 1u);
  EXPECT_EQ(CountFacts(*scenario.target), 1u);
  const Tuple& t = scenario.target->tuples(0)[0];
  ASSERT_TRUE(t.at(0).is_null());
  EXPECT_EQ(t.at(0).AsNull().id, 1);
}

TEST(CoreMinTest, RemapBindingRewritesOnlyRetractedNulls) {
  InstanceHom retraction;
  retraction[7] = Value::Int(3);
  Binding b(3);
  b.Set(0, Value::Null(7));
  b.Set(2, Value::Null(8));
  Binding out = RemapBinding(b, retraction);
  EXPECT_EQ(out.Get(0), Value::Int(3));
  EXPECT_FALSE(out.IsBound(1));
  EXPECT_EQ(out.Get(2), Value::Null(8));
}

TEST(CoreMinTest, RandomScenariosStaySoundAfterMinimization) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    RandomScenarioOptions options;
    options.seed = seed;
    options.rows_per_relation = 6;
    Scenario scenario = BuildRandomScenario(options);
    try {
      ChaseScenario(&scenario);
    } catch (const SpiderError&) {
      continue;  // egd failure: no solution to minimize
    }
    std::vector<FactRef> facts = AllTargetFacts(*scenario.target);
    if (facts.empty()) continue;
    if (facts.size() > 8) facts.resize(8);

    MappingDebugger debugger(&scenario);
    OneRouteResult route = debugger.OneRoute(facts);
    ASSERT_TRUE(route.found) << "seed " << seed;

    size_t before = CountFacts(*scenario.target);
    CoreMinimizationResult result =
        MinimizeTargetToCore(&scenario, {{&route.route, &facts}});
    EXPECT_EQ(CountFacts(*scenario.target), before - result.facts_removed);

    std::string why;
    EXPECT_TRUE(route.route.Validate(*scenario.mapping, *scenario.source,
                                     *scenario.target, facts, &why))
        << "seed " << seed << ": " << why;

    RoutePlayer player = debugger.Play(route.route);
    while (player.Step()) {
    }
    EXPECT_TRUE(player.done()) << "seed " << seed;

    if (result.complete) {
      // Idempotence: the retract of a core is the core itself.
      CoreMinimizationResult again = MinimizeTargetToCore(&scenario);
      EXPECT_EQ(again.facts_removed, 0u) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace spider
