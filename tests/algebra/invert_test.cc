#include "algebra/invert.h"

#include <gtest/gtest.h>

#include <string>

#include "mapping/parser.h"

namespace spider {
namespace {

Scenario Parse(const std::string& text) { return ParseScenario(text); }

TEST(InvertTest, CopyMappingHasExactRecovery) {
  Scenario m = Parse(R"(
    source schema { A(a, b); }
    target schema { P(a, b); }
    copy: A(x, y) -> P(x, y);
  )");
  InversionReport report = InvertMapping(*m.mapping);
  EXPECT_EQ(report.verdict, InverseVerdict::kExactRecovery) << report.Summary();
  EXPECT_EQ(report.compose_status, ComposeStatus::kComposed);
  ASSERT_NE(report.candidate, nullptr);
  EXPECT_EQ(report.candidate->NumTgds(), 1u);
  EXPECT_EQ(report.candidate->tgd(0).name(), "copy_inv");
  EXPECT_FALSE(report.Summary().empty());
}

TEST(InvertTest, ProjectionIsOnlySoundRecovery) {
  // The second column never reaches the target: the round trip
  // A(x, y) -> exists Z . A(x, Z) loses data but invents nothing true.
  Scenario m = Parse(R"(
    source schema { A(a, b); }
    target schema { P(a); }
    proj: A(x, y) -> P(x);
  )");
  InversionReport report = InvertMapping(*m.mapping);
  EXPECT_EQ(report.verdict, InverseVerdict::kSoundRecovery) << report.Summary();
  // The failed direction (identity into round trip) carries a concrete
  // source instance demonstrating the loss.
  EXPECT_NE(report.containment.m2_in_m1.counterexample, nullptr);
}

TEST(InvertTest, MergeIsOnlyCompleteRecovery) {
  // A and B both land in P; the reverse cannot tell them apart, so the
  // round trip returns everything plus cross-talk.
  Scenario m = Parse(R"(
    source schema { A(a); B(a); }
    target schema { P(a); }
    ma: A(x) -> P(x);
    mb: B(x) -> P(x);
  )");
  InversionReport report = InvertMapping(*m.mapping);
  EXPECT_EQ(report.verdict, InverseVerdict::kCompleteRecovery)
      << report.Summary();
  EXPECT_NE(report.containment.m1_in_m2.counterexample, nullptr);
}

TEST(InvertTest, ConstantConclusionIsNotARecovery) {
  // The target retains nothing about the source tuple; the round trip
  // derives facts unrelated to the input and loses the input entirely.
  Scenario m = Parse(R"(
    source schema { A(a); }
    target schema { P(a); }
    wipe: A(x) -> P(3);
  )");
  InversionReport report = InvertMapping(*m.mapping);
  EXPECT_TRUE(report.verdict == InverseVerdict::kNotARecovery ||
              report.verdict == InverseVerdict::kSoundRecovery)
      << report.Summary();
  // A(x) -> exists Z. A(Z) cannot give back x: never complete or exact.
  EXPECT_NE(report.verdict, InverseVerdict::kExactRecovery);
  EXPECT_NE(report.verdict, InverseVerdict::kCompleteRecovery);
}

TEST(InvertTest, NoStTgdsIsInconclusive) {
  Scenario m = Parse(R"(
    source schema { A(a); }
    target schema { P(a); }
  )");
  InversionReport report = InvertMapping(*m.mapping);
  EXPECT_EQ(report.verdict, InverseVerdict::kInconclusive);
  EXPECT_FALSE(report.reason.empty());
}

TEST(InvertTest, TargetDependenciesAreInconclusive) {
  Scenario m = Parse(R"(
    source schema { A(a, b); }
    target schema { P(a, b); }
    copy: A(x, y) -> P(x, y);
    key: P(x, y) & P(x, z) -> y = z;
  )");
  InversionReport report = InvertMapping(*m.mapping);
  EXPECT_EQ(report.verdict, InverseVerdict::kInconclusive);
  EXPECT_FALSE(report.reason.empty());
}

TEST(InvertTest, IdentityMappingBuilder) {
  Scenario m = Parse(R"(
    source schema { A(a, b); B(a); }
    target schema { P(a); }
    p: A(x, y) -> P(x);
  )");
  auto identity = BuildIdentityMapping(m.mapping->source());
  EXPECT_EQ(identity->NumTgds(), 2u);
  EXPECT_EQ(identity->tgd(0).name(), "id_A");
  EXPECT_EQ(identity->tgd(1).name(), "id_B");
  EXPECT_EQ(identity->tgd(0).lhs(), identity->tgd(0).rhs());
}

}  // namespace
}  // namespace spider
