#include "algebra/pipeline.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algebra/compose.h"
#include "chase/homomorphism.h"
#include "mapping/parser.h"
#include "workload/random_scenario.h"

namespace spider {
namespace {

PipelineScenario ParsePipeline(const std::string& st_text,
                               const std::string& tu_text) {
  PipelineScenario pipeline;
  pipeline.st = ParseScenario(st_text);
  pipeline.tu = ParseScenario(tu_text);
  return pipeline;
}

std::vector<FactRef> AllTargetFacts(const Instance& target) {
  std::vector<FactRef> facts;
  for (size_t r = 0; r < target.NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    for (size_t row = 0; row < target.tuples(rel).size(); ++row) {
      facts.push_back({Side::kTarget, rel, static_cast<int32_t>(row)});
    }
  }
  return facts;
}

TEST(PipelineTest, ChasePipelineFillsBothHops) {
  PipelineScenario pipeline = ParsePipeline(R"(
    source schema { Orders(id, cust); }
    target schema { Fact(id, cust); Dim(cust, region); }
    f: Orders(o, c) -> Fact(o, c);
    d: Orders(o, c) -> exists R . Dim(c, R);
    source instance { Orders(1, 10); Orders(2, 20); }
  )",
                                            R"(
    source schema { Fact(id, cust); Dim(cust, region); }
    target schema { RegionOrders(id, region); }
    j: Fact(o, c) & Dim(c, r) -> RegionOrders(o, r);
  )");
  ChasePipelineResult stats = ChasePipeline(&pipeline);
  EXPECT_GT(stats.st_stats.st_steps, 0u);
  EXPECT_GT(stats.tu_stats.st_steps, 0u);
  // T0 was copied across, nulls intact.
  EXPECT_EQ(pipeline.tu.source->ToString(), pipeline.st.target->ToString());
  EXPECT_EQ(
      pipeline.tu.target
          ->tuples(pipeline.tu.mapping->target().Require("RegionOrders"))
          .size(),
      2u);
  EXPECT_GE(pipeline.tu.max_null_id, pipeline.st.max_null_id);
}

TEST(PipelineTest, StitchedRouteValidatesEndToEnd) {
  PipelineScenario pipeline = ParsePipeline(R"(
    source schema { Orders(id, cust); }
    target schema { Fact(id, cust); Dim(cust, region); }
    f: Orders(o, c) -> Fact(o, c);
    d: Orders(o, c) -> exists R . Dim(c, R);
    source instance { Orders(1, 10); }
  )",
                                            R"(
    source schema { Fact(id, cust); Dim(cust, region); }
    target schema { RegionOrders(id, region); }
    j: Fact(o, c) & Dim(c, r) -> RegionOrders(o, r);
  )");
  ChasePipeline(&pipeline);
  std::vector<FactRef> u_facts = AllTargetFacts(*pipeline.tu.target);
  ASSERT_EQ(u_facts.size(), 1u);

  StitchedRoute stitched = TraceThroughComposition(pipeline, u_facts);
  ASSERT_TRUE(stitched.found);
  // The join consumed one Fact and one Dim; both halves are real routes.
  EXPECT_EQ(stitched.t_facts_tu.size(), 2u);
  EXPECT_EQ(stitched.t_facts_st.size(), 2u);
  EXPECT_EQ(stitched.tu_route.size(), 1u);
  EXPECT_EQ(stitched.st_route.size(), 2u);

  std::string why;
  EXPECT_TRUE(ValidateStitchedRoute(pipeline, stitched, u_facts, &why)) << why;

  std::string rendered = RenderStitchedRoute(pipeline, stitched);
  EXPECT_NE(rendered.find("S->T route"), std::string::npos);
  EXPECT_NE(rendered.find("intermediate T-facts"), std::string::npos);
  EXPECT_NE(rendered.find("T->U route"), std::string::npos);
}

TEST(PipelineTest, RandomPipelineIsDeterministic) {
  RandomPipelineOptions options;
  options.seed = 42;
  PipelineScenario a = BuildRandomPipeline(options);
  PipelineScenario b = BuildRandomPipeline(options);
  EXPECT_EQ(a.st.mapping->ToString(), b.st.mapping->ToString());
  EXPECT_EQ(a.tu.mapping->ToString(), b.tu.mapping->ToString());
  EXPECT_EQ(a.st.source->ToString(), b.st.source->ToString());

  options.seed = 43;
  PipelineScenario c = BuildRandomPipeline(options);
  EXPECT_NE(a.st.mapping->ToString() + a.tu.mapping->ToString(),
            c.st.mapping->ToString() + c.tu.mapping->ToString());
}

// The differential oracle from the issue: chasing the source through the
// composed mapping must agree (up to homomorphic equivalence) with chasing
// S -> T then T -> U, on a few hundred random three-schema pipelines; route
// stitching must be byte-identical across exec thread counts.
TEST(PipelineTest, CompositionDifferentialOracle) {
  const int kThreads[] = {1, 2, 8};
  size_t composed_ok = 0;
  size_t inexpressible = 0;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    RandomPipelineOptions options;
    options.seed = seed;
    options.rows_per_relation = 4;
    options.fanout = 3;

    PipelineScenario probe = BuildRandomPipeline(options);
    ComposeResult composed =
        ComposeMappings(*probe.st.mapping, *probe.tu.mapping);
    if (composed.status != ComposeStatus::kComposed) {
      ++inexpressible;
      continue;
    }
    ++composed_ok;

    // Two-step chase at each thread count: the pipeline result must be
    // byte-identical, and stitched traces must render identically.
    std::string two_step_text;
    std::string trace_text;
    PipelineScenario pipeline;
    for (int threads : kThreads) {
      PipelineScenario p = BuildRandomPipeline(options);
      ChaseOptions chase_options;
      chase_options.exec.num_threads = threads;
      ChasePipeline(&p, chase_options);
      std::string text = p.tu.target->ToString();

      std::vector<FactRef> u_facts = AllTargetFacts(*p.tu.target);
      if (u_facts.size() > 4) u_facts.resize(4);
      std::string traces;
      if (!u_facts.empty()) {
        RouteOptions route_options;
        route_options.exec.num_threads = threads;
        StitchedRoute stitched =
            TraceThroughComposition(p, u_facts, route_options);
        ASSERT_TRUE(stitched.found) << "seed " << seed;
        std::string why;
        ASSERT_TRUE(ValidateStitchedRoute(p, stitched, u_facts, &why))
            << "seed " << seed << ": " << why;
        traces = RenderStitchedRoute(p, stitched);
      }
      if (threads == 1) {
        two_step_text = text;
        trace_text = traces;
        pipeline = std::move(p);
      } else {
        EXPECT_EQ(text, two_step_text) << "seed " << seed << " threads "
                                       << threads;
        EXPECT_EQ(traces, trace_text) << "seed " << seed << " threads "
                                      << threads;
      }
    }

    // One-step chase through the composed mapping.
    Scenario one_step;
    one_step.mapping = std::move(composed.mapping);
    one_step.source =
        std::make_unique<Instance>(&one_step.mapping->source());
    one_step.target =
        std::make_unique<Instance>(&one_step.mapping->target());
    for (size_t r = 0; r < pipeline.st.source->NumRelations(); ++r) {
      RelationId rel = static_cast<RelationId>(r);
      for (const Tuple& t : pipeline.st.source->tuples(rel)) {
        one_step.source->Insert(rel, Tuple(t));
      }
    }
    ChaseScenario(&one_step);

    EXPECT_TRUE(
        HomomorphicallyEquivalent(*one_step.target, *pipeline.tu.target))
        << "seed " << seed << "\ncomposed:\n"
        << one_step.target->ToString() << "\ntwo-step:\n"
        << pipeline.tu.target->ToString() << "\nmapping:\n"
        << one_step.mapping->ToString();
  }
  // The generator must exercise the composable regime, not just report
  // inexpressible pipelines.
  EXPECT_GT(composed_ok, 50u) << "inexpressible: " << inexpressible;
}

}  // namespace
}  // namespace spider
