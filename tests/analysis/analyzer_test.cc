#include "analysis/analyzer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mapping/parser.h"
#include "testing/fixtures.h"
#include "workload/random_scenario.h"
#include "workload/real_scenarios.h"

namespace spider {
namespace {

bool HasSeverity(const AnalysisReport& report, Severity severity) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity == severity) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// The three §2.1 debugging scenarios, each reduced to the tgds that seed its
// bug, written with explicit newlines so the asserted spans are exact.
// ---------------------------------------------------------------------------

// Scenario 1: m1 drops `loc` and copies `m` into both name and maidenName.
TEST(AnalyzerTest, Scenario1DroppedVariableAndRepeatWithSpans) {
  Scenario s = ParseScenario(
      "source schema { Cards(cardNo, limit, ssn, name, maidenName, salary, "
      "location); }\n"                                              // line 1
      "target schema {\n"                                           // line 2
      "  Accounts(accNo, limit, accHolder);\n"                      // line 3
      "  Clients(ssn, name, maidenName, income, address);\n"        // line 4
      "}\n"                                                         // line 5
      "m1: Cards(cn,l,s,n,m,sal,loc) ->\n"                          // line 6
      "      exists A . Accounts(cn,l,s) & Clients(s,m,m,sal,A);\n");

  AnalysisReport report = AnalyzeMapping(*s.mapping);
  std::vector<Diagnostic> dropped =
      report.Matching("shape", "dropped-variable");
  bool found_loc = false;
  for (const Diagnostic& d : dropped) {
    if (d.message.find("'loc'") == std::string::npos) continue;
    found_loc = true;
    // Anchored to the LHS atom that binds loc: Cards(...) on line 6.
    EXPECT_EQ(d.span, (SourceSpan{6, 5, 6, 30}));
    EXPECT_EQ(s.mapping->tgd(d.tgd).name(), "m1");
  }
  EXPECT_TRUE(found_loc);

  std::vector<Diagnostic> repeated =
      report.Matching("shape", "repeated-variable");
  ASSERT_EQ(repeated.size(), 1u);
  EXPECT_NE(repeated[0].message.find("'m'"), std::string::npos);
  // Anchored to the RHS atom with the duplicate: Clients(...) on line 7.
  EXPECT_EQ(repeated[0].span, (SourceSpan{7, 37, 7, 57}));
}

// Scenario 2: m3 joins FBAccounts with CreditCards without a join condition.
TEST(AnalyzerTest, Scenario2MissingJoinWithSpan) {
  Scenario s = ParseScenario(
      "source schema {\n"                                           // line 1
      "  FBAccounts(bankNo, ssn, name, income, address);\n"         // line 2
      "  CreditCards(cardNo, creditLimit, custSSN);\n"              // line 3
      "}\n"                                                         // line 4
      "target schema {\n"                                           // line 5
      "  Accounts(accNo, limit, accHolder);\n"                      // line 6
      "  Clients(ssn, name, maidenName, income, address);\n"        // line 7
      "}\n"                                                         // line 8
      "m3: FBAccounts(bn,s,n,i,a) & CreditCards(cn,cl,cs) ->\n"     // line 9
      "      exists M . Accounts(cn,cl,cs) & Clients(cs,n,M,i,a);\n");

  AnalysisReport report = AnalyzeMapping(*s.mapping);
  std::vector<Diagnostic> cartesian =
      report.Matching("shape", "disconnected-lhs");
  ASSERT_EQ(cartesian.size(), 1u);
  EXPECT_EQ(s.mapping->tgd(cartesian[0].tgd).name(), "m3");
  // The whole dependency, m3's name through the closing ';'.
  EXPECT_EQ(cartesian[0].span, (SourceSpan{9, 1, 10, 59}));
}

// Scenario 3: Accounts.accNo is only ever filled by m5's existential.
TEST(AnalyzerTest, Scenario3NullOnlyPositionWithSpan) {
  Scenario s = ParseScenario(
      "source schema { SupplementaryCards(accNo, ssn); }\n"         // line 1
      "target schema { Clients(ssn); Accounts(accNo, holder); }\n"  // line 2
      "m2: SupplementaryCards(an, s) -> Clients(s);\n"              // line 3
      "m5: Clients(s) -> exists N . Accounts(N, s);\n");            // line 4

  AnalysisReport report = AnalyzeMapping(*s.mapping);
  std::vector<Diagnostic> null_only =
      report.Matching("coverage", "null-only-position");
  ASSERT_EQ(null_only.size(), 1u);
  // The seed linter's exact message, now with a position: the first RHS
  // atom writing Accounts, in m5 on line 4.
  EXPECT_EQ(null_only[0].message,
            "target attribute Accounts.accNo is only ever filled with "
            "invented nulls (no tgd supplies a value)");
  EXPECT_EQ(null_only[0].span, (SourceSpan{4, 30, 4, 44}));
  EXPECT_EQ(s.mapping->tgd(null_only[0].tgd).name(), "m5");
}

TEST(AnalyzerTest, TransitiveNullOnlyUsesTransitiveWording) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T1(a); T2(a); }
    m: S(x) -> exists N . T1(N);
    t: T1(x) -> T2(x);
  )");
  AnalysisReport report = AnalyzeMapping(*s.mapping);
  std::vector<Diagnostic> null_only =
      report.Matching("coverage", "null-only-position");
  ASSERT_EQ(null_only.size(), 2u);  // T1.a directly, T2.a transitively.
  bool transitive = false;
  for (const Diagnostic& d : null_only) {
    if (d.message.find("T2.a") != std::string::npos) {
      EXPECT_NE(d.message.find("descends from an existential"),
                std::string::npos);
      transitive = true;
    }
  }
  EXPECT_TRUE(transitive);
}

TEST(AnalyzerTest, CleanMappingHasNoDiagnostics) {
  Scenario s = ParseScenario(R"(
    source schema { Emp(id, name); }
    target schema { Person(id, name); }
    m: Emp(x, n) -> Person(x, n);
  )");
  AnalysisReport report = AnalyzeMapping(*s.mapping);
  EXPECT_TRUE(report.diagnostics.empty())
      << RenderDiagnostics(report.diagnostics);
}

TEST(AnalyzerTest, SubsumedTgdReported) {
  Scenario s = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    m1: S(x, y) -> T(x, y);
    m2: S(x, y) -> exists Z . T(x, Z);
  )");
  AnalysisReport report = AnalyzeMapping(*s.mapping);
  std::vector<Diagnostic> subsumed =
      report.Matching("subsumption", "subsumed-tgd");
  ASSERT_EQ(subsumed.size(), 1u);
  EXPECT_EQ(s.mapping->tgd(subsumed[0].tgd).name(), "m2");
  EXPECT_EQ(subsumed[0].span, s.mapping->tgd(subsumed[0].tgd).span());
  EXPECT_GE(report.chases_run, 2u);
}

TEST(AnalyzerTest, TerminationWitnessNamesCycle) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { A(x); B(x); }
    m: S(x) -> A(x);
    t1: A(x) -> exists Y . B(Y);
    t2: B(x) -> exists Z . A(Z);
  )");
  AnalysisReport report = AnalyzeMapping(*s.mapping);
  std::vector<Diagnostic> cycles =
      report.Matching("termination", "not-weakly-acyclic");
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_NE(cycles[0].message.find("~(t1)~>"), std::string::npos);
  EXPECT_NE(cycles[0].message.find("~(t2)~>"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Egd interaction.
// ---------------------------------------------------------------------------

TEST(AnalyzerTest, LatentKeyViolationIsAnError) {
  // Every firing of m writes two T facts that agree on the key but carry
  // two different generic values: the egd fails on all non-degenerate data.
  Scenario s = ParseScenario(R"(
    source schema { R(a, b, c); }
    target schema { T(a, b); }
    m: R(x, y, z) -> T(x, y) & T(x, z);
    e: T(a, b) & T(a, c) -> b = c;
  )");
  AnalysisReport report = AnalyzeMapping(*s.mapping);
  std::vector<Diagnostic> violations =
      report.Matching("egd", "latent-key-violation");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].severity, Severity::kError);
  EXPECT_EQ(violations[0].egd, 0);
  EXPECT_EQ(s.mapping->tgd(violations[0].tgd).name(), "m");
}

TEST(AnalyzerTest, EgdOnUnwrittenRelationNeverFires) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a); Dead(a, b); }
    m: S(x) -> T(x);
    e: Dead(k, v) & Dead(k, w) -> v = w;
  )");
  AnalysisReport report = AnalyzeMapping(*s.mapping);
  std::vector<Diagnostic> dead = report.Matching("egd", "egd-never-fires");
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_NE(dead[0].message.find("no tgd writes Dead"), std::string::npos);
  EXPECT_TRUE(report.Matching("egd", "latent-key-violation").empty());
}

TEST(AnalyzerTest, GuaranteedNullUnificationIsANote) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); }
    target schema { T(a, b); }
    m: R(x) -> exists N, M . T(x, N) & T(x, M);
    e: T(a, b) & T(a, c) -> b = c;
  )");
  AnalysisReport report = AnalyzeMapping(*s.mapping);
  std::vector<Diagnostic> notes = report.Matching("egd", "egd-always-fires");
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].severity, Severity::kNote);
  EXPECT_TRUE(report.Matching("egd", "latent-key-violation").empty());
}

// ---------------------------------------------------------------------------
// Bundled workloads: golden structure + determinism.
// ---------------------------------------------------------------------------

TEST(AnalyzerTest, CreditCardScenarioGolden) {
  Scenario s = testing::CreditCardScenario();
  AnalysisReport report = AnalyzeMapping(*s.mapping);

  // The full paper mapping: m3's cartesian product, m1's duplicate 'm',
  // eleven projections, five dead source attributes, and the m4/m5
  // existential cycle. No null-only position (accNo is fed by m1 and m3),
  // no redundant tgd, and m6 interacts with no tgd on generic data.
  EXPECT_EQ(report.Matching("shape", "disconnected-lhs").size(), 1u);
  EXPECT_EQ(report.Matching("shape", "repeated-variable").size(), 1u);
  EXPECT_EQ(report.Matching("shape", "dropped-variable").size(), 11u);
  EXPECT_EQ(report.Matching("coverage", "dead-source-position").size(), 5u);
  EXPECT_EQ(report.Matching("coverage", "null-only-position").size(), 0u);
  EXPECT_EQ(report.Matching("termination").size(), 1u);
  EXPECT_EQ(report.Matching("subsumption").size(), 0u);
  EXPECT_EQ(report.Matching("egd").size(), 0u);
  EXPECT_FALSE(HasSeverity(report, Severity::kError));

  // m6 is statically live, so the egd pass chased every tgd.
  EXPECT_EQ(report.chases_run, s.mapping->NumTgds() * 2);

  // Byte-identical on re-analysis.
  AnalysisReport again = AnalyzeMapping(*s.mapping);
  EXPECT_EQ(DiagnosticsToJson(report.diagnostics),
            DiagnosticsToJson(again.diagnostics));
}

TEST(AnalyzerTest, RealScenariosAnalyzeCleanlyAndDeterministically) {
  RealScenarioOptions options;
  options.units = 2;
  Scenario dblp = BuildDblpScenario(options);
  Scenario mondial = BuildMondialScenario(options);
  for (const Scenario* scenario : {&dblp, &mondial}) {
    AnalysisReport report = AnalyzeMapping(*scenario->mapping);
    // Synthetic-but-faithful mappings: no latent key violations.
    EXPECT_FALSE(HasSeverity(report, Severity::kError))
        << RenderDiagnostics(report.diagnostics);
    AnalysisReport again = AnalyzeMapping(*scenario->mapping);
    EXPECT_EQ(DiagnosticsToJson(report.diagnostics),
              DiagnosticsToJson(again.diagnostics));
  }
}

TEST(AnalyzerTest, RandomScenarioFuzzNeverThrowsAndIsDeterministic) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    RandomScenarioOptions options;
    options.seed = seed;
    options.st_tgds = 3 + static_cast<int>(seed % 3);
    options.target_tgds = static_cast<int>(seed % 4);
    options.egds = static_cast<int>(seed % 3);
    Scenario scenario = BuildRandomScenario(options);

    AnalysisOptions analysis;
    analysis.chase_max_steps = 2'000;
    AnalysisReport first = AnalyzeMapping(*scenario.mapping, analysis);
    AnalysisReport second = AnalyzeMapping(*scenario.mapping, analysis);
    EXPECT_EQ(DiagnosticsToJson(first.diagnostics),
              DiagnosticsToJson(second.diagnostics))
        << "seed " << seed;
    EXPECT_EQ(first.chases_run, second.chases_run) << "seed " << seed;
  }
}

}  // namespace
}  // namespace spider
