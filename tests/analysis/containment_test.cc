#include "analysis/containment.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "chase/chase.h"
#include "chase/homomorphism.h"
#include "mapping/parser.h"
#include "workload/random_scenario.h"

namespace spider {
namespace {

Scenario Parse(const std::string& text) { return ParseScenario(text); }

TEST(ContainmentTest, IdenticalMappingsAreEquivalent) {
  Scenario a = Parse(R"(
    source schema { S(a, b); }
    target schema { T(a, b); U(a); }
    p: S(x, y) -> T(x, y);
    q: T(x, y) -> U(x);
    e: T(a, b) & T(a, c) -> b = c;
  )");
  Scenario b = Parse(R"(
    source schema { S(a, b); }
    target schema { T(a, b); U(a); }
    p: S(x, y) -> T(x, y);
    q: T(x, y) -> U(x);
    e: T(a, b) & T(a, c) -> b = c;
  )");
  ContainmentReport report = CheckContainment(*a.mapping, *b.mapping);
  EXPECT_TRUE(report.comparable);
  EXPECT_EQ(report.verdict, ContainmentVerdict::kEquivalent);
  EXPECT_TRUE(report.m1_in_m2.holds);
  EXPECT_TRUE(report.m2_in_m1.holds);
  EXPECT_EQ(report.m1_in_m2.not_implied, 0u);
  EXPECT_EQ(report.m1_in_m2.inconclusive, 0u);
  EXPECT_GT(report.chases_run, 0u);
}

TEST(ContainmentTest, VariableRenamingIsEquivalent) {
  Scenario a = Parse(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    p: S(x, y) -> exists Z . T(x, Z);
  )");
  Scenario b = Parse(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    renamed: S(u, v) -> exists W . T(u, W);
  )");
  ContainmentReport report = CheckContainment(*a.mapping, *b.mapping);
  EXPECT_EQ(report.verdict, ContainmentVerdict::kEquivalent);
}

TEST(ContainmentTest, MissingTgdMakesStrictContainment) {
  Scenario small = Parse(R"(
    source schema { S(a, b); }
    target schema { T(a, b); U(a); }
    p: S(x, y) -> T(x, y);
  )");
  Scenario big = Parse(R"(
    source schema { S(a, b); }
    target schema { T(a, b); U(a); }
    p: S(x, y) -> T(x, y);
    q: S(x, y) -> U(x);
  )");
  ContainmentReport report = CheckContainment(*small.mapping, *big.mapping);
  EXPECT_EQ(report.verdict, ContainmentVerdict::kContained);
  EXPECT_TRUE(report.m1_in_m2.holds);
  EXPECT_FALSE(report.m2_in_m1.holds);
  EXPECT_EQ(report.m2_in_m1.not_implied, 1u);
  EXPECT_EQ(report.m2_in_m1.witness, "q: S(x, y) -> U(x)");
  // The counterexample is a source instance over the failing (checked)
  // mapping's source schema; chasing it under `big` derives a U-fact that
  // `small`'s chase never produces, so no homomorphism can exist.
  ASSERT_NE(report.m2_in_m1.counterexample, nullptr);
  EXPECT_FALSE(report.m2_in_m1.counterexample_facts.empty());
  const Instance& witness = *report.m2_in_m1.counterexample;
  ChaseResult big_chase = Chase(*big.mapping, witness);
  ChaseResult small_chase = Chase(*small.mapping, witness);
  ASSERT_EQ(big_chase.outcome, ChaseOutcome::kSuccess);
  ASSERT_EQ(small_chase.outcome, ChaseOutcome::kSuccess);
  EXPECT_FALSE(
      FindHomomorphism(*big_chase.target, *small_chase.target).has_value());

  // Flipping the arguments flips the verdict.
  ContainmentReport flipped = CheckContainment(*big.mapping, *small.mapping);
  EXPECT_EQ(flipped.verdict, ContainmentVerdict::kContains);
}

TEST(ContainmentTest, ExistentialWeakerThanConcrete) {
  // exists-Z version asks for less: it is implied by the concrete copy,
  // but not vice versa (the chase of the existential version only ever
  // produces a null in the second column).
  Scenario weak = Parse(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    p: S(x, y) -> exists Z . T(x, Z);
  )");
  Scenario strong = Parse(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    p: S(x, y) -> T(x, y);
  )");
  ContainmentReport report = CheckContainment(*weak.mapping, *strong.mapping);
  EXPECT_EQ(report.verdict, ContainmentVerdict::kContained);
}

TEST(ContainmentTest, TargetTgdCompositionIsImplied) {
  // a->c is the composition of a->b and b->c, so the two-step mapping
  // implies the shortcut mapping — but not the other way around (the
  // shortcut never populates B).
  Scenario shortcut = Parse(R"(
    source schema { S(a); }
    target schema { A(a); B(a); C(a); }
    m: S(x) -> A(x);
    ac: A(x) -> C(x);
  )");
  Scenario steps = Parse(R"(
    source schema { S(a); }
    target schema { A(a); B(a); C(a); }
    m: S(x) -> A(x);
    ab: A(x) -> B(x);
    bc: B(x) -> C(x);
  )");
  ContainmentReport report =
      CheckContainment(*shortcut.mapping, *steps.mapping);
  EXPECT_EQ(report.verdict, ContainmentVerdict::kContained);
  EXPECT_TRUE(report.m1_in_m2.holds);
  EXPECT_FALSE(report.m2_in_m1.holds);
  // The failing dependency is a target tgd: witness text names it, but no
  // source counterexample is synthesized.
  EXPECT_FALSE(report.m2_in_m1.witness.empty());
  EXPECT_EQ(report.m2_in_m1.counterexample, nullptr);
}

TEST(ContainmentTest, EgdSwappedSidesAreEquivalent) {
  Scenario a = Parse(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    p: S(x, y) -> T(x, y);
    key: T(a, b) & T(a, c) -> b = c;
  )");
  Scenario b = Parse(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    p: S(x, y) -> T(x, y);
    key: T(a, b) & T(a, c) -> c = b;
  )");
  ContainmentReport report = CheckContainment(*a.mapping, *b.mapping);
  EXPECT_EQ(report.verdict, ContainmentVerdict::kEquivalent);
}

TEST(ContainmentTest, EgdNotImpliedByEgdFreeMapping) {
  Scenario with_key = Parse(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    p: S(x, y) -> T(x, y);
    key: T(a, b) & T(a, c) -> b = c;
  )");
  Scenario no_key = Parse(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    p: S(x, y) -> T(x, y);
  )");
  ContainmentReport report =
      CheckContainment(*with_key.mapping, *no_key.mapping);
  // no_key implies with_key's tgd but not its egd, and with_key implies
  // everything of no_key: strict containment the other way.
  EXPECT_EQ(report.verdict, ContainmentVerdict::kContains);
  EXPECT_FALSE(report.m1_in_m2.holds);
  ASSERT_EQ(report.m1_in_m2.dependencies.size(), 2u);
  EXPECT_TRUE(report.m1_in_m2.dependencies[1].is_egd);
  EXPECT_EQ(report.m1_in_m2.dependencies[1].verdict,
            ImplicationVerdict::kNotImplied);
}

TEST(ContainmentTest, TransitiveEgdImplication) {
  // A key on the first column forces the equality b = c in a's wider egd
  // after unification, so the singleton-key mapping implies it.
  Scenario wide = Parse(R"(
    source schema { S(a, b, c); }
    target schema { T(a, b, c); }
    p: S(x, y, z) -> T(x, y, z);
    e: T(a, b, x) & T(a, c, y) -> x = y;
  )");
  Scenario key = Parse(R"(
    source schema { S(a, b, c); }
    target schema { T(a, b, c); }
    p: S(x, y, z) -> T(x, y, z);
    k1: T(a, b, x) & T(a, c, y) -> b = c;
    k2: T(a, b, x) & T(a, c, y) -> x = y;
  )");
  ContainmentReport report = CheckContainment(*wide.mapping, *key.mapping);
  EXPECT_TRUE(report.m1_in_m2.holds);
  EXPECT_EQ(report.verdict, ContainmentVerdict::kContained);
}

TEST(ContainmentTest, SchemaMismatchIsIncomparable) {
  Scenario a = Parse(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    p: S(x, y) -> T(x, y);
  )");
  Scenario b = Parse(R"(
    source schema { S(a, b); }
    target schema { T(a, b, c); }
    p: S(x, y) -> exists Z . T(x, y, Z);
  )");
  ContainmentReport report = CheckContainment(*a.mapping, *b.mapping);
  EXPECT_FALSE(report.comparable);
  EXPECT_EQ(report.verdict, ContainmentVerdict::kIncomparable);
  EXPECT_FALSE(report.incomparable_reason.empty());
  EXPECT_NE(report.incomparable_reason.find("T"), std::string::npos);
}

TEST(ContainmentTest, SummaryIsDeterministic) {
  Scenario a = Parse(R"(
    source schema { S(a, b); }
    target schema { T(a, b); U(a); }
    p: S(x, y) -> T(x, y);
  )");
  Scenario b = Parse(R"(
    source schema { S(a, b); }
    target schema { T(a, b); U(a); }
    p: S(x, y) -> T(x, y);
    q: S(x, y) -> U(x);
  )");
  ContainmentReport r1 = CheckContainment(*a.mapping, *b.mapping);
  ContainmentReport r2 = CheckContainment(*a.mapping, *b.mapping);
  EXPECT_EQ(r1.Summary(), r2.Summary());
  EXPECT_NE(r1.Summary().find("contained"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Differential oracle: CheckContainment's verdicts against the semantic
// definition. M1 ⊑ M2 means chase_M1(I) maps homomorphically into
// chase_M2(I) for EVERY source instance I, so:
//  * a `holds` verdict must be confirmed by the homomorphism on the
//    concrete random instance the scenario ships with, and
//  * a counterexample must refute the homomorphism when chased itself.
// A tgd-subset mapping is always contained in its superset, which pins the
// expected verdict of two of the three pairs per seed exactly.
// ---------------------------------------------------------------------------

std::unique_ptr<SchemaMapping> TgdSubset(const SchemaMapping& mapping,
                                         int parity) {
  auto sub = std::make_unique<SchemaMapping>(mapping.source(),
                                             mapping.target());
  for (TgdId id = 0; id < static_cast<TgdId>(mapping.NumTgds()); ++id) {
    if (id % 2 == parity) sub->AddTgd(mapping.tgd(id));
  }
  for (EgdId id = 0; id < static_cast<EgdId>(mapping.NumEgds()); ++id) {
    sub->AddEgd(mapping.egd(id));
  }
  return sub;
}

std::unique_ptr<Instance> ChaseOf(const SchemaMapping& mapping,
                                  const Instance& source) {
  ChaseOptions options;
  options.max_steps = 1'000'000;
  ChaseResult result = Chase(mapping, source, options);
  EXPECT_EQ(result.outcome, ChaseOutcome::kSuccess);
  return std::move(result.target);
}

/// Checks one direction of a report against the chase/homomorphism oracle
/// on the concrete instance. Returns the number of disagreements.
int OracleCheckDirection(const ContainmentDirection& direction,
                         const SchemaMapping& checked,
                         const SchemaMapping& other,
                         const Instance& source) {
  int disagreements = 0;
  // The step budget is generous and the generated target tgds are
  // stratified, so nothing should come back inconclusive.
  if (direction.inconclusive != 0) ++disagreements;
  if (direction.holds) {
    // checked ⊑ other: the checked chase must map into the other chase.
    std::unique_ptr<Instance> j_checked = ChaseOf(checked, source);
    std::unique_ptr<Instance> j_other = ChaseOf(other, source);
    if (!FindHomomorphism(*j_checked, *j_other).has_value()) ++disagreements;
  } else if (direction.counterexample != nullptr) {
    // Chasing the counterexample under `checked` derives facts `other`
    // cannot reach: the homomorphism must fail on it.
    std::unique_ptr<Instance> j_checked =
        ChaseOf(checked, *direction.counterexample);
    std::unique_ptr<Instance> j_other =
        ChaseOf(other, *direction.counterexample);
    if (FindHomomorphism(*j_checked, *j_other).has_value()) ++disagreements;
  }
  return disagreements;
}

TEST(ContainmentOracleTest, RandomPairsAgreeWithChaseOracle) {
  constexpr int kSeeds = 70;
  int pairs_checked = 0;
  int disagreements = 0;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    RandomScenarioOptions options;
    options.seed = static_cast<uint64_t>(seed);
    options.egds = 0;  // Egds can fail the chase on random data.
    options.rows_per_relation = 4;
    options.fanout = 3;
    Scenario scenario = BuildRandomScenario(options);
    const SchemaMapping& full = *scenario.mapping;
    std::unique_ptr<SchemaMapping> sub = TgdSubset(full, 0);

    // Pair 1: subset vs full. Syntactic subset ⟹ contained, exactly.
    {
      ContainmentReport report = CheckContainment(*sub, full);
      ++pairs_checked;
      if (!report.m1_in_m2.holds) ++disagreements;
      disagreements +=
          OracleCheckDirection(report.m1_in_m2, *sub, full, *scenario.source);
      disagreements +=
          OracleCheckDirection(report.m2_in_m1, full, *sub, *scenario.source);
    }
    // Pair 2: full vs subset — the mirror image.
    {
      ContainmentReport report = CheckContainment(full, *sub);
      ++pairs_checked;
      if (!report.m2_in_m1.holds) ++disagreements;
      disagreements +=
          OracleCheckDirection(report.m1_in_m2, full, *sub, *scenario.source);
      disagreements +=
          OracleCheckDirection(report.m2_in_m1, *sub, full, *scenario.source);
    }
    // Pair 3: full vs itself must be equivalent.
    {
      ContainmentReport report = CheckContainment(full, full);
      ++pairs_checked;
      if (report.verdict != ContainmentVerdict::kEquivalent) ++disagreements;
      disagreements +=
          OracleCheckDirection(report.m1_in_m2, full, full, *scenario.source);
    }
  }
  EXPECT_GE(pairs_checked, 200);
  EXPECT_EQ(disagreements, 0);
}

}  // namespace
}  // namespace spider
