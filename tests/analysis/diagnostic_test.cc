#include "analysis/diagnostic.h"

#include <gtest/gtest.h>

namespace spider {
namespace {

Diagnostic Sample() {
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.pass = "shape";
  d.code = "dropped-variable";
  d.tgd = 2;
  d.span = SourceSpan{6, 5, 6, 30};
  d.message = "tgd 'm1': LHS variable 'loc' never reaches the RHS";
  d.hint = "map 'loc' to a target attribute";
  return d;
}

TEST(DiagnosticTest, RendersCompilerStyle) {
  EXPECT_EQ(RenderDiagnostic(Sample()),
            "6:5: warning: [shape/dropped-variable] tgd 'm1': LHS variable "
            "'loc' never reaches the RHS\n"
            "    hint: map 'loc' to a target attribute\n");
}

TEST(DiagnosticTest, SpanlessRendersDash) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.pass = "egd";
  d.code = "latent-key-violation";
  d.message = "boom";
  EXPECT_EQ(RenderDiagnostic(d),
            "-: error: [egd/latent-key-violation] boom\n");
}

TEST(DiagnosticTest, EmptyListSaysNoFindings) {
  EXPECT_EQ(RenderDiagnostics({}), "no findings\n");
}

TEST(DiagnosticTest, JsonHasFixedKeyOrderAndOmitsAbsentFields) {
  EXPECT_EQ(DiagnosticsToJson({Sample()}),
            "[\n"
            "  {\"severity\": \"warning\", \"pass\": \"shape\", "
            "\"code\": \"dropped-variable\", \"tgd\": 2, "
            "\"span\": {\"line\": 6, \"col\": 5, \"end_line\": 6, "
            "\"end_col\": 30}, "
            "\"message\": \"tgd 'm1': LHS variable 'loc' never reaches the "
            "RHS\", \"hint\": \"map 'loc' to a target attribute\"}\n"
            "]\n");
  EXPECT_EQ(DiagnosticsToJson({}), "[]\n");

  Diagnostic bare;
  bare.severity = Severity::kNote;
  bare.pass = "egd";
  bare.code = "x";
  bare.message = "m";
  EXPECT_EQ(DiagnosticsToJson({bare}),
            "[\n"
            "  {\"severity\": \"note\", \"pass\": \"egd\", \"code\": \"x\", "
            "\"message\": \"m\"}\n"
            "]\n");
}

TEST(DiagnosticTest, JsonEscapesSpecials) {
  Diagnostic d;
  d.pass = "p";
  d.code = "c";
  d.message = "say \"hi\"\\\nnew\tline";
  std::string json = DiagnosticsToJson({d});
  EXPECT_NE(json.find("say \\\"hi\\\"\\\\\\nnew\\tline"), std::string::npos);
}

TEST(DiagnosticTest, SeverityNames) {
  EXPECT_STREQ(SeverityName(Severity::kNote), "note");
  EXPECT_STREQ(SeverityName(Severity::kWarning), "warning");
  EXPECT_STREQ(SeverityName(Severity::kError), "error");
}

}  // namespace
}  // namespace spider
