#include "analysis/diff_lint.h"

#include <gtest/gtest.h>

#include <string>

#include "mapping/parser.h"
#include "workload/random_scenario.h"

namespace spider {
namespace {

TEST(DiffLintTest, IdenticalVersionsAreClean) {
  Scenario old_version = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    p: S(x, y) -> T(x, y);
  )");
  Scenario new_version = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    p: S(x, y) -> T(x, y);
  )");
  DiffLintReport report =
      DiffLint(*old_version.mapping, *new_version.mapping);
  EXPECT_TRUE(report.Clean());
  EXPECT_TRUE(report.added_dependencies.empty());
  EXPECT_TRUE(report.removed_dependencies.empty());
  EXPECT_TRUE(report.introduced.empty());
  EXPECT_TRUE(report.resolved.empty());
  EXPECT_TRUE(report.containment_checked);
  EXPECT_EQ(report.containment, ContainmentVerdict::kEquivalent);
}

TEST(DiffLintTest, AddedTgdIntroducesItsFindingsOnly) {
  // The old version already drops `y` in p — that finding must NOT resurface
  // in the diff. The new q drops `y` too AND leaves U unpopulated by route:
  // only q's findings are introduced.
  Scenario old_version = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { T(a, b); U(a); }
    p: S(x, y) -> T(x, x);
  )");
  Scenario new_version = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { T(a, b); U(a); }
    p: S(x, y) -> T(x, x);
    q: S(x, y) -> U(x);
  )");
  DiffLintReport report =
      DiffLint(*old_version.mapping, *new_version.mapping);
  EXPECT_FALSE(report.Clean());
  ASSERT_EQ(report.added_dependencies.size(), 1u);
  EXPECT_NE(report.added_dependencies[0].find("q:"), std::string::npos);
  EXPECT_TRUE(report.removed_dependencies.empty());
  // p's dropped-variable warning is unchanged between versions: suppressed.
  for (const Diagnostic& diagnostic : report.introduced) {
    EXPECT_EQ(diagnostic.message.find("'p'"), std::string::npos)
        << diagnostic.message;
  }
  // The edit DOES genuinely resolve one old finding — U used to be an
  // unpopulated target relation — but nothing about p is resolved.
  for (const Diagnostic& diagnostic : report.resolved) {
    EXPECT_EQ(diagnostic.message.find("'p'"), std::string::npos)
        << diagnostic.message;
  }
  // Growing the tgd set grows what the mapping derives.
  EXPECT_TRUE(report.containment_checked);
  EXPECT_EQ(report.containment, ContainmentVerdict::kContained);
}

TEST(DiffLintTest, FixingADroppedVariableShowsAsResolved) {
  Scenario old_version = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    p: S(x, y) -> T(x, x);
  )");
  Scenario new_version = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    p: S(x, y) -> T(x, y);
  )");
  DiffLintReport report =
      DiffLint(*old_version.mapping, *new_version.mapping);
  EXPECT_FALSE(report.Clean());
  EXPECT_EQ(report.added_dependencies.size(), 1u);
  EXPECT_EQ(report.removed_dependencies.size(), 1u);
  EXPECT_TRUE(report.introduced.empty());
  EXPECT_FALSE(report.resolved.empty());
  bool saw_dropped = false;
  for (const Diagnostic& diagnostic : report.resolved) {
    if (diagnostic.code == "dropped-variable") saw_dropped = true;
  }
  EXPECT_TRUE(saw_dropped);
}

TEST(DiffLintTest, ContainmentCanBeDisabled) {
  Scenario a = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a); }
    p: S(x) -> T(x);
  )");
  DiffLintOptions options;
  options.check_containment = false;
  DiffLintReport report = DiffLint(*a.mapping, *a.mapping, options);
  EXPECT_FALSE(report.containment_checked);
  EXPECT_TRUE(report.Clean());
}

TEST(DiffLintTest, SchemaMismatchSkipsContainmentButDiffsDependencies) {
  Scenario a = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a); }
    p: S(x) -> T(x);
  )");
  Scenario b = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a, b); }
    p: S(x) -> exists Z . T(x, Z);
  )");
  DiffLintReport report = DiffLint(*a.mapping, *b.mapping);
  EXPECT_EQ(report.containment, ContainmentVerdict::kIncomparable);
  EXPECT_EQ(report.added_dependencies.size(), 1u);
  EXPECT_EQ(report.removed_dependencies.size(), 1u);
}

TEST(DiffLintFuzzTest, SelfDiffIsCleanAndByteIdenticalOnRandomMappings) {
  for (int seed = 1; seed <= 25; ++seed) {
    RandomScenarioOptions options;
    options.seed = static_cast<uint64_t>(seed);
    options.egds = 0;
    options.rows_per_relation = 2;
    Scenario scenario = BuildRandomScenario(options);
    DiffLintReport first = DiffLint(*scenario.mapping, *scenario.mapping);
    DiffLintReport second = DiffLint(*scenario.mapping, *scenario.mapping);
    EXPECT_TRUE(first.Clean()) << "seed " << seed;
    EXPECT_EQ(first.containment, ContainmentVerdict::kEquivalent)
        << "seed " << seed;
    EXPECT_EQ(first.Summary(), second.Summary()) << "seed " << seed;
  }
}

TEST(DiffLintFuzzTest, CrossSeedDiffIsDeterministic) {
  for (int seed = 1; seed <= 10; ++seed) {
    RandomScenarioOptions options;
    options.seed = static_cast<uint64_t>(seed);
    options.egds = 0;
    options.rows_per_relation = 2;
    Scenario old_version = BuildRandomScenario(options);
    options.st_tgds += 1;  // A different mapping over (likely) same shapes.
    Scenario new_version = BuildRandomScenario(options);
    if (old_version.mapping->source().size() !=
        new_version.mapping->source().size()) {
      continue;  // Schemas drifted; determinism is what we test, not shape.
    }
    DiffLintReport first =
        DiffLint(*old_version.mapping, *new_version.mapping);
    DiffLintReport second =
        DiffLint(*old_version.mapping, *new_version.mapping);
    EXPECT_EQ(first.Summary(), second.Summary()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace spider
