#include "analysis/min_cover.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "analysis/containment.h"
#include "debugger/debugger.h"
#include "mapping/parser.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

/// Every certificate must stand on its own: the route validates against the
/// certificate scenario, replays step by step in the debugger, and produces
/// every fact of the removed tgd's image.
void CheckCertificate(const RemovalCertificate& certificate) {
  std::string why;
  EXPECT_TRUE(certificate.route.Validate(
      *certificate.scenario.mapping, *certificate.scenario.source,
      *certificate.scenario.target, certificate.facts, &why))
      << certificate.name << ": " << why;
  EXPECT_FALSE(certificate.facts.empty()) << certificate.name;

  MappingDebugger debugger(&certificate.scenario);
  RoutePlayer player = debugger.Play(certificate.route);
  while (player.Step()) {
  }
  EXPECT_TRUE(player.done());
  for (const FactRef& fact : certificate.facts) {
    bool produced = false;
    for (const FactRef& got : player.produced()) {
      if (got == fact) {
        produced = true;
        break;
      }
    }
    EXPECT_TRUE(produced) << certificate.name
                          << ": certificate fact not derived by the route";
  }
}

TEST(MinCoverTest, WeakerStTgdRemoved) {
  Scenario s = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    strong: S(x, y) -> T(x, y);
    weak: S(x, y) -> exists Z . T(x, Z);
  )");
  MinCoverResult result = ComputeMinCover(*s.mapping);
  ASSERT_EQ(result.kept.size(), 2u);
  EXPECT_TRUE(result.kept[s.mapping->FindTgd("strong")]);
  EXPECT_FALSE(result.kept[s.mapping->FindTgd("weak")]);
  EXPECT_EQ(result.NumRemoved(), 1u);
  EXPECT_EQ(result.inconclusive, 0u);
  EXPECT_EQ(result.tested, 2u);

  ASSERT_EQ(result.removed.size(), 1u);
  const RemovalCertificate& certificate = result.removed[0];
  EXPECT_EQ(certificate.name, "weak");
  EXPECT_FALSE(certificate.text.empty());
  // The certificate mapping holds only kept dependencies, so the route
  // cannot cheat by firing the removed tgd itself.
  EXPECT_EQ(certificate.scenario.mapping->FindTgd("weak"), -1);
  EXPECT_NE(certificate.route.TgdNames(*certificate.scenario.mapping)
                .find("strong"),
            std::string::npos);
  CheckCertificate(certificate);

  // Dropping the redundant tgd preserves the mapping's meaning exactly.
  std::unique_ptr<SchemaMapping> reduced = result.BuildReduced(*s.mapping);
  EXPECT_EQ(reduced->NumTgds(), 1u);
  EXPECT_EQ(CheckContainment(*s.mapping, *reduced).verdict,
            ContainmentVerdict::kEquivalent);
}

TEST(MinCoverTest, DuplicateTgdRemovedOnce) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a); }
    dup1: S(x) -> T(x);
    dup2: S(x) -> T(x);
  )");
  MinCoverResult result = ComputeMinCover(*s.mapping);
  // The pass walks TgdId order: dup1 is implied by the still-kept dup2 and
  // goes; dup2 is then necessary against the remaining (empty) rest.
  EXPECT_FALSE(result.kept[0]);
  EXPECT_TRUE(result.kept[1]);
  EXPECT_EQ(result.NumRemoved(), 1u);
  CheckCertificate(result.removed[0]);
  EXPECT_EQ(CheckContainment(*s.mapping, *result.BuildReduced(*s.mapping))
                .verdict,
            ContainmentVerdict::kEquivalent);
}

TEST(MinCoverTest, TransitiveShortcutRemovedWithCopyMappingCertificate) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { A(a); B(a); C(a); }
    m: S(x) -> A(x);
    ab: A(x) -> B(x);
    bc: B(x) -> C(x);
    ac: A(x) -> C(x);
  )");
  MinCoverResult result = ComputeMinCover(*s.mapping);
  EXPECT_TRUE(result.kept[s.mapping->FindTgd("m")]);
  EXPECT_TRUE(result.kept[s.mapping->FindTgd("ab")]);
  EXPECT_TRUE(result.kept[s.mapping->FindTgd("bc")]);
  EXPECT_FALSE(result.kept[s.mapping->FindTgd("ac")]);
  ASSERT_EQ(result.removed.size(), 1u);

  // A removed TARGET tgd certifies through the __copy_<rel>-bridged copy
  // mapping; the route composes ab and bc from the frozen A-fact.
  const RemovalCertificate& certificate = result.removed[0];
  EXPECT_EQ(certificate.name, "ac");
  EXPECT_NE(certificate.scenario.mapping->FindTgd("__copy_A"), -1);
  std::string names =
      certificate.route.TgdNames(*certificate.scenario.mapping);
  EXPECT_NE(names.find("ab"), std::string::npos);
  EXPECT_NE(names.find("bc"), std::string::npos);
  CheckCertificate(certificate);

  EXPECT_EQ(CheckContainment(*s.mapping, *result.BuildReduced(*s.mapping))
                .verdict,
            ContainmentVerdict::kEquivalent);
}

TEST(MinCoverTest, CreditCardMappingIsAlreadyMinimal) {
  Scenario s = testing::CreditCardScenario();
  MinCoverResult result = ComputeMinCover(*s.mapping);
  EXPECT_EQ(result.tested, 5u);
  EXPECT_EQ(result.NumRemoved(), 0u);
  EXPECT_EQ(result.inconclusive, 0u);
  for (bool keep : result.kept) EXPECT_TRUE(keep);
  // The reduced mapping is the mapping itself, egds included.
  std::unique_ptr<SchemaMapping> reduced = result.BuildReduced(*s.mapping);
  EXPECT_EQ(reduced->NumTgds(), s.mapping->NumTgds());
  EXPECT_EQ(reduced->NumEgds(), s.mapping->NumEgds());
  EXPECT_EQ(reduced->ToString(), s.mapping->ToString());
}

TEST(MinCoverTest, SummaryIsDeterministic) {
  Scenario s = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    strong: S(x, y) -> T(x, y);
    weak: S(x, y) -> exists Z . T(x, Z);
  )");
  MinCoverResult first = ComputeMinCover(*s.mapping);
  MinCoverResult second = ComputeMinCover(*s.mapping);
  EXPECT_EQ(first.Summary(*s.mapping), second.Summary(*s.mapping));
  std::string summary = first.Summary(*s.mapping);
  EXPECT_NE(summary.find("remove weak"), std::string::npos);
  EXPECT_NE(summary.find("keep   strong"), std::string::npos);
  EXPECT_NE(summary.find("certificate for weak"), std::string::npos);
}

}  // namespace
}  // namespace spider
