#include "analysis/position_flow.h"

#include <gtest/gtest.h>

#include "mapping/parser.h"

namespace spider {
namespace {

int SourcePos(const PositionFlow& flow, const Schema& schema,
              const std::string& rel, int col) {
  return flow.source.Id(schema.Require(rel), col);
}

int TargetPos(const PositionFlow& flow, const Schema& schema,
              const std::string& rel, int col) {
  return flow.target.Id(schema.Require(rel), col);
}

TEST(PositionFlowTest, CopiedAndDroppedSourcePositions) {
  Scenario s = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { T(a); }
    m: S(x, y) -> T(x);
  )");
  PositionFlow flow = ComputePositionFlow(*s.mapping);
  int sa = SourcePos(flow, s.mapping->source(), "S", 0);
  int sb = SourcePos(flow, s.mapping->source(), "S", 1);
  EXPECT_TRUE(flow.source_read[sa]);
  EXPECT_TRUE(flow.source_reaches_target[sa]);
  EXPECT_TRUE(flow.source_read[sb]);
  EXPECT_FALSE(flow.source_reaches_target[sb]);
  EXPECT_FALSE(flow.source_joins[sb]);

  int ta = TargetPos(flow, s.mapping->target(), "T", 0);
  EXPECT_TRUE(flow.target_written[ta]);
  EXPECT_TRUE(flow.target_directly_grounded[ta]);
  EXPECT_TRUE(flow.target_can_hold_constant[ta]);
}

TEST(PositionFlowTest, JoinOnlyPositions) {
  Scenario s = ParseScenario(R"(
    source schema { R(a, k); Q(k); }
    target schema { T(a); }
    m: R(x, y) & Q(y) -> T(x);
  )");
  PositionFlow flow = ComputePositionFlow(*s.mapping);
  int rk = SourcePos(flow, s.mapping->source(), "R", 1);
  int qk = SourcePos(flow, s.mapping->source(), "Q", 0);
  EXPECT_FALSE(flow.source_reaches_target[rk]);
  EXPECT_TRUE(flow.source_joins[rk]);
  EXPECT_FALSE(flow.source_reaches_target[qk]);
  EXPECT_TRUE(flow.source_joins[qk]);
}

TEST(PositionFlowTest, TransitiveGroundingThroughTargetTgd) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T1(a); T2(a); }
    m: S(x) -> T1(x);
    t: T1(x) -> T2(x);
  )");
  PositionFlow flow = ComputePositionFlow(*s.mapping);
  int t2a = TargetPos(flow, s.mapping->target(), "T2", 0);
  EXPECT_TRUE(flow.target_written[t2a]);
  EXPECT_TRUE(flow.target_can_hold_constant[t2a]);
}

TEST(PositionFlowTest, TransitiveNullOnlyThroughTargetTgd) {
  // t copies T1.a into T2.a with a universal variable — the seed linter's
  // direct notion calls T2.a grounded — but everything arriving at T1.a is
  // an invented null, so transitively T2.a is null-only.
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T1(a); T2(a); }
    m: S(x) -> exists N . T1(N);
    t: T1(x) -> T2(x);
  )");
  PositionFlow flow = ComputePositionFlow(*s.mapping);
  int t1a = TargetPos(flow, s.mapping->target(), "T1", 0);
  int t2a = TargetPos(flow, s.mapping->target(), "T2", 0);
  EXPECT_FALSE(flow.target_can_hold_constant[t1a]);
  EXPECT_FALSE(flow.target_directly_grounded[t1a]);
  EXPECT_FALSE(flow.target_can_hold_constant[t2a]);
  EXPECT_TRUE(flow.target_directly_grounded[t2a]);
}

TEST(PositionFlowTest, JoinInTargetTgdNeedsAllReadPositionsConstant) {
  // q joins a constant-capable position with a null-only one; the joined
  // value must occur at both, so it can never be a constant.
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { G(a); N(a); Out(a); }
    m1: S(x) -> G(x);
    m2: S(x) -> exists Z . N(Z);
    t: G(q) & N(q) -> Out(q);
  )");
  PositionFlow flow = ComputePositionFlow(*s.mapping);
  int out = TargetPos(flow, s.mapping->target(), "Out", 0);
  EXPECT_TRUE(flow.target_written[out]);
  EXPECT_FALSE(flow.target_can_hold_constant[out]);
}

TEST(PositionFlowTest, ConstantInRhsGroundsPosition) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a, b); }
    m: S(x) -> exists Z . T(Z, 7);
  )");
  PositionFlow flow = ComputePositionFlow(*s.mapping);
  EXPECT_FALSE(flow.target_can_hold_constant[TargetPos(
      flow, s.mapping->target(), "T", 0)]);
  EXPECT_TRUE(flow.target_can_hold_constant[TargetPos(
      flow, s.mapping->target(), "T", 1)]);
}

}  // namespace
}  // namespace spider
