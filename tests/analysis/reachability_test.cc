#include "analysis/reachability.h"

#include <gtest/gtest.h>

#include "mapping/parser.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

TEST(ReachabilityTest, UnwrittenRelationIsUnreachable) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a); U(a); }
    m: S(x) -> T(x);
  )");
  ReachabilityReport report = ComputeReachability(*s.mapping);
  EXPECT_TRUE(report.Reachable(s.mapping->target().Require("T")));
  EXPECT_FALSE(report.Reachable(s.mapping->target().Require("U")));
  EXPECT_EQ(report.At(s.mapping->target().Require("T"), 0),
            Reachability::kVarReachable);
}

TEST(ReachabilityTest, DeadPremisePropagatesThroughTargetTgds) {
  // Nothing writes C, so the C->D tgd can never fire and D is unreachable —
  // even though D has a writer on paper. E joins A with the dead C, so F is
  // dead too.
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { A(a); C(a); D(a); F(a); }
    m: S(x) -> A(x);
    cd: C(x) -> D(x);
    cf: A(x) & C(x) -> F(x);
  )");
  ReachabilityReport report = ComputeReachability(*s.mapping);
  const Schema& target = s.mapping->target();
  EXPECT_TRUE(report.Reachable(target.Require("A")));
  EXPECT_FALSE(report.Reachable(target.Require("C")));
  EXPECT_FALSE(report.Reachable(target.Require("D")));
  EXPECT_FALSE(report.Reachable(target.Require("F")));
  EXPECT_TRUE(report.tgd_fireable[s.mapping->FindTgd("m")]);
  EXPECT_FALSE(report.tgd_fireable[s.mapping->FindTgd("cd")]);
  EXPECT_FALSE(report.tgd_fireable[s.mapping->FindTgd("cf")]);
}

TEST(ReachabilityTest, ChainOfTargetTgdsReaches) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { A(a); B(a); C(a); }
    m: S(x) -> A(x);
    ab: A(x) -> B(x);
    bc: B(x) -> C(x);
  )");
  ReachabilityReport report = ComputeReachability(*s.mapping);
  const Schema& target = s.mapping->target();
  EXPECT_TRUE(report.Reachable(target.Require("A")));
  EXPECT_TRUE(report.Reachable(target.Require("B")));
  EXPECT_TRUE(report.Reachable(target.Require("C")));
  // Source data flows all the way down the chain.
  EXPECT_EQ(report.At(target.Require("C"), 0), Reachability::kVarReachable);
}

TEST(ReachabilityTest, ExistentialAndConstantPositionsAreConstantOnly) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a, b); U(a); }
    m: S(x) -> exists Z . T(x, Z);
    k: S(x) -> U("tag");
  )");
  ReachabilityReport report = ComputeReachability(*s.mapping);
  const Schema& target = s.mapping->target();
  EXPECT_EQ(report.At(target.Require("T"), 0), Reachability::kVarReachable);
  // Z is invented by the chase: never a source value.
  EXPECT_EQ(report.At(target.Require("T"), 1), Reachability::kConstantOnly);
  // "tag" is written verbatim.
  EXPECT_EQ(report.At(target.Require("U"), 0), Reachability::kConstantOnly);
  EXPECT_TRUE(report.Reachable(target.Require("U")));
}

TEST(ReachabilityTest, ConstantOnlyDoesNotUpgradeThroughJoins) {
  // V copies T's existential column: still constant-only downstream.
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a, b); V(a); }
    m: S(x) -> exists Z . T(x, Z);
    tv: T(x, y) -> V(y);
  )");
  ReachabilityReport report = ComputeReachability(*s.mapping);
  const Schema& target = s.mapping->target();
  EXPECT_TRUE(report.Reachable(target.Require("V")));
  EXPECT_EQ(report.At(target.Require("V"), 0), Reachability::kConstantOnly);
}

TEST(ReachabilityTest, CreditCardTargetIsFullyReachable) {
  Scenario s = testing::CreditCardScenario();
  ReachabilityReport report = ComputeReachability(*s.mapping);
  const Schema& target = s.mapping->target();
  for (RelationId rel = 0; rel < static_cast<RelationId>(target.size());
       ++rel) {
    EXPECT_TRUE(report.Reachable(rel)) << target.relation(rel).name();
  }
  for (bool fireable : report.tgd_fireable) EXPECT_TRUE(fireable);
}

TEST(ReachabilityTest, SummaryRendersLevelsDeterministically) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a, b); U(a); }
    m: S(x) -> exists Z . T(x, Z);
  )");
  ReachabilityReport report = ComputeReachability(*s.mapping);
  std::string summary = report.Summary(s.mapping->target());
  EXPECT_EQ(summary, ComputeReachability(*s.mapping)
                         .Summary(s.mapping->target()));
  EXPECT_NE(summary.find("U: unreachable"), std::string::npos);
  EXPECT_NE(summary.find("a=var-reachable"), std::string::npos);
  EXPECT_NE(summary.find("b=constant-only"), std::string::npos);
}

}  // namespace
}  // namespace spider
