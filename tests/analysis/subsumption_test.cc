#include "analysis/subsumption.h"

#include <gtest/gtest.h>

#include "mapping/parser.h"

namespace spider {
namespace {

TEST(SubsumptionTest, WeakerStTgdIsImplied) {
  // m2 asks for less than m1 delivers: chase m2's frozen LHS with {m1} and
  // T(frz:x, frz:y) already provides the required T(frz:x, Z).
  Scenario s = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    m1: S(x, y) -> T(x, y);
    m2: S(x, y) -> exists Z . T(x, Z);
  )");
  EXPECT_EQ(TestTgdSubsumption(*s.mapping, s.mapping->FindTgd("m2")),
            SubsumptionVerdict::kImplied);
  EXPECT_EQ(TestTgdSubsumption(*s.mapping, s.mapping->FindTgd("m1")),
            SubsumptionVerdict::kNotImplied);
}

TEST(SubsumptionTest, TargetTgdImpliedTransitively) {
  // ac is the composition of ab and bc: the frozen chase copies A(frz:x)
  // into the target, runs ab then bc, and C(frz:x) appears.
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { A(a); B(a); C(a); }
    m: S(x) -> A(x);
    ab: A(x) -> B(x);
    bc: B(x) -> C(x);
    ac: A(x) -> C(x);
  )");
  EXPECT_EQ(TestTgdSubsumption(*s.mapping, s.mapping->FindTgd("ac")),
            SubsumptionVerdict::kImplied);
  EXPECT_EQ(TestTgdSubsumption(*s.mapping, s.mapping->FindTgd("ab")),
            SubsumptionVerdict::kNotImplied);
  EXPECT_EQ(TestTgdSubsumption(*s.mapping, s.mapping->FindTgd("bc")),
            SubsumptionVerdict::kNotImplied);
}

TEST(SubsumptionTest, DuplicateTgdIsImpliedEitherWay) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a); }
    m1: S(x) -> T(x);
    m2: S(y) -> T(y);
  )");
  EXPECT_EQ(TestTgdSubsumption(*s.mapping, 0), SubsumptionVerdict::kImplied);
  EXPECT_EQ(TestTgdSubsumption(*s.mapping, 1), SubsumptionVerdict::kImplied);
}

TEST(SubsumptionTest, StepLimitIsInconclusive) {
  // grow never terminates on a frozen T fact; the budget makes the test for
  // m2 inconclusive rather than hanging.
  Scenario s = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    m1: S(x, y) -> T(x, y);
    grow: T(x, y) -> exists Z . T(y, Z);
    m2: S(x, y) -> exists Z . T(x, Z);
  )");
  EXPECT_EQ(TestTgdSubsumption(*s.mapping, s.mapping->FindTgd("m2"),
                               /*max_steps=*/100),
            SubsumptionVerdict::kInconclusive);
}

TEST(SubsumptionTest, EgdFailureIsInconclusive) {
  // Chasing m2's frozen LHS fires m1, and the key egd then equates the
  // frozen constant with 1 — two distinct constants, no solution for the
  // frozen instance, so the implication test cannot conclude.
  Scenario s = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    m1: S(x, y) -> T(x, y) & T(x, 1);
    m2: S(x, y) -> exists Z . T(x, Z);
    e: T(a, b) & T(a, c) -> b = c;
  )");
  EXPECT_EQ(TestTgdSubsumption(*s.mapping, s.mapping->FindTgd("m2")),
            SubsumptionVerdict::kInconclusive);
}

TEST(SubsumptionTest, FrozenChaseBuildsCanonicalInstance) {
  Scenario s = ParseScenario(R"(
    source schema { R(a, b); Q(b); }
    target schema { T(a); }
    m: R(x, y) & Q(y) -> T(x);
  )");
  FrozenChaseResult frozen = ChaseFrozenLhs(*s.mapping, 0);
  ASSERT_TRUE(frozen.ok);
  // One tuple per LHS atom, sharing the frozen constant for y.
  const Instance& source = *frozen.frozen_source;
  ASSERT_EQ(source.NumTuples(source.schema().Require("R")), 1u);
  ASSERT_EQ(source.NumTuples(source.schema().Require("Q")), 1u);
  const Tuple& r = source.tuples(source.schema().Require("R"))[0];
  const Tuple& q = source.tuples(source.schema().Require("Q"))[0];
  EXPECT_TRUE(r.at(0).is_constant());
  EXPECT_EQ(r.at(1), q.at(0));
  EXPECT_NE(r.at(0), r.at(1));
  // With sigma excluded nothing fires: the target stays empty.
  EXPECT_EQ(frozen.chase.target->TotalTuples(), 0u);
}

TEST(SubsumptionTest, TargetTgdChasesThroughCopyMapping) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { A(a); B(a); }
    m: S(x) -> A(x);
    t: A(x) -> B(x);
  )");
  FrozenChaseOptions options;
  options.include_sigma = true;
  FrozenChaseResult frozen =
      ChaseFrozenLhs(*s.mapping, s.mapping->FindTgd("t"), options);
  ASSERT_TRUE(frozen.ok);
  // The derived source schema mirrors the target, bridged by identity tgds.
  EXPECT_NE(frozen.derived->source().Find("A"), kInvalidRelation);
  EXPECT_NE(frozen.derived->FindTgd("__copy_A"), -1);
  // The frozen A fact was copied to the target and t fired on it there.
  const Instance& target = *frozen.chase.target;
  EXPECT_EQ(target.NumTuples(target.schema().Require("A")), 1u);
  EXPECT_EQ(target.NumTuples(target.schema().Require("B")), 1u);
}

}  // namespace
}  // namespace spider
