#include "base/tuple.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace spider {
namespace {

TEST(TupleTest, ConstructionAndAccess) {
  Tuple t({Value::Int(1), Value::Str("a")});
  EXPECT_EQ(t.arity(), 2u);
  EXPECT_EQ(t.at(0), Value::Int(1));
  EXPECT_EQ(t.at(1), Value::Str("a"));
}

TEST(TupleTest, Equality) {
  Tuple a({Value::Int(1), Value::Str("x")});
  Tuple b({Value::Int(1), Value::Str("x")});
  Tuple c({Value::Int(1), Value::Str("y")});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(TupleTest, ContainsNulls) {
  EXPECT_FALSE(Tuple({Value::Int(1), Value::Str("a")}).ContainsNulls());
  EXPECT_TRUE(Tuple({Value::Int(1), Value::Null(3)}).ContainsNulls());
}

TEST(TupleTest, ToString) {
  Tuple t({Value::Int(6689), Value::Str("15K"), Value::Null(1)});
  EXPECT_EQ(t.ToString(), "(6689, \"15K\", #N1)");
}

TEST(TupleTest, EmptyTupleIsValid) {
  Tuple t;
  EXPECT_EQ(t.arity(), 0u);
  EXPECT_EQ(t, Tuple(std::vector<Value>{}));
}

TEST(TupleTest, OrderingLexicographic) {
  EXPECT_LT(Tuple({Value::Int(1)}), Tuple({Value::Int(2)}));
  EXPECT_LT(Tuple({Value::Int(1)}), Tuple({Value::Int(1), Value::Int(0)}));
}

TEST(FactRefTest, EqualityAndHash) {
  FactRef a{Side::kTarget, 2, 5};
  FactRef b{Side::kTarget, 2, 5};
  FactRef c{Side::kSource, 2, 5};
  FactRef d{Side::kTarget, 2, 6};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  std::unordered_set<FactRef, FactRefHash> set = {a, b, c, d};
  EXPECT_EQ(set.size(), 3u);
}

TEST(FactRefTest, Validity) {
  EXPECT_FALSE(FactRef{}.valid());
  EXPECT_TRUE((FactRef{Side::kSource, 0, 0}).valid());
}

}  // namespace
}  // namespace spider
