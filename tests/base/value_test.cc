#include "base/value.h"

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

namespace spider {
namespace {

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_EQ(v.kind(), Value::Kind::kInt);
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(ValueTest, IntRoundTrip) {
  Value v = Value::Int(-42);
  EXPECT_EQ(v.kind(), Value::Kind::kInt);
  EXPECT_EQ(v.AsInt(), -42);
  EXPECT_TRUE(v.is_constant());
  EXPECT_FALSE(v.is_null());
}

TEST(ValueTest, DoubleRoundTrip) {
  Value v = Value::Real(2.5);
  EXPECT_EQ(v.kind(), Value::Kind::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 2.5);
}

TEST(ValueTest, StringRoundTrip) {
  Value v = Value::Str("Seattle");
  EXPECT_EQ(v.kind(), Value::Kind::kString);
  EXPECT_EQ(v.AsString(), "Seattle");
}

TEST(ValueTest, NullRoundTrip) {
  Value v = Value::Null(7);
  EXPECT_EQ(v.kind(), Value::Kind::kNull);
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_constant());
  EXPECT_EQ(v.AsNull().id, 7);
}

TEST(ValueTest, EqualityWithinKind) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
  EXPECT_NE(Value::Str("a"), Value::Str("b"));
  EXPECT_EQ(Value::Null(1), Value::Null(1));
  EXPECT_NE(Value::Null(1), Value::Null(2));
}

TEST(ValueTest, DistinctKindsNeverEqual) {
  EXPECT_NE(Value::Int(1), Value::Real(1.0));
  EXPECT_NE(Value::Int(1), Value::Str("1"));
  // A labeled null is not equal to any constant.
  EXPECT_NE(Value::Null(1), Value::Int(1));
  EXPECT_NE(Value::Null(1), Value::Str("N1"));
}

TEST(ValueTest, OrderingIsTotal) {
  std::set<Value> values = {Value::Int(3), Value::Int(1), Value::Str("b"),
                            Value::Str("a"), Value::Null(2), Value::Null(1),
                            Value::Real(0.5)};
  EXPECT_EQ(values.size(), 7u);
  // Same-kind ordering is payload ordering.
  EXPECT_LT(Value::Int(1), Value::Int(3));
  EXPECT_LT(Value::Str("a"), Value::Str("b"));
  EXPECT_LT(Value::Null(1), Value::Null(2));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  EXPECT_EQ(Value::Str("x").Hash(), Value::Str("x").Hash());
  EXPECT_EQ(Value::Null(3).Hash(), Value::Null(3).Hash());
}

TEST(ValueTest, HashDistinguishesKinds) {
  // Not guaranteed in general, but these particular values should not
  // collide with a reasonable hash.
  std::unordered_set<size_t> hashes = {
      Value::Int(1).Hash(), Value::Str("1").Hash(), Value::Null(1).Hash()};
  EXPECT_EQ(hashes.size(), 3u);
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Str("J. Long").ToString(), "\"J. Long\"");
  EXPECT_EQ(Value::Null(12).ToString(), "#N12");
}

TEST(ValueTest, UsableInUnorderedSet) {
  std::unordered_set<Value> set;
  set.insert(Value::Int(1));
  set.insert(Value::Int(1));
  set.insert(Value::Str("a"));
  set.insert(Value::Null(1));
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.count(Value::Int(1)));
  EXPECT_FALSE(set.count(Value::Int(2)));
}

}  // namespace
}  // namespace spider
