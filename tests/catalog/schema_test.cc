#include "catalog/schema.h"

#include <gtest/gtest.h>

#include "base/status.h"

namespace spider {
namespace {

TEST(SchemaTest, AddAndLookup) {
  Schema s("src");
  RelationId cards = s.AddRelation("Cards", {"cardNo", "limit", "ssn"});
  RelationId accounts = s.AddRelation("Accounts", {"accNo", "limit"});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.Find("Cards"), cards);
  EXPECT_EQ(s.Find("Accounts"), accounts);
  EXPECT_EQ(s.Find("Nope"), kInvalidRelation);
  EXPECT_EQ(s.relation(cards).name(), "Cards");
  EXPECT_EQ(s.relation(cards).arity(), 3u);
}

TEST(SchemaTest, RequireThrowsOnUnknown) {
  Schema s("src");
  s.AddRelation("R", {"a"});
  EXPECT_NO_THROW(s.Require("R"));
  EXPECT_THROW(s.Require("Q"), SpiderError);
}

TEST(SchemaTest, DuplicateRelationRejected) {
  Schema s("src");
  s.AddRelation("R", {"a"});
  EXPECT_THROW(s.AddRelation("R", {"b", "c"}), SpiderError);
}

TEST(SchemaTest, EmptyRelationNameRejected) {
  Schema s("src");
  EXPECT_THROW(s.AddRelation("", {"a"}), SpiderError);
}

TEST(SchemaTest, ZeroArityRejected) {
  Schema s("src");
  EXPECT_THROW(s.AddRelation("R", {}), SpiderError);
}

TEST(SchemaTest, AttributeIndex) {
  Schema s("src");
  RelationId r = s.AddRelation("R", {"a", "b", "c"});
  EXPECT_EQ(s.relation(r).AttributeIndex("a"), 0);
  EXPECT_EQ(s.relation(r).AttributeIndex("c"), 2);
  EXPECT_EQ(s.relation(r).AttributeIndex("z"), -1);
}

TEST(SchemaTest, TotalElementsCountsRelationsAndAttributes) {
  Schema s("src");
  s.AddRelation("R", {"a", "b"});
  s.AddRelation("Q", {"x", "y", "z"});
  // 2 relations + 5 attributes.
  EXPECT_EQ(s.TotalElements(), 7u);
}

TEST(SchemaTest, ToStringListsRelations) {
  Schema s("bank");
  s.AddRelation("Accounts", {"accNo", "limit"});
  std::string str = s.ToString();
  EXPECT_NE(str.find("schema bank"), std::string::npos);
  EXPECT_NE(str.find("Accounts(accNo, limit)"), std::string::npos);
}

TEST(SchemaTest, RelationIdsAreDense) {
  Schema s("src");
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(s.AddRelation("R" + std::to_string(i), {"a"}), i);
  }
}

}  // namespace
}  // namespace spider
