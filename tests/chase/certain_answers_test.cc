#include "chase/certain_answers.h"

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "mapping/parser.h"

namespace spider {
namespace {

class CertainAnswersTest : public ::testing::Test {
 protected:
  CertainAnswersTest() {
    scenario_ = ParseScenario(R"(
      source schema { Emp(id, dept); }
      target schema { Person(id, dept, mgr); }
      m: Emp(x, d) -> exists M . Person(x, d, M);
      source instance { Emp(1, "eng"); Emp(2, "eng"); Emp(3, "ops"); }
    )");
    ChaseScenario(&scenario_);
    person_ = scenario_.mapping->target().Require("Person");
  }

  Atom PersonAtom(Term a, Term b, Term c) {
    Atom atom;
    atom.relation = person_;
    atom.terms = {a, b, c};
    return atom;
  }

  Scenario scenario_;
  RelationId person_;
};

TEST_F(CertainAnswersTest, NullFreeAnswersOnly) {
  // q(x, m) :- Person(x, "eng", m): the manager is a labeled null, so no
  // certain answers mention it...
  std::vector<Tuple> with_mgr = CertainAnswers(
      *scenario_.target,
      {PersonAtom(Term::Var(0), Term::Const(Value::Str("eng")),
                  Term::Var(1))},
      {0, 1}, 2);
  EXPECT_TRUE(with_mgr.empty());
  // ...but projecting the manager away yields the two engineers.
  std::vector<Tuple> ids = CertainAnswers(
      *scenario_.target,
      {PersonAtom(Term::Var(0), Term::Const(Value::Str("eng")),
                  Term::Var(1))},
      {0}, 2);
  EXPECT_EQ(ids.size(), 2u);
}

TEST_F(CertainAnswersTest, JoinOnNullsAllowedInBody) {
  // q(x, y) :- Person(x, d, m) & Person(y, d, m): nulls may join in the
  // body (same invented manager ⇒ same fact), but only null-free heads
  // survive. Every person joins with itself.
  std::vector<Tuple> pairs = CertainAnswers(
      *scenario_.target,
      {PersonAtom(Term::Var(0), Term::Var(2), Term::Var(3)),
       PersonAtom(Term::Var(1), Term::Var(2), Term::Var(3))},
      {0, 1}, 4);
  EXPECT_EQ(pairs.size(), 3u);  // (1,1), (2,2), (3,3)
}

TEST_F(CertainAnswersTest, Deduplicates) {
  std::vector<Tuple> depts = CertainAnswers(
      *scenario_.target,
      {PersonAtom(Term::Var(0), Term::Var(1), Term::Var(2))}, {1}, 3);
  EXPECT_EQ(depts.size(), 2u);  // "eng", "ops"
}

TEST_F(CertainAnswersTest, HeadMustBeBound) {
  EXPECT_THROW(CertainAnswers(*scenario_.target,
                              {PersonAtom(Term::Var(0), Term::Var(1),
                                          Term::Var(2))},
                              {3}, 4),
               SpiderError);
}

}  // namespace
}  // namespace spider
