#include "chase/chase.h"

#include <gtest/gtest.h>

#include "base/status.h"
#include "chase/homomorphism.h"
#include "chase/solution_check.h"
#include "mapping/parser.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

TEST(ChaseTest, CopiesWithStTgd) {
  Scenario s = ParseScenario(R"(
    source schema { R(a, b); }
    target schema { T(a, b); }
    m: R(x, y) -> T(x, y);
    source instance { R(1, 2); R(3, 4); }
  )");
  ChaseStats stats = ChaseScenario(&s);
  EXPECT_EQ(stats.st_steps, 2u);
  EXPECT_EQ(s.target->TotalTuples(), 2u);
  EXPECT_TRUE(s.target->FindRow(0, Tuple({Value::Int(1), Value::Int(2)}))
                  .has_value());
}

TEST(ChaseTest, InventsLabeledNullsForExistentials) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); }
    target schema { T(a, b); }
    m: R(x) -> exists Y . T(x, Y);
    source instance { R(1); }
  )");
  ChaseStats stats = ChaseScenario(&s);
  EXPECT_EQ(stats.nulls_created, 1u);
  const Tuple& t = s.target->tuple(0, 0);
  EXPECT_EQ(t.at(0), Value::Int(1));
  EXPECT_TRUE(t.at(1).is_null());
  EXPECT_EQ(s.max_null_id, 1);
}

TEST(ChaseTest, StandardChaseDoesNotFireSatisfiedTriggers) {
  // Both R rows map to the same T row; the second trigger is already
  // satisfied and must not fire.
  Scenario s = ParseScenario(R"(
    source schema { R(a, b); }
    target schema { T(a); }
    m: R(x, y) -> exists Z . T(Z);
    source instance { R(1, 2); R(3, 4); }
  )");
  ChaseStats stats = ChaseScenario(&s);
  EXPECT_EQ(stats.st_steps, 1u);
  EXPECT_EQ(s.target->TotalTuples(), 1u);
}

TEST(ChaseTest, TargetTgdsRunToFixpoint) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T1(a); T2(a); T3(a); }
    m: S(x) -> T1(x);
    t1: T1(x) -> T2(x);
    t2: T2(x) -> T3(x);
    source instance { S(1); }
  )");
  ChaseScenario(&s);
  EXPECT_EQ(s.target->TotalTuples(), 3u);
}

TEST(ChaseTest, TransitiveClosure) {
  Scenario s = ParseScenario(R"(
    source schema { S(x, y); }
    target schema { T(x, y); }
    sigma1: S(x,y) -> T(x,y);
    sigma2: T(x,y) & T(y,z) -> T(x,z);
    source instance { S(1,2); S(2,3); S(3,4); }
  )");
  ChaseScenario(&s);
  // 1->2,2->3,3->4 plus 1->3,2->4,1->4.
  EXPECT_EQ(s.target->TotalTuples(), 6u);
}

TEST(ChaseTest, EgdUnifiesNullWithConstant) {
  Scenario s = ParseScenario(R"(
    source schema { R(a, b); P(a, c); }
    target schema { T(a, b, c); }
    m1: R(x, y) -> exists C . T(x, y, C);
    m2: P(x, z) -> exists B . T(x, B, z);
    e: T(x, y, z) & T(x, y2, z2) -> y = y2;
    e2: T(x, y, z) & T(x, y2, z2) -> z = z2;
    source instance { R(1, "b"); P(1, "c"); }
  )");
  ChaseStats stats = ChaseScenario(&s);
  EXPECT_GE(stats.egd_steps, 2u);
  // The two T facts must have merged into T(1, "b", "c").
  EXPECT_EQ(s.target->TotalTuples(), 1u);
  EXPECT_EQ(s.target->tuple(0, 0),
            Tuple({Value::Int(1), Value::Str("b"), Value::Str("c")}));
}

TEST(ChaseTest, EgdFailureOnDistinctConstants) {
  Scenario s = ParseScenario(R"(
    source schema { R(a, b); }
    target schema { T(a, b); }
    m: R(x, y) -> T(x, y);
    e: T(x, y) & T(x, y2) -> y = y2;
    source instance { R(1, 10); R(1, 20); }
  )");
  ChaseResult result = Chase(*s.mapping, *s.source);
  EXPECT_EQ(result.outcome, ChaseOutcome::kEgdFailure);
  EXPECT_NE(result.failure_message.find("e"), std::string::npos);
  EXPECT_THROW(ChaseScenario(&s), SpiderError);
}

TEST(ChaseTest, EgdUnifiesTwoNullsDeterministically) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); P(a); }
    target schema { T(a, b); }
    m1: R(x) -> exists B . T(x, B);
    m2: P(x) -> exists B . T(x, B);
    e: T(x, y) & T(x, y2) -> y = y2;
    source instance { R(1); P(1); }
  )");
  ChaseScenario(&s);
  EXPECT_EQ(s.target->TotalTuples(), 1u);
  EXPECT_TRUE(s.target->tuple(0, 0).at(1).is_null());
}

TEST(ChaseTest, StepLimitDetectsDivergence) {
  // T(x,y) -> exists Z . T(y,Z) diverges on any nonempty T.
  Scenario s = ParseScenario(R"(
    source schema { S(x, y); }
    target schema { T(x, y); }
    m: S(x, y) -> T(x, y);
    t: T(x, y) -> exists Z . T(y, Z);
    source instance { S(1, 2); }
  )");
  ChaseOptions options;
  options.max_steps = 1000;
  ChaseResult result = Chase(*s.mapping, *s.source, options);
  EXPECT_EQ(result.outcome, ChaseOutcome::kStepLimit);
}

TEST(ChaseTest, ProducesSolution) {
  Scenario s = testing::CreditCardScenario();
  // Chase I from scratch; the result must satisfy all dependencies.
  ChaseResult result = Chase(*s.mapping, *s.source);
  ASSERT_EQ(result.outcome, ChaseOutcome::kSuccess);
  std::string why;
  EXPECT_TRUE(IsSolution(*s.mapping, *s.source, *result.target, &why)) << why;
}

TEST(ChaseTest, PaperTargetInstanceIsSolution) {
  // Figure 2's J is a solution for I (the paper's premise).
  Scenario s = testing::CreditCardScenario();
  std::string why;
  EXPECT_TRUE(IsSolution(*s.mapping, *s.source, *s.target, &why)) << why;
}

TEST(ChaseTest, ChaseResultIsUniversal) {
  // The chased instance maps homomorphically into the paper's J.
  Scenario s = testing::CreditCardScenario();
  ChaseResult result = Chase(*s.mapping, *s.source);
  ASSERT_EQ(result.outcome, ChaseOutcome::kSuccess);
  EXPECT_TRUE(FindHomomorphism(*result.target, *s.target).has_value());
}

TEST(ChaseTest, NullCounterContinuesFromScenario) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); }
    target schema { T(a, b); U(a); }
    m: R(x) -> exists Y . T(x, Y);
    source instance { R(1); }
    target instance { U(#Z9); }
  )");
  int64_t declared = s.max_null_id;
  ChaseScenario(&s);
  const Tuple& t = s.target->tuple(0, 0);
  EXPECT_TRUE(t.at(1).is_null());
  EXPECT_GT(t.at(1).AsNull().id, 0);
  EXPECT_GT(s.max_null_id, declared);
}

TEST(ChaseTest, IsSolutionDetectsViolation) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); }
    target schema { T(a); }
    m: R(x) -> T(x);
    source instance { R(1); }
    target instance { }
  )");
  std::string why;
  EXPECT_FALSE(IsSolution(*s.mapping, *s.source, *s.target, &why));
  EXPECT_NE(why.find("m"), std::string::npos);
}

TEST(ChaseTest, EmptySourceYieldsEmptySolution) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); }
    target schema { T(a); }
    m: R(x) -> T(x);
    t: T(x) -> T(x);
  )");
  ChaseScenario(&s);
  EXPECT_EQ(s.target->TotalTuples(), 0u);
}

}  // namespace
}  // namespace spider
