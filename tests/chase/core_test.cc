#include "chase/core.h"

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "chase/homomorphism.h"
#include "mapping/parser.h"

namespace spider {
namespace {

TEST(CoreTest, NullPaddedFactFoldsIntoSpecificOne) {
  // Chase order makes m1 fire before m2, leaving both T(1, #N) and T(1, 5);
  // the former is redundant and the core drops it.
  Scenario s = ParseScenario(R"(
    source schema { S(a); P(a, b); }
    target schema { T(a, b); }
    m1: S(x) -> exists Y . T(x, Y);
    m2: S(x) & P(x, y) -> T(x, y);
    source instance { S(1); P(1, 5); }
  )");
  ChaseScenario(&s);
  ASSERT_EQ(s.target->TotalTuples(), 2u);
  CoreResult result = ComputeCore(*s.target);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.facts_removed, 1u);
  ASSERT_EQ(result.core->TotalTuples(), 1u);
  EXPECT_EQ(result.core->tuple(0, 0), Tuple({Value::Int(1), Value::Int(5)}));
  // The core is homomorphically equivalent to the original.
  EXPECT_TRUE(HomomorphicallyEquivalent(*s.target, *result.core));
}

TEST(CoreTest, ConstantFactsNeverRemoved) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a, b); }
    source instance { S(1); }
    target instance { T(1, 2); T(1, 3); }
  )");
  CoreResult result = ComputeCore(*s.target);
  EXPECT_EQ(result.facts_removed, 0u);
  EXPECT_EQ(result.core->TotalTuples(), 2u);
}

TEST(CoreTest, AlreadyCoreInstanceUnchanged) {
  // Two nulls in genuinely different roles cannot fold.
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a, b); }
    target instance { T(1, #X); T(2, #Y); }
  )");
  CoreResult result = ComputeCore(*s.target);
  EXPECT_EQ(result.facts_removed, 0u);
  EXPECT_EQ(result.core->TotalTuples(), 2u);
}

TEST(CoreTest, ChainOfRedundantNulls) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a, b); }
    target instance { T(1, #X); T(1, #Y); T(1, #Z); T(1, 9); }
  )");
  CoreResult result = ComputeCore(*s.target);
  EXPECT_EQ(result.facts_removed, 3u);
  EXPECT_EQ(result.core->TotalTuples(), 1u);
}

TEST(CoreTest, SharedNullBlocksFolding) {
  // #X occurs in two facts; folding T(1, #X) into T(1, 9) would force
  // U(#X) -> U(9), which exists, so BOTH facts fold; but if U(9) is absent
  // the shared null keeps them.
  Scenario with_u9 = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a, b); U(b); }
    target instance { T(1, #X); U(#X); T(1, 9); U(9); }
  )");
  CoreResult folded = ComputeCore(*with_u9.target);
  EXPECT_EQ(folded.facts_removed, 2u);

  Scenario without_u9 = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a, b); U(b); }
    target instance { T(1, #X); U(#X); T(1, 9); }
  )");
  CoreResult kept = ComputeCore(*without_u9.target);
  EXPECT_EQ(kept.facts_removed, 0u);
  EXPECT_EQ(kept.core->TotalTuples(), 3u);
}

TEST(CoreTest, IsRedundantFact) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a, b); }
    target instance { T(1, #X); T(1, 9); }
  )");
  RelationId t = s.mapping->target().Require("T");
  FactRef padded{Side::kTarget, t, 0};
  FactRef specific{Side::kTarget, t, 1};
  EXPECT_TRUE(IsRedundantFact(*s.target, padded));
  EXPECT_FALSE(IsRedundantFact(*s.target, specific));
}

TEST(CoreTest, BudgetStopsGracefully) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a, b); }
    target instance { T(1, #X); T(1, #Y); T(1, 9); }
  )");
  CoreOptions options;
  options.max_hom_tests = 1;
  CoreResult result = ComputeCore(*s.target, options);
  EXPECT_FALSE(result.complete);
}

}  // namespace
}  // namespace spider
