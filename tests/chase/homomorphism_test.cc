#include "chase/homomorphism.h"

#include <gtest/gtest.h>

#include "mapping/parser.h"

namespace spider {
namespace {

Scenario TwoInstances(const std::string& target_facts) {
  return ParseScenario("source schema { R(a); }\n"
                       "target schema { T(a, b); }\n"
                       "target instance {\n" +
                       target_facts + "\n}\n");
}

TEST(HomomorphismTest, NullMapsToConstant) {
  Scenario from = TwoInstances("T(1, #X);");
  Scenario to = TwoInstances("T(1, 2);");
  auto hom = FindHomomorphism(*from.target, *to.target);
  ASSERT_TRUE(hom.has_value());
  EXPECT_EQ(hom->at(1), Value::Int(2));
}

TEST(HomomorphismTest, ConstantsAreFixed) {
  Scenario from = TwoInstances("T(1, 2);");
  Scenario to = TwoInstances("T(1, 3);");
  EXPECT_FALSE(FindHomomorphism(*from.target, *to.target).has_value());
}

TEST(HomomorphismTest, SharedNullMustMapConsistently) {
  Scenario from = TwoInstances("T(1, #X); T(2, #X);");
  Scenario to_consistent = TwoInstances("T(1, 5); T(2, 5);");
  Scenario to_inconsistent = TwoInstances("T(1, 5); T(2, 6);");
  EXPECT_TRUE(
      FindHomomorphism(*from.target, *to_consistent.target).has_value());
  EXPECT_FALSE(
      FindHomomorphism(*from.target, *to_inconsistent.target).has_value());
}

TEST(HomomorphismTest, NullToNullAllowed) {
  Scenario from = TwoInstances("T(1, #X);");
  Scenario to = TwoInstances("T(1, #Y);");
  auto hom = FindHomomorphism(*from.target, *to.target);
  ASSERT_TRUE(hom.has_value());
  EXPECT_TRUE(hom->at(1).is_null());
}

TEST(HomomorphismTest, EmptyInstanceMapsAnywhere) {
  Scenario from = TwoInstances("");
  Scenario to = TwoInstances("T(1, 1);");
  EXPECT_TRUE(FindHomomorphism(*from.target, *to.target).has_value());
  // And nothing maps into an empty instance unless it is empty too.
  EXPECT_FALSE(FindHomomorphism(*to.target, *from.target).has_value());
}

TEST(HomomorphismTest, Equivalence) {
  Scenario a = TwoInstances("T(1, #X);");
  Scenario b = TwoInstances("T(1, #Y); T(1, #Z);");
  EXPECT_TRUE(HomomorphicallyEquivalent(*a.target, *b.target));
}

}  // namespace
}  // namespace spider
