#include "chase/weak_acyclicity.h"

#include <gtest/gtest.h>

#include "mapping/parser.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

TEST(WeakAcyclicityTest, CopyChainIsWeaklyAcyclic) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T1(a); T2(a); }
    m: S(x) -> T1(x);
    t: T1(x) -> T2(x);
  )");
  EXPECT_TRUE(IsWeaklyAcyclic(*s.mapping));
}

TEST(WeakAcyclicityTest, SelfFeedingExistentialIsNot) {
  Scenario s = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    m: S(x, y) -> T(x, y);
    t: T(x, y) -> exists Z . T(y, Z);
  )");
  std::string why;
  EXPECT_FALSE(IsWeaklyAcyclic(*s.mapping, &why));
  EXPECT_NE(why.find("t"), std::string::npos);
}

TEST(WeakAcyclicityTest, RegularCycleIsFine) {
  // Transitive closure: a cycle of regular edges but no special edge on it.
  Scenario s = ParseScenario(testing::TransitiveClosureText());
  EXPECT_TRUE(IsWeaklyAcyclic(*s.mapping));
}

TEST(WeakAcyclicityTest, TwoTgdCycleThroughExistential) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { A(x); B(x); }
    m: S(x) -> A(x);
    t1: A(x) -> exists Y . B(Y);
    t2: B(x) -> exists Z . A(Z);
  )");
  EXPECT_FALSE(IsWeaklyAcyclic(*s.mapping));
}

TEST(WeakAcyclicityTest, CreditCardMappingIsNotWeaklyAcyclic) {
  // m4 and m5 feed each other's existential positions (Accounts.accNo ->
  // Clients.name -> Accounts.accNo through special edges), so the mapping is
  // not weakly acyclic — weak acyclicity is sufficient, not necessary, for
  // chase termination, and the chase does terminate on Figure 2's instance
  // (see ChaseTest.ProducesSolution).
  Scenario s = testing::CreditCardScenario();
  EXPECT_FALSE(IsWeaklyAcyclic(*s.mapping));
}

TEST(WeakAcyclicityTest, WitnessReturnsClosedCycleThroughSpecialEdge) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { A(x); B(x); }
    m: S(x) -> A(x);
    t1: A(x) -> exists Y . B(Y);
    t2: B(x) -> exists Z . A(Z);
  )");
  PositionDependencyGraph graph = PositionDependencyGraph::Build(*s.mapping);
  AcyclicityWitness witness = CheckWeakAcyclicity(graph);
  ASSERT_FALSE(witness.weakly_acyclic);
  ASSERT_FALSE(witness.cycle.empty());
  // The cycle is a closed walk whose first edge is special.
  EXPECT_TRUE(graph.edges()[witness.cycle[0]].special);
  for (size_t i = 0; i + 1 < witness.cycle.size(); ++i) {
    EXPECT_EQ(graph.edges()[witness.cycle[i]].to,
              graph.edges()[witness.cycle[i + 1]].from);
  }
  EXPECT_EQ(graph.edges()[witness.cycle.front()].from,
            graph.edges()[witness.cycle.back()].to);
  // A.x ~t1~> B.x ~t2~> A.x, rendered with tgd provenance.
  std::string walk = witness.Describe(*s.mapping, graph);
  EXPECT_NE(walk.find("A.x"), std::string::npos);
  EXPECT_NE(walk.find("B.x"), std::string::npos);
  EXPECT_NE(walk.find("~(t1)~>"), std::string::npos);
  EXPECT_NE(walk.find("~(t2)~>"), std::string::npos);
}

TEST(WeakAcyclicityTest, WitnessOnAcyclicMappingIsEmpty) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T1(a); T2(a); }
    m: S(x) -> T1(x);
    t: T1(x) -> T2(x);
  )");
  PositionDependencyGraph graph = PositionDependencyGraph::Build(*s.mapping);
  AcyclicityWitness witness = CheckWeakAcyclicity(graph);
  EXPECT_TRUE(witness.weakly_acyclic);
  EXPECT_TRUE(witness.cycle.empty());
  EXPECT_EQ(witness.Describe(*s.mapping, graph), "weakly acyclic");
  // The graph itself still records the regular copy edge with provenance.
  ASSERT_EQ(graph.edges().size(), 1u);
  EXPECT_FALSE(graph.edges()[0].special);
  EXPECT_EQ(s.mapping->tgd(graph.edges()[0].tgd).name(), "t");
  EXPECT_EQ(graph.PositionName(s.mapping->target(), graph.edges()[0].from),
            "T1.a");
  EXPECT_EQ(graph.PositionName(s.mapping->target(), graph.edges()[0].to),
            "T2.a");
}

TEST(WeakAcyclicityTest, CreditCardWitnessNamesTheFeedingTgds) {
  Scenario s = testing::CreditCardScenario();
  PositionDependencyGraph graph = PositionDependencyGraph::Build(*s.mapping);
  AcyclicityWitness witness = CheckWeakAcyclicity(graph);
  ASSERT_FALSE(witness.weakly_acyclic);
  std::string walk = witness.Describe(*s.mapping, graph);
  // m4 and m5 feed each other's existential positions.
  EXPECT_NE(walk.find("m4"), std::string::npos);
  EXPECT_NE(walk.find("m5"), std::string::npos);
}

TEST(WeakAcyclicityTest, FullTgdsAlwaysWeaklyAcyclic) {
  Scenario s = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    m: S(x, y) -> T(x, y);
    t1: T(x, y) -> T(y, x);
    t2: T(x, y) & T(y, z) -> T(x, z);
  )");
  EXPECT_TRUE(IsWeaklyAcyclic(*s.mapping));
}

}  // namespace
}  // namespace spider
