#include "chase/weak_acyclicity.h"

#include <gtest/gtest.h>

#include "mapping/parser.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

TEST(WeakAcyclicityTest, CopyChainIsWeaklyAcyclic) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T1(a); T2(a); }
    m: S(x) -> T1(x);
    t: T1(x) -> T2(x);
  )");
  EXPECT_TRUE(IsWeaklyAcyclic(*s.mapping));
}

TEST(WeakAcyclicityTest, SelfFeedingExistentialIsNot) {
  Scenario s = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    m: S(x, y) -> T(x, y);
    t: T(x, y) -> exists Z . T(y, Z);
  )");
  std::string why;
  EXPECT_FALSE(IsWeaklyAcyclic(*s.mapping, &why));
  EXPECT_NE(why.find("t"), std::string::npos);
}

TEST(WeakAcyclicityTest, RegularCycleIsFine) {
  // Transitive closure: a cycle of regular edges but no special edge on it.
  Scenario s = ParseScenario(testing::TransitiveClosureText());
  EXPECT_TRUE(IsWeaklyAcyclic(*s.mapping));
}

TEST(WeakAcyclicityTest, TwoTgdCycleThroughExistential) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { A(x); B(x); }
    m: S(x) -> A(x);
    t1: A(x) -> exists Y . B(Y);
    t2: B(x) -> exists Z . A(Z);
  )");
  EXPECT_FALSE(IsWeaklyAcyclic(*s.mapping));
}

TEST(WeakAcyclicityTest, CreditCardMappingIsNotWeaklyAcyclic) {
  // m4 and m5 feed each other's existential positions (Accounts.accNo ->
  // Clients.name -> Accounts.accNo through special edges), so the mapping is
  // not weakly acyclic — weak acyclicity is sufficient, not necessary, for
  // chase termination, and the chase does terminate on Figure 2's instance
  // (see ChaseTest.ProducesSolution).
  Scenario s = testing::CreditCardScenario();
  EXPECT_FALSE(IsWeaklyAcyclic(*s.mapping));
}

TEST(WeakAcyclicityTest, FullTgdsAlwaysWeaklyAcyclic) {
  Scenario s = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    m: S(x, y) -> T(x, y);
    t1: T(x, y) -> T(y, x);
    t2: T(x, y) & T(y, z) -> T(x, z);
  )");
  EXPECT_TRUE(IsWeaklyAcyclic(*s.mapping));
}

}  // namespace
}  // namespace spider
