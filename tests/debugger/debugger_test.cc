#include "debugger/debugger.h"

#include <gtest/gtest.h>

#include "base/status.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

class DebuggerTest : public ::testing::Test {
 protected:
  DebuggerTest()
      : scenario_(testing::CreditCardScenario()), debugger_(&scenario_) {}

  Scenario scenario_;
  MappingDebugger debugger_;
};

TEST_F(DebuggerTest, ResolvesTargetFactFromText) {
  FactRef t1 = debugger_.TargetFact("Accounts(6689, \"15K\", 434)");
  EXPECT_EQ(t1.side, Side::kTarget);
  EXPECT_EQ(debugger_.RenderFactRef(t1), "Accounts(6689, \"15K\", 434)");
}

TEST_F(DebuggerTest, ResolvesNamedNulls) {
  FactRef t2 = debugger_.TargetFact("Accounts(#N1, \"2K\", 234)");
  EXPECT_EQ(debugger_.RenderFactRef(t2), "Accounts(#N1, \"2K\", 234)");
}

TEST_F(DebuggerTest, UnknownFactThrows) {
  EXPECT_THROW(debugger_.TargetFact("Accounts(1, \"1K\", 1)"), SpiderError);
  EXPECT_THROW(debugger_.TargetFact("Nope(1)"), SpiderError);
}

TEST_F(DebuggerTest, OneRouteRenders) {
  FactRef t5 =
      debugger_.TargetFact(R"(Clients(434, "Smith", "Smith", "50K", #A1))");
  OneRouteResult result = debugger_.OneRoute({t5});
  ASSERT_TRUE(result.found);
  std::string rendered = debugger_.Render(result.route);
  EXPECT_NE(rendered.find("m1"), std::string::npos);
  EXPECT_NE(rendered.find("Cards(6689"), std::string::npos);
  // The named null renders as #A1, not as a raw id.
  EXPECT_NE(rendered.find("#A1"), std::string::npos);
}

TEST_F(DebuggerTest, AllRoutesRenders) {
  FactRef t4 = debugger_.TargetFact("Accounts(5539, \"40K\", 153)");
  RouteForest forest = debugger_.AllRoutes({t4});
  std::string rendered = debugger_.Render(forest);
  EXPECT_NE(rendered.find("m3"), std::string::npos);
  EXPECT_NE(rendered.find("[source]"), std::string::npos);
}

TEST_F(DebuggerTest, EnumerateRoutesOnDemand) {
  FactRef t4 = debugger_.TargetFact("Accounts(5539, \"40K\", 153)");
  auto en = debugger_.EnumerateRoutes({t4});
  EXPECT_TRUE(en->Next().has_value());
  EXPECT_TRUE(en->Next().has_value());
}

TEST_F(DebuggerTest, SourceFactAndConsequences) {
  FactRef s2 = debugger_.SourceFact(
      R"(SupplementaryCards(6689, 234, "A. Long", "California"))");
  ConsequenceForest forest = debugger_.SourceConsequences({s2});
  EXPECT_FALSE(forest.steps.empty());
  std::string rendered = debugger_.Render(forest);
  EXPECT_NE(rendered.find("m2"), std::string::npos);
  EXPECT_NE(rendered.find("produced"), std::string::npos);
}

TEST_F(DebuggerTest, BreakpointsValidateTgdNames) {
  debugger_.SetBreakpoint("m5");
  EXPECT_EQ(debugger_.breakpoints().size(), 1u);
  EXPECT_THROW(debugger_.SetBreakpoint("zzz"), SpiderError);
  debugger_.ClearBreakpoint("m5");
  EXPECT_TRUE(debugger_.breakpoints().empty());
}

TEST_F(DebuggerTest, PlayerStepsThroughRoute) {
  FactRef t2 = debugger_.TargetFact("Accounts(#N1, \"2K\", 234)");
  OneRouteResult result = debugger_.OneRoute({t2});
  ASSERT_TRUE(result.found);
  RoutePlayer player = debugger_.Play(result.route);
  EXPECT_EQ(player.position(), 0u);
  EXPECT_TRUE(player.Step());
  EXPECT_EQ(player.produced().size(), 1u);  // t6
  EXPECT_TRUE(player.Step());
  EXPECT_EQ(player.produced().size(), 2u);  // + t2
  EXPECT_FALSE(player.Step());
  EXPECT_TRUE(player.done());
  player.Reset();
  EXPECT_EQ(player.position(), 0u);
  EXPECT_TRUE(player.produced().empty());
}

TEST_F(DebuggerTest, PlayerStopsAtBreakpoint) {
  debugger_.SetBreakpoint("m5");
  FactRef t2 = debugger_.TargetFact("Accounts(#N1, \"2K\", 234)");
  OneRouteResult result = debugger_.OneRoute({t2});
  RoutePlayer player = debugger_.Play(result.route);
  EXPECT_TRUE(player.RunToBreakpoint());
  // Stopped after m2, before m5.
  EXPECT_EQ(player.position(), 1u);
  // Resuming steps over the breakpoint... RunToBreakpoint would stall, so
  // Step() past it, then run to the end.
  EXPECT_TRUE(player.Step());
  EXPECT_FALSE(player.RunToBreakpoint());
  EXPECT_TRUE(player.done());
}

TEST_F(DebuggerTest, WatchShowsAssignmentAndFacts) {
  FactRef t2 = debugger_.TargetFact("Accounts(#N1, \"2K\", 234)");
  OneRouteResult result = debugger_.OneRoute({t2});
  RoutePlayer player = debugger_.Play(result.route);
  player.Step();
  std::string watch = player.Watch();
  EXPECT_NE(watch.find("position: 1/2"), std::string::npos);
  EXPECT_NE(watch.find("last step: m2"), std::string::npos);
  EXPECT_NE(watch.find("next step: m5"), std::string::npos);
  EXPECT_NE(watch.find("Clients(234"), std::string::npos);
}

TEST_F(DebuggerTest, RequiresCompleteScenario) {
  Scenario incomplete;
  EXPECT_THROW(MappingDebugger{&incomplete}, SpiderError);
}

}  // namespace
}  // namespace spider
