#include "debugger/dot_export.h"

#include <gtest/gtest.h>

#include "debugger/debugger.h"
#include "routes/one_route.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

class DotExportTest : public ::testing::Test {
 protected:
  DotExportTest()
      : scenario_(testing::CreditCardScenario()), debugger_(&scenario_) {}

  Scenario scenario_;
  MappingDebugger debugger_;
};

TEST_F(DotExportTest, ForestContainsNodesEdgesAndHighlights) {
  FactRef t4 = debugger_.TargetFact(R"(Accounts(5539, "40K", 153))");
  RouteForest forest = debugger_.AllRoutes({t4});
  std::string dot = RouteForestToDot(forest, debugger_.render_context());
  EXPECT_NE(dot.find("digraph route_forest"), std::string::npos);
  // The selected fact is emphasized.
  EXPECT_NE(dot.find("#ffe9a8"), std::string::npos);
  // Source facts are shaded, branch labels show tgd names.
  EXPECT_NE(dot.find("#dcebff"), std::string::npos);
  EXPECT_NE(dot.find("\"m3\""), std::string::npos);
  // Both m3 witnesses (s3 and s4) appear.
  EXPECT_NE(dot.find("FBAccounts(1001"), std::string::npos);
  EXPECT_NE(dot.find("FBAccounts(4341"), std::string::npos);
  // Balanced braces, ends with a newline.
  EXPECT_EQ(dot.back(), '\n');
}

TEST_F(DotExportTest, SharedSubtreesEmittedOnce) {
  FactRef t2 = debugger_.TargetFact(R"(Accounts(#N1, "2K", 234))");
  RouteForest forest = debugger_.AllRoutes({t2});
  std::string dot = RouteForestToDot(forest, debugger_.render_context());
  // The t6 node appears exactly once as a node definition.
  std::string needle = "label=\"Clients(234, \\\"A. Long\\\", #M1, #I1";
  size_t first = dot.find(needle);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(dot.find(needle, first + 1), std::string::npos);
}

TEST_F(DotExportTest, QuotesEscaped) {
  FactRef t5 =
      debugger_.TargetFact(R"(Clients(434, "Smith", "Smith", "50K", #A1))");
  RouteForest forest = debugger_.AllRoutes({t5});
  std::string dot = RouteForestToDot(forest, debugger_.render_context());
  EXPECT_NE(dot.find("\\\"Smith\\\""), std::string::npos);
}

// Constants are user data: quotes, backslashes, newlines and raw control
// bytes must all be escaped so the emitted DOT stays loadable. Regression
// test — backslashes and control characters used to pass through verbatim,
// corrupting the label syntax.
TEST(DotExportEscapingTest, HostileConstantsAreEscaped) {
  Scenario s = ParseScenario(
      "source schema { R(a); }\n"
      "target schema { T(a); }\n"
      "m: R(x) -> T(x);\n");
  s.source->Insert(
      "R", {Value::Str("he said \"hi\" \\ back\nline2\ttab\x01" "end")});
  ChaseResult chased = Chase(*s.mapping, *s.source);
  ASSERT_EQ(chased.outcome, ChaseOutcome::kSuccess);
  s.target = std::move(chased.target);

  MappingDebugger debugger(&s);
  RouteForest forest = debugger.AllRoutes(
      {FactRef{Side::kTarget, static_cast<RelationId>(0), 0}});
  std::string dot = RouteForestToDot(forest, debugger.render_context());

  // Every hostile byte appears in escaped form...
  EXPECT_NE(dot.find("\\\"hi\\\""), std::string::npos) << dot;
  EXPECT_NE(dot.find("\\\\ back"), std::string::npos) << dot;
  EXPECT_NE(dot.find("\\nline2"), std::string::npos) << dot;
  EXPECT_NE(dot.find("\\ttab"), std::string::npos) << dot;
  EXPECT_NE(dot.find("\\x01end"), std::string::npos) << dot;
  // ...and never raw: no control bytes anywhere, and every quoted string
  // in the output closes on the line it opened (raw newlines and unescaped
  // quotes inside a label would break both invariants).
  EXPECT_EQ(dot.find('\x01'), std::string::npos);
  EXPECT_EQ(dot.find('\t'), std::string::npos);
  bool in_string = false;
  for (size_t i = 0; i < dot.size(); ++i) {
    char c = dot[i];
    if (in_string && c == '\\') {
      ++i;  // Escaped char, including \" — skip it.
      continue;
    }
    if (c == '"') in_string = !in_string;
    ASSERT_FALSE(in_string && c == '\n') << "raw newline inside a label";
  }
  EXPECT_FALSE(in_string) << "unbalanced quote in DOT output";
}

TEST_F(DotExportTest, RouteChain) {
  FactRef t2 = debugger_.TargetFact(R"(Accounts(#N1, "2K", 234))");
  OneRouteResult result = debugger_.OneRoute({t2});
  ASSERT_TRUE(result.found);
  std::string dot = RouteToDot(result.route, debugger_.render_context());
  EXPECT_NE(dot.find("digraph route"), std::string::npos);
  EXPECT_NE(dot.find("1: m2"), std::string::npos);
  EXPECT_NE(dot.find("2: m5"), std::string::npos);
  EXPECT_NE(dot.find("SupplementaryCards"), std::string::npos);
}

}  // namespace
}  // namespace spider
