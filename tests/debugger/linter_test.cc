#include "debugger/linter.h"

#include <gtest/gtest.h>

#include "mapping/parser.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

std::vector<LintFinding> FindingsOfKind(
    const std::vector<LintFinding>& findings, LintFinding::Kind kind) {
  std::vector<LintFinding> out;
  for (const LintFinding& f : findings) {
    if (f.kind == kind) out.push_back(f);
  }
  return out;
}

TEST(LinterTest, FlagsAllThreePaperScenarios) {
  // The credit-card mapping contains the seeds of all three §2.1 bugs, and
  // the linter spots every one statically.
  Scenario s = testing::CreditCardScenario();
  std::vector<LintFinding> findings = LintMapping(*s.mapping);

  // Scenario 2: m3 is a cartesian product of FBAccounts and CreditCards.
  auto cartesian =
      FindingsOfKind(findings, LintFinding::Kind::kDisconnectedLhs);
  ASSERT_EQ(cartesian.size(), 1u);
  EXPECT_EQ(s.mapping->tgd(cartesian[0].tgd).name(), "m3");

  // Scenario 1, part 1: m1 drops `n` (name) and `loc` (location).
  auto dropped =
      FindingsOfKind(findings, LintFinding::Kind::kDroppedLhsVariable);
  bool dropped_loc = false;
  for (const LintFinding& f : dropped) {
    if (s.mapping->tgd(f.tgd).name() == "m1" &&
        f.message.find("'loc'") != std::string::npos) {
      dropped_loc = true;
    }
  }
  EXPECT_TRUE(dropped_loc);

  // Scenario 1, part 2: m1 copies `m` into both name and maidenName.
  auto repeated =
      FindingsOfKind(findings, LintFinding::Kind::kRepeatedRhsVariable);
  ASSERT_EQ(repeated.size(), 1u);
  EXPECT_EQ(s.mapping->tgd(repeated[0].tgd).name(), "m1");
  EXPECT_NE(repeated[0].message.find("'m'"), std::string::npos);
}

TEST(LinterTest, CleanMappingHasNoFindings) {
  Scenario s = ParseScenario(R"(
    source schema { Emp(id, name); }
    target schema { Person(id, name); }
    m: Emp(x, n) -> Person(x, n);
  )");
  EXPECT_TRUE(LintMapping(*s.mapping).empty());
}

TEST(LinterTest, NullFactoryDetected) {
  // Scenario 3's shape: Accounts.accNo is only ever filled by m5's
  // existential.
  Scenario s = ParseScenario(R"(
    source schema { SupplementaryCards(accNo, ssn); }
    target schema { Clients(ssn); Accounts(accNo, holder); }
    m2: SupplementaryCards(an, s) -> Clients(s);
    m5: Clients(s) -> exists N . Accounts(N, s);
  )");
  std::vector<LintFinding> findings = LintMapping(*s.mapping);
  auto factories = FindingsOfKind(findings, LintFinding::Kind::kNullFactory);
  ASSERT_EQ(factories.size(), 1u);
  EXPECT_NE(factories[0].message.find("Accounts.accNo"), std::string::npos);
}

TEST(LinterTest, UnusedAndUnpopulatedRelations) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); Dead(a); }
    target schema { T(a); Empty(a); }
    m: R(x) -> T(x);
  )");
  std::vector<LintFinding> findings = LintMapping(*s.mapping);
  auto unused =
      FindingsOfKind(findings, LintFinding::Kind::kUnusedSourceRelation);
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_NE(unused[0].message.find("Dead"), std::string::npos);
  auto unpopulated = FindingsOfKind(
      findings, LintFinding::Kind::kUnpopulatedTargetRelation);
  ASSERT_EQ(unpopulated.size(), 1u);
  EXPECT_NE(unpopulated[0].message.find("Empty"), std::string::npos);
}

TEST(LinterTest, ExistentialSharedPositionNotAFactoryIfAnyTgdGroundsIt) {
  Scenario s = ParseScenario(R"(
    source schema { R(a, b); }
    target schema { T(a, b); }
    m1: R(x, y) -> exists Z . T(x, Z);
    m2: R(x, y) -> T(x, y);
  )");
  auto findings = LintMapping(*s.mapping);
  EXPECT_TRUE(
      FindingsOfKind(findings, LintFinding::Kind::kNullFactory).empty());
}

TEST(LinterTest, RepeatedExistentialNotFlagged) {
  // Repeating an EXISTENTIAL variable in an atom asserts equality of two
  // unknowns — unusual but not the Scenario-1 bug; only universal repeats
  // are flagged.
  Scenario s = ParseScenario(R"(
    source schema { R(a); }
    target schema { T(a, b, c); }
    m: R(x) -> exists Y . T(x, Y, Y);
  )");
  auto findings = LintMapping(*s.mapping);
  EXPECT_TRUE(FindingsOfKind(findings,
                             LintFinding::Kind::kRepeatedRhsVariable)
                  .empty());
}

TEST(LinterTest, RenderingListsTags) {
  Scenario s = testing::CreditCardScenario();
  std::string rendered = RenderLintFindings(LintMapping(*s.mapping));
  EXPECT_NE(rendered.find("[disconnected-lhs]"), std::string::npos);
  EXPECT_NE(rendered.find("[repeated-variable]"), std::string::npos);
  EXPECT_EQ(RenderLintFindings({}), "no findings\n");
}

TEST(LinterTest, AdapterPinsSeedRenderingByteForByte) {
  // LintMapping is now an adapter over spider::AnalyzeMapping; this pins the
  // seed linter's exact output (messages, tags, order) for a mapping that
  // exercises every mapped finding class.
  Scenario s = ParseScenario(R"(
    source schema { R(a, b); Dead(a); }
    target schema { T(a, b); Empty(a); }
    m: R(x, y) -> exists Z . T(x, Z);
  )");
  EXPECT_EQ(
      RenderLintFindings(LintMapping(*s.mapping)),
      "[dropped-variable] tgd 'm': LHS variable 'y' never reaches the RHS "
      "(source data dropped?)\n"
      "[unused-source-relation] source relation 'Dead' is not read by any "
      "s-t tgd (data never migrated)\n"
      "[unpopulated-target-relation] target relation 'Empty' is not written "
      "by any tgd (always empty)\n"
      "[null-factory] target attribute T.b is only ever filled with "
      "invented nulls (no tgd supplies a value)\n");
  // Schema-level findings keep tgd = -1, per the seed contract.
  for (const LintFinding& f : LintMapping(*s.mapping)) {
    if (f.kind == LintFinding::Kind::kDroppedLhsVariable) {
      EXPECT_EQ(s.mapping->tgd(f.tgd).name(), "m");
    } else {
      EXPECT_EQ(f.tgd, -1);
    }
  }
}

TEST(LinterTest, TargetTgdsAlsoLinted) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); }
    target schema { T(a); U(a); V(a); }
    m: R(x) -> T(x);
    t: T(x) & U(y) -> V(x);
  )");
  std::vector<LintFinding> findings = LintMapping(*s.mapping);
  auto cartesian =
      FindingsOfKind(findings, LintFinding::Kind::kDisconnectedLhs);
  ASSERT_EQ(cartesian.size(), 1u);
  EXPECT_EQ(s.mapping->tgd(cartesian[0].tgd).name(), "t");
}

}  // namespace
}  // namespace spider
