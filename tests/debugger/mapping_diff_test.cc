#include "debugger/mapping_diff.h"

#include <gtest/gtest.h>

#include "mapping/parser.h"

namespace spider {
namespace {

Scenario Before() {
  return ParseScenario(R"(
    source schema { Cards(cardNo, limit, ssn, name, maidenName, salary, location); }
    target schema {
      Accounts(accNo, limit, accHolder);
      Clients(ssn, name, maidenName, income, address);
    }
    m1: Cards(cn,l,s,n,m,sal,loc) ->
          exists A . Accounts(cn,l,s) & Clients(s,m,m,sal,A);
    source instance {
      Cards(6689, "15K", 434, "J. Long", "Smith", "50K", "Seattle");
    }
  )");
}

Scenario After() {
  // Scenario 1's fix: name from name, address from location.
  return ParseScenario(R"(
    source schema { Cards(cardNo, limit, ssn, name, maidenName, salary, location); }
    target schema {
      Accounts(accNo, limit, accHolder);
      Clients(ssn, name, maidenName, income, address);
    }
    m1: Cards(cn,l,s,n,m,sal,loc) -> Accounts(cn,l,s) & Clients(s,n,m,sal,loc);
    source instance {
      Cards(6689, "15K", 434, "J. Long", "Smith", "50K", "Seattle");
    }
  )");
}

TEST(MappingDiffTest, Scenario1FixShowsTheRepairedClient) {
  Scenario before = Before();
  Scenario after = After();
  MappingDiffReport report =
      DiffMappings(*before.mapping, *before.source, *after.mapping,
                   *after.source);
  EXPECT_FALSE(report.Unchanged());
  // The broken client row disappears, the repaired one appears; the
  // Accounts row is untouched.
  ASSERT_EQ(report.removed.size(), 1u);
  ASSERT_EQ(report.added.size(), 1u);
  EXPECT_EQ(report.removed[0].relation, "Clients");
  EXPECT_EQ(report.removed[0].tuple.at(1), Value::Str("Smith"));
  EXPECT_TRUE(report.removed[0].tuple.at(4).is_null());
  EXPECT_EQ(report.added[0].tuple.at(1), Value::Str("J. Long"));
  EXPECT_EQ(report.added[0].tuple.at(4), Value::Str("Seattle"));
  // The dependency change is reported.
  EXPECT_EQ(report.removed_dependencies.size(), 1u);
  EXPECT_EQ(report.added_dependencies.size(), 1u);
}

TEST(MappingDiffTest, IdenticalMappingsUnchanged) {
  Scenario a = Before();
  Scenario b = Before();
  MappingDiffReport report =
      DiffMappings(*a.mapping, *a.source, *b.mapping, *b.source);
  EXPECT_TRUE(report.Unchanged());
  EXPECT_TRUE(report.removed_dependencies.empty());
  EXPECT_TRUE(report.added_dependencies.empty());
}

TEST(MappingDiffTest, NullBlindnessIgnoresNullRenaming) {
  // Both mappings invent existential nulls; different chase orders number
  // them differently, but the diff must be empty.
  Scenario a = Before();
  Scenario b = Before();
  // Pre-populate b's scenario with an unrelated null id offset.
  b.max_null_id = 500;
  MappingDiffReport report =
      DiffMappings(*a.mapping, *a.source, *b.mapping, *b.source);
  EXPECT_TRUE(report.Unchanged());
}

TEST(MappingDiffTest, DroppedTgdRemovesItsFacts) {
  Scenario before = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a); U(a); }
    m1: S(x) -> T(x);
    m2: S(x) -> U(x);
    source instance { S(1); S(2); }
  )");
  Scenario after = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a); U(a); }
    m1: S(x) -> T(x);
    source instance { S(1); S(2); }
  )");
  MappingDiffReport report = DiffMappings(*before.mapping, *before.source,
                                          *after.mapping, *after.source);
  EXPECT_EQ(report.removed.size(), 2u);  // U(1), U(2)
  EXPECT_TRUE(report.added.empty());
  EXPECT_EQ(report.before_total, 4u);
  EXPECT_EQ(report.after_total, 2u);
}

TEST(MappingDiffTest, StandardChaseReusesNullWitnesses) {
  // With the STANDARD chase, m2's trigger is already satisfied by m1's
  // invented null, so dropping m2 changes nothing — the diff is empty.
  Scenario before = ParseScenario(R"(
    source schema { S(a); P(a); }
    target schema { U(a, b); }
    m1: S(x) -> exists Y . U(x, Y);
    m2: P(x) -> exists Z . U(x, Z);
    source instance { S(1); P(1); }
  )");
  Scenario after = ParseScenario(R"(
    source schema { S(a); P(a); }
    target schema { U(a, b); }
    m1: S(x) -> exists Y . U(x, Y);
    source instance { S(1); P(1); }
  )");
  MappingDiffReport report = DiffMappings(*before.mapping, *before.source,
                                          *after.mapping, *after.source);
  EXPECT_TRUE(report.Unchanged());
}

TEST(MappingDiffTest, MultiplicityCounted) {
  // Copying vs. null-inventing variants of the same tgd: the copying side
  // keeps both rows, the inventing side collapses them into one null-padded
  // fact (the standard chase fires only once for x=1).
  Scenario before2 = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { U(a, b); }
    m1: S(x, t) -> U(x, t);
    source instance { S(1, 10); S(1, 20); }
  )");
  Scenario after = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { U(a, b); }
    m1: S(x, t) -> exists Y . U(x, Y);
    source instance { S(1, 10); S(1, 20); }
  )");
  MappingDiffReport report = DiffMappings(*before2.mapping, *before2.source,
                                          *after.mapping, *after.source);
  // before2: U(1,10), U(1,20); after: U(1, #null) once.
  EXPECT_EQ(report.before_total, 2u);
  EXPECT_EQ(report.after_total, 1u);
  ASSERT_EQ(report.removed.size(), 2u);
  ASSERT_EQ(report.added.size(), 1u);
  EXPECT_TRUE(report.added[0].tuple.at(1).is_null());
}

TEST(MappingDiffTest, ToStringMentionsEverything) {
  Scenario before = Before();
  Scenario after = After();
  MappingDiffReport report = DiffMappings(*before.mapping, *before.source,
                                          *after.mapping, *after.source);
  std::string str = report.ToString();
  EXPECT_NE(str.find("m1"), std::string::npos);
  EXPECT_NE(str.find("- Clients"), std::string::npos);
  EXPECT_NE(str.find("+ Clients"), std::string::npos);
}

}  // namespace
}  // namespace spider
