// The debugger's static short-circuit: route probes whose goal facts all
// live in statically unreachable target relations skip the search — with
// the exact result the search would have produced.
#include <vector>

#include <gtest/gtest.h>

#include "debugger/debugger.h"
#include "mapping/parser.h"
#include "routes/one_route.h"

namespace spider {
namespace {

Scenario UnreachableScenario() {
  // U has no writing dependency: no chase, over any source instance, ever
  // creates a U-fact, so the stray U(7) in the target has no route.
  return ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a); U(a); }
    m: S(x) -> T(x);
    source instance { S(1); }
    target instance { T(1); U(7); }
  )");
}

TEST(ReachabilityProbeTest, DebuggerExposesTheStaticReport) {
  Scenario s = UnreachableScenario();
  MappingDebugger debugger(&s);
  EXPECT_TRUE(
      debugger.reachability().Reachable(s.mapping->target().Require("T")));
  EXPECT_FALSE(
      debugger.reachability().Reachable(s.mapping->target().Require("U")));
}

TEST(ReachabilityProbeTest, AllUnreachableSelectionShortCircuits) {
  Scenario s = UnreachableScenario();
  MappingDebugger debugger(&s);
  std::vector<FactRef> js = {debugger.TargetFact("U(7)")};

  OneRouteResult fast = debugger.OneRoute(js);
  EXPECT_FALSE(fast.found);
  ASSERT_EQ(fast.unproven.size(), 1u);
  EXPECT_EQ(fast.unproven[0], js[0]);
  // The short-circuit ran no search at all.
  EXPECT_EQ(fast.stats.findhom_calls, 0u);

  // Same observable outcome as the real search.
  OneRouteResult slow =
      ComputeOneRoute(*s.mapping, *s.source, *s.target, js);
  EXPECT_EQ(fast.found, slow.found);
  EXPECT_EQ(fast.unproven, slow.unproven);
  EXPECT_EQ(fast.route, slow.route);
}

TEST(ReachabilityProbeTest, MixedSelectionStillSearches) {
  Scenario s = UnreachableScenario();
  MappingDebugger debugger(&s);
  std::vector<FactRef> js = {debugger.TargetFact("T(1)"),
                             debugger.TargetFact("U(7)")};
  OneRouteResult probed = debugger.OneRoute(js);
  OneRouteResult direct =
      ComputeOneRoute(*s.mapping, *s.source, *s.target, js);
  EXPECT_EQ(probed.found, direct.found);
  EXPECT_EQ(probed.unproven, direct.unproven);
  EXPECT_EQ(probed.route, direct.route);
}

TEST(ReachabilityProbeTest, ReachableSelectionIsUnaffected) {
  Scenario s = UnreachableScenario();
  MappingDebugger debugger(&s);
  std::vector<FactRef> js = {debugger.TargetFact("T(1)")};
  OneRouteResult result = debugger.OneRoute(js);
  EXPECT_TRUE(result.found);
  EXPECT_TRUE(result.unproven.empty());
}

}  // namespace
}  // namespace spider
