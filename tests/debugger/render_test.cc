#include "debugger/render.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "debugger/debugger.h"

#include "routes/one_route.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

class RenderTest : public ::testing::Test {
 protected:
  RenderTest() : scenario_(testing::CreditCardScenario()) {
    ctx_.mapping = scenario_.mapping.get();
    ctx_.source = scenario_.source.get();
    ctx_.target = scenario_.target.get();
    ctx_.null_names = &scenario_.null_names;
  }

  Scenario scenario_;
  RenderContext ctx_;
};

TEST_F(RenderTest, ValuesUseDisplayNamesForNulls) {
  EXPECT_EQ(RenderValue(Value::Null(1), ctx_), "#N1");  // named N1 in text
  EXPECT_EQ(RenderValue(Value::Null(2), ctx_), "#A1");
  // A null with no display name falls back to #N<id>.
  EXPECT_EQ(RenderValue(Value::Null(999), ctx_), "#N999");
  EXPECT_EQ(RenderValue(Value::Int(5), ctx_), "5");
  EXPECT_EQ(RenderValue(Value::Str("x"), ctx_), "\"x\"");
}

TEST_F(RenderTest, NullContextFallsBackToIds) {
  RenderContext bare = ctx_;
  bare.null_names = nullptr;
  EXPECT_EQ(RenderValue(Value::Null(2), bare), "#N2");
}

TEST_F(RenderTest, TupleAndFact) {
  EXPECT_EQ(RenderTuple(Tuple({Value::Int(1), Value::Null(2)}), ctx_),
            "(1, #A1)");
  FactRef s1{Side::kSource, scenario_.mapping->source().Require("Cards"), 0};
  EXPECT_EQ(RenderFact(s1, ctx_),
            R"(Cards(6689, "15K", 434, "J. Long", "Smith", "50K", "Seattle"))");
}

TEST_F(RenderTest, BindingOmitsUnboundSlots) {
  Binding b(3);
  b.Set(0, Value::Int(7));
  b.Set(2, Value::Null(2));
  std::string rendered = RenderBinding(b, {"x", "y", "z"}, ctx_);
  EXPECT_EQ(rendered, "{x -> 7, z -> #A1}");
}

TEST_F(RenderTest, InstanceRendersAllFacts) {
  std::string rendered = RenderInstance(*scenario_.target, ctx_);
  // One line per target fact, nulls named.
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 10);
  EXPECT_NE(rendered.find("#M5"), std::string::npos);
}

TEST_F(RenderTest, RouteRenderingUsesArrowsAndNames) {
  MappingDebugger debugger(&scenario_);
  FactRef t2 = debugger.TargetFact(R"(Accounts(#N1, "2K", 234))");
  OneRouteResult result = debugger.OneRoute({t2});
  std::string rendered = RenderRoute(result.route, ctx_);
  EXPECT_NE(rendered.find("--m2, {"), std::string::npos);
  EXPECT_NE(rendered.find("-->"), std::string::npos);
  EXPECT_NE(rendered.find("#I1"), std::string::npos);
}

}  // namespace
}  // namespace spider
