// End-to-end walkthroughs of the three debugging scenarios of §2.1.
#include <gtest/gtest.h>

#include "chase/chase.h"
#include "chase/solution_check.h"
#include "debugger/debugger.h"
#include "mapping/parser.h"
#include "routes/fact_util.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

class PaperScenarioTest : public ::testing::Test {
 protected:
  PaperScenarioTest()
      : scenario_(testing::CreditCardScenario()), debugger_(&scenario_) {}

  Scenario scenario_;
  MappingDebugger debugger_;
};

TEST_F(PaperScenarioTest, Scenario1IncompleteAndIncorrectCorrespondences) {
  // Alice probes t5 because its address is a null. The route shows s1 with
  // m1 and the assignment of the paper; she reads off that location was
  // never copied and maidenName was mapped to name.
  FactRef t5 =
      debugger_.TargetFact(R"(Clients(434, "Smith", "Smith", "50K", #A1))");
  OneRouteResult result = debugger_.OneRoute({t5});
  ASSERT_TRUE(result.found);
  ASSERT_EQ(result.route.size(), 1u);
  const SatStep& step = result.route.steps()[0];
  const Tgd& m1 = scenario_.mapping->tgd(step.tgd);
  EXPECT_EQ(m1.name(), "m1");
  // The witness is s1.
  std::vector<FactRef> lhs = LhsFacts(*scenario_.mapping, step.tgd, step.h,
                                      *scenario_.source, *scenario_.target);
  ASSERT_EQ(lhs.size(), 1u);
  EXPECT_EQ(debugger_.RenderFactRef(lhs[0]),
            R"(Cards(6689, "15K", 434, "J. Long", "Smith", "50K", "Seattle"))");

  // Alice fixes m1 as in the paper (name from name, address from location);
  // after re-chasing, the anomalous tuple is gone.
  Scenario fixed = ParseScenario(R"(
source schema {
  Cards(cardNo, limit, ssn, name, maidenName, salary, location);
}
target schema {
  Accounts(accNo, limit, accHolder);
  Clients(ssn, name, maidenName, income, address);
}
m1: Cards(cn,l,s,n,m,sal,loc) -> Accounts(cn,l,s) & Clients(s,n,m,sal,loc);
source instance {
  Cards(6689, "15K", 434, "J. Long", "Smith", "50K", "Seattle");
}
)");
  ChaseScenario(&fixed);
  EXPECT_TRUE(fixed.target
                  ->FindRow(fixed.mapping->target().Require("Clients"),
                            Tuple({Value::Int(434), Value::Str("J. Long"),
                                   Value::Str("Smith"), Value::Str("50K"),
                                   Value::Str("Seattle")}))
                  .has_value());
}

TEST_F(PaperScenarioTest, Scenario2MissingJoinCondition) {
  // Alice probes t4 (credit limit 40K for an income of 30K). The first
  // route uses s4 and s6; nothing odd. All routes reveal a second witness
  // using s3 (ssn 234!) and s6 — m3 is missing the join on ssn.
  FactRef t4 = debugger_.TargetFact(R"(Accounts(5539, "40K", 153))");
  auto en = debugger_.EnumerateRoutes({t4});
  std::optional<Route> first = en->Next();
  ASSERT_TRUE(first.has_value());
  std::optional<Route> second = en->Next();
  ASSERT_TRUE(second.has_value());

  // The two one-step witnesses use different FBAccounts rows with
  // different ssn values.
  RouteForest forest = debugger_.AllRoutes({t4});
  const RouteForest::Node* node = forest.Find(t4);
  std::vector<int64_t> witness_ssns;
  for (const RouteForest::Branch& b : node->branches) {
    if (scenario_.mapping->tgd(b.tgd).name() != "m3") continue;
    for (const FactRef& f : b.lhs_facts) {
      if (scenario_.mapping->source().relation(f.relation).name() ==
          "FBAccounts") {
        witness_ssns.push_back(
            scenario_.source->tuple(f.relation, f.row).at(1).AsInt());
      }
    }
  }
  ASSERT_EQ(witness_ssns.size(), 2u);
  EXPECT_NE(witness_ssns[0], witness_ssns[1]);

  // With the corrected m3 (join on ssn), the chase no longer produces t4's
  // bogus sibling Clients(153, "A. Long", ...).
  Scenario fixed = ParseScenario(R"(
source schema {
  FBAccounts(bankNo, ssn, name, income, address);
  CreditCards(cardNo, creditLimit, custSSN);
}
target schema {
  Accounts(accNo, limit, accHolder);
  Clients(ssn, name, maidenName, income, address);
}
m3: FBAccounts(bn,cs,n,i,a) & CreditCards(cn,cl,cs) ->
      exists M . Accounts(cn,cl,cs) & Clients(cs,n,M,i,a);
source instance {
  FBAccounts(1001, 234, "A. Long", "30K", "California");
  FBAccounts(4341, 153, "C. Don", "900K", "New York");
  CreditCards(2252, "2K", 234);
  CreditCards(5539, "40K", 153);
}
)");
  ChaseScenario(&fixed);
  RelationId clients = fixed.mapping->target().Require("Clients");
  for (const Tuple& t : fixed.target->tuples(clients)) {
    if (t.at(0) == Value::Int(153)) {
      EXPECT_EQ(t.at(1), Value::Str("C. Don"));
    }
  }
}

TEST_F(PaperScenarioTest, Scenario3MissingAssociationBetweenRelations) {
  // Alice probes N1 in t2. The route explains: t2 came from t6 via the
  // target tgd m5 (with L mapped to "2K"), and t6 came from s2 via m2.
  FactRef t2 = debugger_.TargetFact(R"(Accounts(#N1, "2K", 234))");
  OneRouteResult result = debugger_.OneRoute({t2});
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.route.TgdNames(*scenario_.mapping), "m2 -> m5");
  const SatStep& m5_step = result.route.steps()[1];
  const Tgd& m5 = scenario_.mapping->tgd(m5_step.tgd);
  // The existentially quantified L is assumed to map to "2K" of t2.
  int l_var = -1;
  for (size_t v = 0; v < m5.var_names().size(); ++v) {
    if (m5.var_names()[v] == "L") l_var = static_cast<int>(v);
  }
  ASSERT_GE(l_var, 0);
  EXPECT_EQ(m5_step.h.Get(l_var), Value::Str("2K"));

  // Alice's corrected m2 joins SupplementaryCards with Cards and also
  // populates Accounts; the supplementary card holder now gets a real
  // account number (no null).
  Scenario fixed = ParseScenario(R"(
source schema {
  Cards(cardNo, limit, ssn, name, maidenName, salary, location);
  SupplementaryCards(accNo, ssn, name, address);
}
target schema {
  Accounts(accNo, limit, accHolder);
  Clients(ssn, name, maidenName, income, address);
}
m2: Cards(cn,l,s1,n1,m,sal,loc) & SupplementaryCards(cn,s2,n2,a) ->
      exists M, I . Clients(s2,n2,M,I,a) & Accounts(cn,l,s2);
source instance {
  Cards(6689, "15K", 434, "J. Long", "Smith", "50K", "Seattle");
  SupplementaryCards(6689, 234, "A. Long", "California");
}
)");
  ChaseScenario(&fixed);
  RelationId accounts = fixed.mapping->target().Require("Accounts");
  ASSERT_EQ(fixed.target->NumTuples(accounts), 1u);
  const Tuple& account = fixed.target->tuple(accounts, 0);
  EXPECT_EQ(account.at(0), Value::Int(6689));   // real account number
  EXPECT_EQ(account.at(1), Value::Str("15K"));  // sponsor's credit limit
  EXPECT_EQ(account.at(2), Value::Int(234));
}

TEST_F(PaperScenarioTest, RoutesAreComputedInTheirEntirety) {
  // §2.1's remark: routes are always complete even though only part may
  // demonstrate the problem — the two-step route for t2 also exhibits the
  // full witness chain down to the source.
  FactRef t2 = debugger_.TargetFact(R"(Accounts(#N1, "2K", 234))");
  OneRouteResult result = debugger_.OneRoute({t2});
  ASSERT_TRUE(result.found);
  std::vector<FactRef> lhs0 =
      LhsFacts(*scenario_.mapping, result.route.steps()[0].tgd,
               result.route.steps()[0].h, *scenario_.source,
               *scenario_.target);
  ASSERT_EQ(lhs0.size(), 1u);
  EXPECT_EQ(lhs0[0].side, Side::kSource);
}

}  // namespace
}  // namespace spider
