// Byte-identity of the parallel runtime: chase, ComputeOneRoute,
// ComputeAllRoutes, and ComputeSourceConsequences must produce exactly the
// same instances, routes, forests, and stats at every thread count. Each
// workload scenario is rebuilt per thread count and the full pipeline run
// end-to-end, so divergence anywhere (trigger merge order, null ids, stats
// summing, forest waves) fails loudly.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chase/chase.h"
#include "mapping/parser.h"
#include "routes/one_route.h"
#include "routes/route_forest.h"
#include "routes/source_routes.h"
#include "testing/fixtures.h"
#include "workload/hierarchy_scenario.h"
#include "workload/real_scenarios.h"
#include "workload/relational_scenario.h"

namespace spider {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

/// The first `count` target (or source) facts in relation-major order —
/// a deterministic selection that works for every scenario.
std::vector<FactRef> FirstFacts(const Instance& instance, Side side,
                                size_t count) {
  std::vector<FactRef> facts;
  for (size_t r = 0; r < instance.NumRelations() && facts.size() < count;
       ++r) {
    RelationId rel = static_cast<RelationId>(r);
    int32_t rows = static_cast<int32_t>(instance.NumTuples(rel));
    for (int32_t row = 0; row < rows && facts.size() < count; ++row) {
      facts.push_back(FactRef{side, rel, row});
    }
  }
  return facts;
}

/// Everything observable from one end-to-end run at a given thread count.
struct PipelineSnapshot {
  std::string chased_target;
  ChaseStats chase_stats;
  int64_t max_null_id = 0;
  Route one_route;
  bool one_route_found = false;
  RouteStats one_route_stats;
  std::string forest;
  size_t forest_nodes = 0;
  size_t forest_branches = 0;
  RouteStats forest_stats;
  std::vector<SatStep> source_steps;
  std::vector<FactRef> source_derived;
  bool source_truncated = false;
};

template <typename BuildScenario>
PipelineSnapshot RunPipeline(const BuildScenario& build, int num_threads) {
  Scenario scenario = build();
  ChaseOptions chase_options;
  chase_options.exec.num_threads = num_threads;
  PipelineSnapshot snap;
  snap.chase_stats = ChaseScenario(&scenario, chase_options);
  snap.chased_target = scenario.target->ToString();
  snap.max_null_id = scenario.max_null_id;

  RouteOptions route_options;
  route_options.exec.num_threads = num_threads;
  std::vector<FactRef> selected =
      FirstFacts(*scenario.target, Side::kTarget, 8);
  OneRouteResult one = ComputeOneRoute(*scenario.mapping, *scenario.source,
                                       *scenario.target, selected,
                                       route_options);
  snap.one_route = one.route;
  snap.one_route_found = one.found;
  snap.one_route_stats = one.stats;

  RouteForest forest =
      ComputeAllRoutes(*scenario.mapping, *scenario.source, *scenario.target,
                       selected, route_options);
  snap.forest = forest.ToString();
  snap.forest_nodes = forest.NumNodes();
  snap.forest_branches = forest.NumBranches();
  snap.forest_stats = forest.stats();

  SourceRouteOptions source_options;
  source_options.route = route_options;
  std::vector<FactRef> sources =
      FirstFacts(*scenario.source, Side::kSource, 8);
  ConsequenceForest consequences = ComputeSourceConsequences(
      *scenario.mapping, *scenario.source, *scenario.target, sources,
      source_options);
  snap.source_steps = consequences.steps;
  snap.source_derived = consequences.DerivedFacts();
  snap.source_truncated = consequences.truncated;
  return snap;
}

template <typename BuildScenario>
void ExpectPipelineDeterministic(const BuildScenario& build) {
  PipelineSnapshot base = RunPipeline(build, /*num_threads=*/1);
  EXPECT_FALSE(base.chased_target.empty());
  for (int threads : kThreadCounts) {
    if (threads == 1) continue;
    PipelineSnapshot snap = RunPipeline(build, threads);
    EXPECT_EQ(snap.chased_target, base.chased_target) << threads;
    EXPECT_TRUE(snap.chase_stats == base.chase_stats) << threads;
    EXPECT_EQ(snap.max_null_id, base.max_null_id) << threads;
    EXPECT_EQ(snap.one_route_found, base.one_route_found) << threads;
    EXPECT_TRUE(snap.one_route == base.one_route) << threads;
    EXPECT_TRUE(snap.one_route_stats == base.one_route_stats) << threads;
    EXPECT_EQ(snap.forest, base.forest) << threads;
    EXPECT_EQ(snap.forest_nodes, base.forest_nodes) << threads;
    EXPECT_EQ(snap.forest_branches, base.forest_branches) << threads;
    EXPECT_TRUE(snap.forest_stats == base.forest_stats) << threads;
    EXPECT_TRUE(snap.source_steps == base.source_steps) << threads;
    EXPECT_TRUE(snap.source_derived == base.source_derived) << threads;
    EXPECT_EQ(snap.source_truncated, base.source_truncated) << threads;
  }
}

TEST(ExecDeterminismTest, CreditCardScenario) {
  ExpectPipelineDeterministic([] {
    Scenario s = testing::CreditCardScenario();
    // The fixture ships a hand-written J; rebuild it with the chase so the
    // pipeline exercises the parallel path end-to-end.
    s.target = std::make_unique<Instance>(&s.mapping->target());
    return s;
  });
}

TEST(ExecDeterminismTest, RelationalScenario) {
  for (int joins : {0, 2}) {
    ExpectPipelineDeterministic([joins] {
      RelationalScenarioOptions options;
      options.joins = joins;
      options.groups = 3;
      options.sizes.units = 2;
      return BuildRelationalScenario(options);
    });
  }
}

TEST(ExecDeterminismTest, DeepHierarchyScenario) {
  ExpectPipelineDeterministic([] {
    DeepHierarchyOptions options;
    options.regions = 2;
    options.fanout = 2;
    return BuildDeepHierarchyScenario(options);
  });
}

TEST(ExecDeterminismTest, FlatHierarchyScenario) {
  ExpectPipelineDeterministic([] {
    FlatHierarchyOptions options;
    options.joins = 1;
    options.groups = 2;
    options.units = 1;
    return BuildFlatHierarchyScenario(options);
  });
}

TEST(ExecDeterminismTest, DblpScenario) {
  ExpectPipelineDeterministic([] {
    RealScenarioOptions options;
    options.units = 3;
    return BuildDblpScenario(options);
  });
}

TEST(ExecDeterminismTest, MondialScenario) {
  ExpectPipelineDeterministic([] {
    RealScenarioOptions options;
    options.units = 3;
    return BuildMondialScenario(options);
  });
}

// Egds force ApplySubstitution (row renumbering + index invalidation) after
// the parallel phase; the merge must stay deterministic through that too.
TEST(ExecDeterminismTest, EgdScenario) {
  ExpectPipelineDeterministic([] {
    return ParseScenario(R"(
      source schema { R(a, b); P(a, c); }
      target schema { T(a, b, c); U(a); }
      m1: R(x, y) -> exists C . T(x, y, C);
      m2: P(x, z) -> exists B . T(x, B, z);
      t1: T(x, y, z) -> U(x);
      e: T(x, y, z) & T(x, y2, z2) -> y = y2;
      e2: T(x, y, z) & T(x, y2, z2) -> z = z2;
      source instance { R(1, "b"); P(1, "c"); R(2, "d"); P(3, "e"); }
    )");
  });
}

// Many s-t tgds with shared RHS relations: the standard-chase RHS check
// must see exactly the same growing target during the canonical-order
// merge, whichever worker enumerated the triggers.
TEST(ExecDeterminismTest, OverlappingStTgds) {
  ExpectPipelineDeterministic([] {
    return ParseScenario(R"(
      source schema { A(x); B(x); C(x); }
      target schema { T(x); V(x, y); }
      m1: A(x) -> T(x);
      m2: B(x) -> T(x);
      m3: C(x) -> T(x);
      m4: A(x) -> exists Y . V(x, Y);
      m5: B(x) -> exists Y . V(x, Y);
      source instance { A(1); A(2); B(1); B(3); C(2); C(4); }
    )");
  });
}

}  // namespace
}  // namespace spider
