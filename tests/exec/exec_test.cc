#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/status.h"
#include "exec/parallel_for.h"
#include "exec/task_group.h"
#include "obs/metrics.h"
#include "exec/thread_pool.h"
#include "exec/work_stealing_queue.h"

namespace spider {
namespace {

class CountingTask : public Task {
 public:
  explicit CountingTask(std::atomic<int>* counter) : counter_(counter) {}
  void Execute() override { counter_->fetch_add(1); }

 private:
  std::atomic<int>* counter_;
};

TEST(WorkStealingDequeTest, OwnerPopsLifo) {
  WorkStealingDeque deque;
  std::atomic<int> counter{0};
  auto a = std::make_unique<CountingTask>(&counter);
  auto b = std::make_unique<CountingTask>(&counter);
  deque.Push(a.get());
  deque.Push(b.get());
  EXPECT_EQ(deque.Pop(), b.get());
  EXPECT_EQ(deque.Pop(), a.get());
  EXPECT_EQ(deque.Pop(), nullptr);
}

TEST(WorkStealingDequeTest, ThiefStealsFifo) {
  WorkStealingDeque deque;
  std::atomic<int> counter{0};
  auto a = std::make_unique<CountingTask>(&counter);
  auto b = std::make_unique<CountingTask>(&counter);
  deque.Push(a.get());
  deque.Push(b.get());
  EXPECT_EQ(deque.Steal(), a.get());
  EXPECT_EQ(deque.Pop(), b.get());
  EXPECT_EQ(deque.Steal(), nullptr);
}

TEST(WorkStealingDequeTest, GrowsPastInitialCapacity) {
  WorkStealingDeque deque(/*initial_capacity=*/2);
  std::atomic<int> counter{0};
  std::vector<std::unique_ptr<CountingTask>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back(std::make_unique<CountingTask>(&counter));
    deque.Push(tasks.back().get());
  }
  // Steal a prefix, pop the rest; every task comes out exactly once.
  for (int i = 0; i < 40; ++i) EXPECT_EQ(deque.Steal(), tasks[i].get());
  for (int i = 99; i >= 40; --i) EXPECT_EQ(deque.Pop(), tasks[i].get());
  EXPECT_TRUE(deque.LooksEmpty());
}

TEST(ResolveNumThreadsTest, MapsZeroToHardware) {
  EXPECT_EQ(ResolveNumThreads(1), 1);
  EXPECT_EQ(ResolveNumThreads(7), 7);
  EXPECT_GE(ResolveNumThreads(0), 1);
}

TEST(ThreadPoolTest, ForReturnsNullForSequential) {
  ExecOptions options;
  options.num_threads = 1;
  EXPECT_EQ(ThreadPool::For(options), nullptr);
}

TEST(ThreadPoolTest, ForSharesPoolPerThreadCount) {
  ExecOptions options;
  options.num_threads = 2;
  ThreadPool* first = ThreadPool::For(options);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->num_threads(), 2);
  EXPECT_EQ(ThreadPool::For(options), first);
  options.num_threads = 3;
  EXPECT_NE(ThreadPool::For(options), first);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 1000; ++i) {
    group.Run([&counter] { counter.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(TaskGroupTest, InlineWithNullPool) {
  std::atomic<int> counter{0};
  TaskGroup group(nullptr);
  for (int i = 0; i < 10; ++i) {
    group.Run([&counter] { counter.fetch_add(1); });
  }
  // Inline groups run eagerly; Wait is a no-op but must be callable.
  EXPECT_EQ(counter.load(), 10);
  group.Wait();
}

TEST(TaskGroupTest, WaitRethrowsFirstException) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  for (int i = 0; i < 8; ++i) {
    group.Run([] { throw std::runtime_error("task failed"); });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // A second Wait does not re-observe the consumed exception.
  group.Wait();
}

TEST(TaskGroupTest, InlineExceptionDeferredToWait) {
  TaskGroup group(nullptr);
  group.Run([] { throw std::runtime_error("inline failure"); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

// A single failure rethrows the original exception untouched — no wrapper,
// no suffix — so callers catching specific types keep working.
TEST(TaskGroupTest, SingleFailureRethrownVerbatim) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  group.Run([] { throw std::runtime_error("the only failure"); });
  try {
    group.Wait();
    FAIL() << "expected the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "the only failure");
  }
}

// Regression: Wait used to rethrow the first exception and silently drop
// the rest. The dropped count must now surface in the rethrown message and
// in the exec.task_exceptions_dropped counter.
TEST(TaskGroupTest, DroppedFailuresSurfaceInMessageAndCounter) {
  obs::SetMetricsEnabled(true);
  obs::Counter* dropped_counter =
      obs::Registry::Global().GetCounter("exec.task_exceptions_dropped");
  uint64_t before = dropped_counter->value();

  ThreadPool pool(4);
  TaskGroup group(&pool);
  for (int i = 0; i < 8; ++i) {
    group.Run([i] { throw std::runtime_error("task " + std::to_string(i)); });
  }
  try {
    group.Wait();
    FAIL() << "expected SpiderError";
  } catch (const SpiderError& e) {
    std::string message = e.what();
    // Which task loses the race to be "first" is scheduling-dependent; the
    // suppressed count is not.
    EXPECT_NE(message.find("task "), std::string::npos) << message;
    EXPECT_NE(message.find("(+7 more task failures suppressed)"),
              std::string::npos)
        << message;
  }
  EXPECT_EQ(dropped_counter->value(), before + 7);

  // The drop state is consumed: a second Wait observes nothing.
  group.Wait();
  EXPECT_EQ(dropped_counter->value(), before + 7);
}

TEST(TaskGroupTest, TwoInlineFailuresReportOneSuppressed) {
  TaskGroup group(nullptr);
  group.Run([] { throw std::runtime_error("first"); });
  group.Run([] { throw std::runtime_error("second"); });
  try {
    group.Wait();
    FAIL() << "expected SpiderError";
  } catch (const SpiderError& e) {
    // Inline groups run eagerly, so "first" is deterministically first and
    // the singular form is exercised.
    EXPECT_NE(std::string(e.what()).find(
                  "first (+1 more task failure suppressed)"),
              std::string::npos)
        << e.what();
  }
}

TEST(TaskGroupTest, NestedForkJoin) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 16; ++i) {
    outer.Run([&pool, &counter] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 16; ++j) {
        inner.Run([&counter] { counter.fetch_add(1); });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(counter.load(), 16 * 16);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    for (size_t grain : {1u, 7u, 64u, 10000u}) {
      ExecOptions options;
      options.num_threads = threads;
      options.grain = grain;
      std::vector<std::atomic<int>> hits(1237);
      ParallelFor(ThreadPool::For(options), 0, hits.size(), grain,
                  [&](size_t i) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < hits.size(); ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at threads="
                                     << threads << " grain=" << grain;
      }
    }
  }
}

TEST(ParallelForTest, EmptyAndTinyRanges) {
  ExecOptions options;
  options.num_threads = 4;
  std::atomic<int> counter{0};
  ThreadPool* pool = ThreadPool::For(options);
  ParallelFor(pool, 5, 5, 1, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 0);
  ParallelFor(pool, 5, 6, 1, [&](size_t i) {
    EXPECT_EQ(i, 5u);
    counter.fetch_add(1);
  });
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelForTest, HelpingWorkerCanRunNestedParallelFor) {
  ExecOptions options;
  options.num_threads = 3;
  ThreadPool* pool = ThreadPool::For(options);
  std::atomic<int> counter{0};
  ParallelFor(pool, 0, 8, 1, [&](size_t) {
    ParallelFor(pool, 0, 8, 1, [&](size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 64);
}

}  // namespace
}  // namespace spider
