// Tests for the DebugSession facade: route caching across edits, cache
// invalidation on edits that touch a route's support, replay of cached
// routes, and egd-entangled fallback behavior.
#include <string>

#include <gtest/gtest.h>

#include "base/status.h"
#include "chase/chase.h"
#include "chase/homomorphism.h"
#include "debugger/debug_session.h"
#include "mapping/parser.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

DebugSession OpenClosureSession() {
  return DebugSession(ParseScenario(testing::TransitiveClosureText()));
}

TEST(DebugSessionTest, OpensWithChasedTarget) {
  DebugSession session = OpenClosureSession();
  EXPECT_EQ(session.scenario().target->TotalTuples(), 3u);
  EXPECT_FALSE(session.egd_entangled());
}

TEST(DebugSessionTest, RouteIsCachedAcrossProbes) {
  DebugSession session = OpenClosureSession();
  const Route& first = session.RouteFor("T(1, 3)");
  EXPECT_EQ(session.cache_stats().route_misses, 1u);
  const Route& second = session.RouteFor("T(1, 3)");
  EXPECT_EQ(session.cache_stats().route_hits, 1u);
  EXPECT_EQ(first.steps(), second.steps());
}

TEST(DebugSessionTest, UnrelatedEditServesRouteFromCache) {
  DebugSession session = OpenClosureSession();
  session.RouteFor("T(1, 3)");

  // S(7,8) is disconnected from T(1,3)'s support.
  SourceDelta delta;
  delta.Insert("S", Tuple({Value::Int(7), Value::Int(8)}));
  ApplyDeltaResult r = session.Apply(delta);
  ASSERT_FALSE(r.full_rechase);

  const Route& route = session.RouteFor("T(1, 3)");
  EXPECT_EQ(session.cache_stats().route_hits, 1u);
  std::string why;
  EXPECT_TRUE(route.Validate(*session.scenario().mapping,
                             *session.scenario().source,
                             *session.scenario().target,
                             {session.debugger().TargetFact("T(1, 3)")}, &why))
      << why;
}

TEST(DebugSessionTest, EditTouchingSupportRecomputesRoute) {
  DebugSession session = OpenClosureSession();
  session.RouteFor("T(1, 3)");

  // Deleting S(2,3) kills T(2,3) and T(1,3): the cached route is evicted
  // and the fact itself is gone.
  SourceDelta delta;
  delta.Delete("S", Tuple({Value::Int(2), Value::Int(3)}));
  session.Apply(delta);
  EXPECT_GE(session.cache_stats().route_evictions, 1u);
  EXPECT_THROW(session.RouteFor("T(1, 3)"), SpiderError);

  // Re-adding the tuple restores the fact; the route must be recomputed
  // (miss), not served from a stale entry.
  SourceDelta undo;
  undo.Insert("S", Tuple({Value::Int(2), Value::Int(3)}));
  session.Apply(undo);
  const Route& route = session.RouteFor("T(1, 3)");
  EXPECT_EQ(session.cache_stats().route_hits, 0u);
  std::string why;
  EXPECT_TRUE(route.Validate(*session.scenario().mapping,
                             *session.scenario().source,
                             *session.scenario().target,
                             {session.debugger().TargetFact("T(1, 3)")}, &why))
      << why;
}

TEST(DebugSessionTest, CachedRouteReplaysWithPlayer) {
  DebugSession session = OpenClosureSession();
  session.RouteFor("T(1, 3)");
  const Route& cached = session.RouteFor("T(1, 3)");
  ASSERT_EQ(session.cache_stats().route_hits, 1u);

  RoutePlayer player = session.Play(cached);
  size_t steps = 0;
  while (player.Step()) ++steps;
  EXPECT_TRUE(player.done());
  EXPECT_EQ(steps, cached.size());
  EXPECT_FALSE(player.produced().empty());
}

TEST(DebugSessionTest, ForestCachingAndInvalidation) {
  DebugSession session = OpenClosureSession();
  session.ForestFor("T(1, 3)");
  EXPECT_EQ(session.cache_stats().forest_misses, 1u);
  session.ForestFor("T(1, 3)");
  EXPECT_EQ(session.cache_stats().forest_hits, 1u);

  // Any S-insert threatens T (sigma1 can fire into it): forest evicted.
  SourceDelta delta;
  delta.Insert("S", Tuple({Value::Int(7), Value::Int(8)}));
  session.Apply(delta);
  EXPECT_EQ(session.cache_stats().forest_evictions, 1u);
  RouteForest& fresh = session.ForestFor("T(1, 3)");
  EXPECT_GE(fresh.NumNodes(), 1u);
  EXPECT_EQ(session.cache_stats().forest_misses, 2u);
}

TEST(DebugSessionTest, TargetInstanceMaintainedAcrossEdits) {
  DebugSession session = OpenClosureSession();
  const Instance* target_before = session.scenario().target.get();

  SourceDelta delta;
  delta.Insert("S", Tuple({Value::Int(3), Value::Int(4)}));
  session.Apply(delta);

  // Mutated strictly in place: the debugger's pointers stay valid.
  EXPECT_EQ(session.scenario().target.get(), target_before);
  ChaseResult scratch =
      Chase(*session.scenario().mapping, *session.scenario().source);
  ASSERT_EQ(scratch.outcome, ChaseOutcome::kSuccess);
  EXPECT_TRUE(HomomorphicallyEquivalent(*session.scenario().target,
                                        *scratch.target));
}

TEST(DebugSessionTest, NullIdsStaySyncedWithScenario) {
  Scenario scenario = ParseScenario(R"(
source schema { S(x); }
target schema { T(x, y); }
st: S(x) -> exists Z . T(x, Z);
source instance { S("a"); }
target instance { }
)");
  DebugSession session(std::move(scenario));
  const int64_t after_open = session.scenario().max_null_id;
  EXPECT_GE(after_open, 1);

  SourceDelta delta;
  delta.Insert("S", Tuple({Value::Str("b")}));
  session.Apply(delta);
  EXPECT_EQ(session.scenario().max_null_id, after_open + 1);
}

TEST(DebugSessionTest, FullRechaseClearsRouteCache) {
  Scenario scenario = ParseScenario(R"(
source schema { S(x); K(x, y); }
target schema { T(x, y); }
st2: S(x) -> exists Z . T(x, Z);
st1: K(x,y) -> T(x,y);
key: T(x,y) & T(x,z) -> y = z;
source instance { S(2); K(2, "v"); }
target instance { }
)");
  DebugSession session(std::move(scenario));
  ASSERT_TRUE(session.egd_entangled());
  session.RouteFor("T(2, \"v\")");
  ASSERT_EQ(session.cache_stats().route_misses, 1u);

  // Entangled + deletion: full re-chase, cache cleared wholesale.
  SourceDelta delta;
  delta.Delete("S", Tuple({Value::Int(2)}));
  ApplyDeltaResult r = session.Apply(delta);
  EXPECT_TRUE(r.full_rechase);
  EXPECT_EQ(session.cache_stats().clears, 1u);

  const Route& fresh = session.RouteFor("T(2, \"v\")");
  EXPECT_EQ(session.cache_stats().route_hits, 0u);
  EXPECT_EQ(fresh.size(), 1u);  // just the st1 copy step now
}

}  // namespace
}  // namespace spider
