// Unit tests for the IncrementalChaser: insertion propagation, DRed
// deletion (over-delete / re-derive / backward re-fire), egd handling, the
// full re-chase fallbacks, and null-id continuity. Every maintained target
// is cross-checked against the from-scratch chase.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/status.h"
#include "chase/chase.h"
#include "chase/homomorphism.h"
#include "chase/solution_check.h"
#include "incremental/delta_chase.h"
#include "incremental/source_delta.h"
#include "mapping/parser.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

/// The maintained target must be homomorphically equivalent to chasing the
/// maintained source from scratch (and actually be a solution).
void ExpectMatchesScratch(const SchemaMapping& mapping, const Instance& source,
                          const Instance& target, const std::string& where) {
  ChaseResult scratch = Chase(mapping, source);
  ASSERT_EQ(scratch.outcome, ChaseOutcome::kSuccess) << where;
  EXPECT_TRUE(HomomorphicallyEquivalent(target, *scratch.target)) << where;
  std::string why;
  EXPECT_TRUE(IsSolution(mapping, source, target, &why)) << where << ": " << why;
}

bool HasFact(const Instance& inst, const std::string& rel,
             const Tuple& tuple) {
  return inst.FindRow(inst.schema().Require(rel), tuple).has_value();
}

TEST(IncrementalChaserTest, ConstructionChasesFromScratch) {
  Scenario s = ParseScenario(testing::TransitiveClosureText());
  Instance target(&s.mapping->target());
  IncrementalChaser chaser(s.mapping.get(), s.source.get(), &target);
  EXPECT_TRUE(HasFact(target, "T", Tuple({Value::Int(1), Value::Int(2)})));
  EXPECT_TRUE(HasFact(target, "T", Tuple({Value::Int(1), Value::Int(3)})));
  EXPECT_EQ(target.TotalTuples(), 3u);
  EXPECT_FALSE(chaser.egd_entangled());
  ExpectMatchesScratch(*s.mapping, *s.source, target, "initial");
}

TEST(IncrementalChaserTest, InsertPropagatesThroughTargetTgds) {
  Scenario s = ParseScenario(testing::TransitiveClosureText());
  Instance target(&s.mapping->target());
  IncrementalChaser chaser(s.mapping.get(), s.source.get(), &target);

  SourceDelta delta;
  delta.Insert("S", Tuple({Value::Int(3), Value::Int(4)}));
  ApplyDeltaResult r = chaser.Apply(delta);

  EXPECT_FALSE(r.full_rechase);
  EXPECT_EQ(r.source_inserted, 1u);
  // T(3,4) plus the closure T(2,4), T(1,4).
  EXPECT_EQ(r.target_added, 3u);
  EXPECT_TRUE(HasFact(target, "T", Tuple({Value::Int(1), Value::Int(4)})));
  EXPECT_GE(chaser.stats().target_steps, 2u);
  ExpectMatchesScratch(*s.mapping, *s.source, target, "after insert");
}

TEST(IncrementalChaserTest, DeleteCascadesThroughDerivations) {
  Scenario s = ParseScenario(testing::TransitiveClosureText());
  Instance target(&s.mapping->target());
  IncrementalChaser chaser(s.mapping.get(), s.source.get(), &target);

  SourceDelta delta;
  delta.Delete("S", Tuple({Value::Int(2), Value::Int(3)}));
  ApplyDeltaResult r = chaser.Apply(delta);

  EXPECT_FALSE(r.full_rechase);
  EXPECT_EQ(r.source_deleted, 1u);
  // T(2,3) and the closure fact T(1,3) must both disappear.
  EXPECT_FALSE(HasFact(target, "T", Tuple({Value::Int(2), Value::Int(3)})));
  EXPECT_FALSE(HasFact(target, "T", Tuple({Value::Int(1), Value::Int(3)})));
  EXPECT_TRUE(HasFact(target, "T", Tuple({Value::Int(1), Value::Int(2)})));
  EXPECT_GE(chaser.stats().overdeleted, 2u);
  ExpectMatchesScratch(*s.mapping, *s.source, target, "after delete");
}

TEST(IncrementalChaserTest, AlternativeDerivationRevivesOverdeletedFact) {
  // One trigger's RHS records T(a) as new, a second trigger (different
  // U-fact) records it as pre-existing: deleting the first S-tuple condemns
  // T("a") in the over-delete phase, and the recorded second derivation
  // revives it.
  Scenario s = ParseScenario(R"(
source schema { S(x, y); }
target schema { T(x); U(x, y); }
st: S(x,y) -> T(x) & U(x,y);
source instance { S("a", 1); S("a", 2); }
target instance { }
)");
  Instance target(&s.mapping->target());
  IncrementalChaser chaser(s.mapping.get(), s.source.get(), &target);
  ASSERT_TRUE(HasFact(target, "T", Tuple({Value::Str("a")})));

  SourceDelta delta;
  delta.Delete("S", Tuple({Value::Str("a"), Value::Int(1)}));
  ApplyDeltaResult r = chaser.Apply(delta);

  EXPECT_FALSE(r.full_rechase);
  EXPECT_TRUE(HasFact(target, "T", Tuple({Value::Str("a")})));
  EXPECT_FALSE(HasFact(target, "U", Tuple({Value::Str("a"), Value::Int(1)})));
  EXPECT_TRUE(HasFact(target, "U", Tuple({Value::Str("a"), Value::Int(2)})));
  EXPECT_GE(chaser.stats().rederived, 1u);
  ExpectMatchesScratch(*s.mapping, *s.source, target, "after revive");
}

TEST(IncrementalChaserTest, BackwardRefireRerunsSuppressedTriggers) {
  // The standard chase never fired st2 — its RHS T("a") was already
  // satisfied by st1 — so no derivation records B("a") ⇒ T("a"). Deleting
  // A("a") kills the only recorded support; the backward re-fire pass must
  // rediscover the st2 trigger and restore T("a").
  Scenario s = ParseScenario(R"(
source schema { A(x); B(x); }
target schema { T(x); }
st1: A(x) -> T(x);
st2: B(x) -> T(x);
source instance { A("a"); B("a"); }
target instance { }
)");
  Instance target(&s.mapping->target());
  IncrementalChaser chaser(s.mapping.get(), s.source.get(), &target);
  ASSERT_EQ(target.TotalTuples(), 1u);

  SourceDelta delta;
  delta.Delete("A", Tuple({Value::Str("a")}));
  ApplyDeltaResult r = chaser.Apply(delta);

  EXPECT_FALSE(r.full_rechase);
  EXPECT_TRUE(HasFact(target, "T", Tuple({Value::Str("a")})));
  EXPECT_GE(chaser.stats().refired, 1u);
  ExpectMatchesScratch(*s.mapping, *s.source, target, "after refire");
}

TEST(IncrementalChaserTest, InsertDischargesExistentialWitness) {
  // Inserting S("b") must mint a fresh null for the existential, continuing
  // the id sequence from the initial chase.
  Scenario s = ParseScenario(R"(
source schema { S(x); }
target schema { T(x, y); }
st: S(x) -> exists Z . T(x, Z);
source instance { S("a"); }
target instance { }
)");
  Instance target(&s.mapping->target());
  IncrementalChaser chaser(s.mapping.get(), s.source.get(), &target);
  const int64_t nulls_after_init = chaser.next_null_id();
  EXPECT_GT(nulls_after_init, 1);

  SourceDelta delta;
  delta.Insert("S", Tuple({Value::Str("b")}));
  chaser.Apply(delta);

  EXPECT_EQ(target.TotalTuples(), 2u);
  EXPECT_EQ(chaser.next_null_id(), nulls_after_init + 1);
  ExpectMatchesScratch(*s.mapping, *s.source, target, "after existential");
}

TEST(IncrementalChaserTest, InsertTriggersIncrementalEgd) {
  // The initial chase leaves T(2, #N1) (no egd fires — one T-fact). The
  // insert creates T(2, "v"), and the scoped egd pass must merge the null
  // into the constant — incrementally, without a full re-chase.
  Scenario s = ParseScenario(R"(
source schema { S(x); K(x, y); }
target schema { T(x, y); }
st1: K(x,y) -> T(x,y);
st2: S(x) -> exists Z . T(x, Z);
key: T(x,y) & T(x,z) -> y = z;
source instance { S(2); }
target instance { }
)");
  Instance target(&s.mapping->target());
  IncrementalChaser chaser(s.mapping.get(), s.source.get(), &target);
  ASSERT_FALSE(chaser.egd_entangled());

  SourceDelta delta;
  delta.Insert("K", Tuple({Value::Int(2), Value::Str("v")}));
  ApplyDeltaResult r = chaser.Apply(delta);

  EXPECT_FALSE(r.full_rechase);
  EXPECT_TRUE(chaser.egd_entangled());
  EXPECT_GE(chaser.stats().egd_steps, 1u);
  EXPECT_EQ(target.TotalTuples(), 1u);
  EXPECT_TRUE(HasFact(target, "T", Tuple({Value::Int(2), Value::Str("v")})));
  ExpectMatchesScratch(*s.mapping, *s.source, target, "after egd merge");
}

TEST(IncrementalChaserTest, EgdFailureOnInsertThrows) {
  Scenario s = ParseScenario(R"(
source schema { K(x, y); }
target schema { T(x, y); }
st: K(x,y) -> T(x,y);
key: T(x,y) & T(x,z) -> y = z;
source instance { K(1, "a"); }
target instance { }
)");
  Instance target(&s.mapping->target());
  IncrementalChaser chaser(s.mapping.get(), s.source.get(), &target);

  SourceDelta delta;
  delta.Insert("K", Tuple({Value::Int(1), Value::Str("b")}));
  EXPECT_THROW(chaser.Apply(delta), SpiderError);
}

/// A scenario whose INITIAL chase fires an egd: st2 (declared first) invents
/// T(2, #N1), st1 then adds T(2, "v"), and the key egd merges them.
Scenario EntangledScenario() {
  return ParseScenario(R"(
source schema { S(x); K(x, y); }
target schema { T(x, y); }
st2: S(x) -> exists Z . T(x, Z);
st1: K(x,y) -> T(x,y);
key: T(x,y) & T(x,z) -> y = z;
source instance { S(2); K(2, "v"); }
target instance { }
)");
}

TEST(IncrementalChaserTest, EgdEntanglementForcesRechaseOnDelete) {
  // After the initial chase fired an egd, recorded derivations no longer
  // mirror chase steps: a deletion batch must fall back to a full re-chase
  // (and report it so caches drop everything).
  Scenario s = EntangledScenario();
  Instance target(&s.mapping->target());
  IncrementalChaser chaser(s.mapping.get(), s.source.get(), &target);
  ASSERT_TRUE(chaser.egd_entangled());

  SourceDelta delta;
  delta.Delete("K", Tuple({Value::Int(2), Value::Str("v")}));
  ApplyDeltaResult r = chaser.Apply(delta);

  EXPECT_TRUE(r.full_rechase);
  EXPECT_EQ(chaser.stats().full_rechases, 1u);
  EXPECT_FALSE(HasFact(target, "T", Tuple({Value::Int(2), Value::Str("v")})));
  ExpectMatchesScratch(*s.mapping, *s.source, target, "after rechase");
}

TEST(IncrementalChaserTest, InsertOnlyBatchStaysIncrementalWhenEntangled) {
  Scenario s = EntangledScenario();
  Instance target(&s.mapping->target());
  IncrementalChaser chaser(s.mapping.get(), s.source.get(), &target);
  ASSERT_TRUE(chaser.egd_entangled());

  SourceDelta delta;
  delta.Insert("S", Tuple({Value::Int(7)}));
  ApplyDeltaResult r = chaser.Apply(delta);

  EXPECT_FALSE(r.full_rechase);
  EXPECT_EQ(chaser.stats().full_rechases, 0u);
  EXPECT_EQ(target.TotalTuples(), 2u);
  ExpectMatchesScratch(*s.mapping, *s.source, target, "entangled insert");
}

TEST(IncrementalChaserTest, ForceFullRechaseEscapeHatch) {
  Scenario s = ParseScenario(testing::TransitiveClosureText());
  Instance target(&s.mapping->target());
  IncrementalOptions opts;
  opts.force_full_rechase = true;
  IncrementalChaser chaser(s.mapping.get(), s.source.get(), &target, opts);

  SourceDelta delta;
  delta.Insert("S", Tuple({Value::Int(3), Value::Int(4)}));
  ApplyDeltaResult r = chaser.Apply(delta);

  EXPECT_TRUE(r.full_rechase);
  EXPECT_EQ(chaser.stats().full_rechases, 1u);
  ExpectMatchesScratch(*s.mapping, *s.source, target, "forced rechase");
}

TEST(IncrementalChaserTest, NoopOperationsAreSkipped) {
  Scenario s = ParseScenario(testing::TransitiveClosureText());
  Instance target(&s.mapping->target());
  IncrementalChaser chaser(s.mapping.get(), s.source.get(), &target);
  const uint64_t version_before = target.version();

  SourceDelta delta;
  delta.Delete("S", Tuple({Value::Int(9), Value::Int(9)}));  // absent
  delta.Insert("S", Tuple({Value::Int(1), Value::Int(2)}));  // present
  ApplyDeltaResult r = chaser.Apply(delta);

  EXPECT_EQ(r.source_inserted, 0u);
  EXPECT_EQ(r.source_deleted, 0u);
  EXPECT_TRUE(r.added.empty());
  EXPECT_TRUE(r.removed.empty());
  EXPECT_EQ(target.version(), version_before);
  EXPECT_EQ(chaser.stats().batches, 0u);  // the empty batch is not counted
}

TEST(IncrementalChaserTest, DeleteThenReinsertWithinOneBatch) {
  // Deletions apply before insertions, so the batch is a content no-op on
  // the source but still reports the churn it caused.
  Scenario s = ParseScenario(testing::TransitiveClosureText());
  Instance target(&s.mapping->target());
  IncrementalChaser chaser(s.mapping.get(), s.source.get(), &target);

  SourceDelta delta;
  delta.Delete("S", Tuple({Value::Int(2), Value::Int(3)}));
  delta.Insert("S", Tuple({Value::Int(2), Value::Int(3)}));
  chaser.Apply(delta);

  EXPECT_EQ(s.source->TotalTuples(), 2u);
  EXPECT_EQ(target.TotalTuples(), 3u);
  ExpectMatchesScratch(*s.mapping, *s.source, target, "delete+reinsert");
}

TEST(IncrementalChaserTest, ReportedKeysMatchInstanceChurn) {
  Scenario s = ParseScenario(testing::TransitiveClosureText());
  Instance target(&s.mapping->target());
  IncrementalChaser chaser(s.mapping.get(), s.source.get(), &target);

  SourceDelta delta;
  delta.Insert("S", Tuple({Value::Int(3), Value::Int(4)}));
  ApplyDeltaResult r = chaser.Apply(delta);

  // 1 source fact + 3 target facts added, nothing removed.
  EXPECT_EQ(r.added.size(), 4u);
  EXPECT_TRUE(r.removed.empty());
  for (const FactKey& key : r.added) {
    const Instance& inst = key.side == Side::kSource ? *s.source : target;
    EXPECT_TRUE(inst.FindRow(key.relation, key.tuple).has_value());
  }

  SourceDelta del;
  del.Delete("S", Tuple({Value::Int(3), Value::Int(4)}));
  r = chaser.Apply(del);
  EXPECT_EQ(r.removed.size(), 4u);
  EXPECT_TRUE(r.added.empty());
  for (const FactKey& key : r.removed) {
    const Instance& inst = key.side == Side::kSource ? *s.source : target;
    EXPECT_FALSE(inst.FindRow(key.relation, key.tuple).has_value());
  }
}

TEST(IncrementalChaserTest, ManyBatchesConvergeToScratch) {
  // A longer edit script on the paper's running example: mixed insert /
  // delete batches over the six-dependency credit-card mapping, checked
  // against the from-scratch chase after every batch.
  Scenario s = testing::CreditCardScenario();
  Instance target(&s.mapping->target());
  IncrementalOptions opts;
  opts.first_null_id = s.max_null_id + 1;
  IncrementalChaser chaser(s.mapping.get(), s.source.get(), &target, opts);

  for (int i = 0; i < 5; ++i) {
    SourceDelta delta;
    delta.Insert("FBAccounts",
                 Tuple({Value::Int(2000 + i), Value::Int(500 + i),
                        Value::Str("P" + std::to_string(i)), Value::Str("1K"),
                        Value::Str("Austin")}));
    if (i % 2 == 1) {
      delta.Delete("FBAccounts",
                   Tuple({Value::Int(2000 + i - 1), Value::Int(500 + i - 1),
                          Value::Str("P" + std::to_string(i - 1)),
                          Value::Str("1K"), Value::Str("Austin")}));
    }
    chaser.Apply(delta);
    ExpectMatchesScratch(*s.mapping, *s.source, target,
                         "batch " + std::to_string(i));
  }
  EXPECT_EQ(chaser.stats().batches, 5u);
}

}  // namespace
}  // namespace spider
