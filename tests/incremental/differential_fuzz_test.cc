// Differential fuzz suite for the incremental subsystem: 200+ random edit
// scripts over workload/random_scenario. Every batch is applied through
// three IncrementalChasers (1, 2 and 8 exec threads) and one DebugSession;
// after each batch the maintained targets must be byte-identical across
// thread counts and homomorphically equivalent to the from-scratch chase of
// the edited source. Cached routes that survive invalidation are validated
// and replayed through the RoutePlayer.
#include <algorithm>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/status.h"
#include "chase/chase.h"
#include "chase/homomorphism.h"
#include "debugger/debug_session.h"
#include "incremental/delta_chase.h"
#include "routes/fact_util.h"
#include "workload/random_scenario.h"
#include "workload/rng.h"

namespace spider {
namespace {

constexpr int kScriptsPerSeed = 3;
constexpr int kBatchesPerScript = 3;

/// Byte-identical instance comparison (relation by relation, row order
/// included — determinism is exact, not up to isomorphism).
void ExpectIdentical(const Instance& a, const Instance& b,
                     const std::string& where) {
  ASSERT_EQ(a.NumRelations(), b.NumRelations()) << where;
  for (size_t r = 0; r < a.NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    EXPECT_EQ(a.tuples(rel), b.tuples(rel))
        << where << " relation " << a.schema().relation(rel).name();
  }
}

/// Order-insensitive instance comparison: same tuples per relation, any row
/// order. Used against the test's `predicted` source, which reaches the
/// same content through per-tuple Erase calls while the chaser batches its
/// deletions — EraseRows leaves remaining-row order unspecified, so the two
/// may legitimately disagree on order but never on content.
void ExpectSameContent(const Instance& a, const Instance& b,
                       const std::string& where) {
  ASSERT_EQ(a.NumRelations(), b.NumRelations()) << where;
  for (size_t r = 0; r < a.NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    std::vector<Tuple> lhs = a.tuples(rel);
    std::vector<Tuple> rhs = b.tuples(rel);
    std::sort(lhs.begin(), lhs.end());
    std::sort(rhs.begin(), rhs.end());
    EXPECT_EQ(lhs, rhs)
        << where << " relation " << a.schema().relation(rel).name();
  }
}

struct BatchOps {
  SourceDelta delta;
  /// The source as it will look after the batch (for the oracle chase).
  Instance predicted;

  explicit BatchOps(const Instance& current) : predicted(current) {}
};

/// Draws a random batch: up to 2 deletions of existing tuples, up to 3
/// insertions over the generator's value domain.
BatchOps DrawBatch(Rng* rng, const Schema& schema, const Instance& source,
                   int fanout) {
  BatchOps batch(source);
  const int num_rels = static_cast<int>(source.NumRelations());
  int deletes = static_cast<int>(rng->Below(3));  // 0..2
  for (int d = 0; d < deletes; ++d) {
    RelationId rel = static_cast<RelationId>(rng->Below(num_rels));
    if (source.NumTuples(rel) == 0) continue;
    Tuple victim = source.tuple(
        rel, static_cast<int32_t>(rng->Below(source.NumTuples(rel))));
    batch.delta.Delete(schema.relation(rel).name(), victim);
    batch.predicted.Erase(rel, victim);
  }
  int inserts = 1 + static_cast<int>(rng->Below(3));  // 1..3
  for (int i = 0; i < inserts; ++i) {
    RelationId rel = static_cast<RelationId>(rng->Below(num_rels));
    std::vector<Value> values;
    for (size_t c = 0; c < schema.relation(rel).arity(); ++c) {
      values.push_back(
          Value::Int(static_cast<int64_t>(rng->Below(fanout))));
    }
    Tuple tuple(std::move(values));
    batch.delta.Insert(schema.relation(rel).name(), tuple);
    batch.predicted.Insert(rel, std::move(tuple));
  }
  return batch;
}

/// Runs one edit script; returns false when the seed's initial chase fails
/// (egd with no solution — nothing to maintain).
bool RunScript(uint64_t seed, int script) {
  RandomScenarioOptions opts;
  opts.seed = seed * 1000 + static_cast<uint64_t>(script);
  opts.rows_per_relation = 6;
  opts.fanout = 3;
  opts.egds = script % 2;  // half the scripts exercise egd entanglement
  Scenario scenario = BuildRandomScenario(opts);
  if (Chase(*scenario.mapping, *scenario.source).outcome !=
      ChaseOutcome::kSuccess) {
    return false;
  }

  // Three chasers over independent copies of the instances, one per thread
  // count; plus a DebugSession (route cache) over its own scenario copy.
  const int kThreads[] = {1, 2, 8};
  std::vector<Instance> sources;
  std::vector<Instance> targets;
  std::vector<std::unique_ptr<IncrementalChaser>> chasers;
  // Populate the instance vectors fully before handing out pointers.
  for (size_t i = 0; i < std::size(kThreads); ++i) {
    sources.push_back(*scenario.source);
    targets.emplace_back(&scenario.mapping->target());
  }
  for (size_t i = 0; i < std::size(kThreads); ++i) {
    IncrementalOptions inc;
    inc.exec.num_threads = kThreads[i];
    chasers.push_back(std::make_unique<IncrementalChaser>(
        scenario.mapping.get(), &sources[i], &targets[i], inc));
  }
  DebugSession session(BuildRandomScenario(opts));

  Rng rng(opts.seed ^ 0xfeedULL);
  for (int b = 0; b < kBatchesPerScript; ++b) {
    const std::string where = "seed " + std::to_string(opts.seed) +
                              " batch " + std::to_string(b);

    // Probe up to two routes so the cache has entries the batch can evict
    // or preserve.
    std::vector<std::string> probed;
    for (int p = 0; p < 2; ++p) {
      const Instance& t = *session.scenario().target;
      if (t.TotalTuples() == 0) break;
      RelationId rel =
          static_cast<RelationId>(rng.Below(t.NumRelations()));
      if (t.NumTuples(rel) == 0) continue;
      FactRef fact{Side::kTarget, rel,
                   static_cast<int32_t>(rng.Below(t.NumTuples(rel)))};
      std::string text =
          FactToString(fact, *session.scenario().source, t);
      try {
        session.RouteFor(text);
        probed.push_back(std::move(text));
      } catch (const SpiderError&) {
        // Chase-produced facts always have routes; tolerate a probe
        // failing anyway rather than aborting the whole script.
      }
    }

    BatchOps batch = DrawBatch(&rng, scenario.mapping->source(),
                               sources[0], opts.fanout);
    ChaseResult oracle = Chase(*scenario.mapping, batch.predicted);

    if (oracle.outcome != ChaseOutcome::kSuccess) {
      // The edit makes the scenario unsolvable (or non-terminating):
      // every maintainer must refuse it the same way.
      for (auto& chaser : chasers) {
        EXPECT_THROW(chaser->Apply(batch.delta), SpiderError) << where;
      }
      EXPECT_THROW(session.Apply(batch.delta), SpiderError) << where;
      return true;  // instances are poisoned; end the script
    }

    ApplyDeltaResult r0 = chasers[0]->Apply(batch.delta);
    for (size_t i = 1; i < chasers.size(); ++i) {
      ApplyDeltaResult ri = chasers[i]->Apply(batch.delta);
      EXPECT_EQ(r0.full_rechase, ri.full_rechase) << where;
      EXPECT_EQ(r0.added, ri.added) << where;
      EXPECT_EQ(r0.removed, ri.removed) << where;
    }
    session.Apply(batch.delta);

    // Determinism: byte-identical instances and null counters across
    // thread counts.
    for (size_t i = 1; i < chasers.size(); ++i) {
      ExpectIdentical(sources[0], sources[i], where + " (source)");
      ExpectIdentical(targets[0], targets[i], where + " (target)");
      EXPECT_EQ(chasers[0]->next_null_id(), chasers[i]->next_null_id())
          << where;
    }

    // Correctness: homomorphically equivalent to the from-scratch chase.
    ExpectSameContent(sources[0], batch.predicted, where + " (predicted)");
    EXPECT_TRUE(HomomorphicallyEquivalent(targets[0], *oracle.target))
        << where;
    EXPECT_TRUE(HomomorphicallyEquivalent(*session.scenario().target,
                                          *oracle.target))
        << where;

    // Replay every probed fact that still exists: whether the route came
    // from the cache or was recomputed, it must validate and play through.
    for (const std::string& text : probed) {
      FactRef ref;
      try {
        ref = session.debugger().TargetFact(text);
      } catch (const SpiderError&) {
        continue;  // the edit deleted or rewrote the fact
      }
      const Route& route = session.RouteFor(text);
      std::string why;
      EXPECT_TRUE(route.Validate(*session.scenario().mapping,
                                 *session.scenario().source,
                                 *session.scenario().target, {ref}, &why))
          << where << " " << text << ": " << why;
      RoutePlayer player = session.Play(route);
      while (player.Step()) {
      }
      EXPECT_TRUE(player.done()) << where << " " << text;
    }
  }
  return true;
}

class DifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialFuzz, IncrementalMatchesScratchChase) {
  int ran = 0;
  for (int script = 0; script < kScriptsPerSeed; ++script) {
    if (RunScript(GetParam(), script)) ++ran;
  }
  // Unsolvable seeds exist but must be rare; each parameter contributes
  // at least one real script so the suite stays above 200 total.
  EXPECT_GE(ran, 1) << "seed " << GetParam();
}

// 70 seeds x 3 scripts = 210 edit scripts.
INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range(uint64_t{1}, uint64_t{71}));

}  // namespace
}  // namespace spider
