// Unit tests for the RouteCache: dependency extraction, hit/miss
// accounting, and the invalidation rules (fine-grained for routes,
// relation-level for forests, wholesale on full re-chase).
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "incremental/route_cache.h"
#include "mapping/parser.h"
#include "routes/one_route.h"
#include "routes/route_forest.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

FactKey TargetKeyOf(const Scenario& s, const std::string& rel,
                    const Tuple& tuple) {
  return FactKey{Side::kTarget, s.mapping->target().Require(rel), tuple};
}

FactKey SourceKeyOf(const Scenario& s, const std::string& rel,
                    const Tuple& tuple) {
  return FactKey{Side::kSource, s.mapping->source().Require(rel), tuple};
}

/// Chased transitive-closure scenario plus the route for T(1,3).
struct ClosureFixture {
  Scenario s;
  FactRef t13;
  Route route;

  ClosureFixture() : s(ParseScenario(testing::TransitiveClosureText())) {
    ChaseScenario(&s);
    RelationId t = s.mapping->target().Require("T");
    t13 = FactRef{Side::kTarget, t,
                  *s.target->FindRow(t, Tuple({Value::Int(1), Value::Int(3)}))};
    OneRouteResult result =
        ComputeOneRoute(*s.mapping, *s.source, *s.target, {t13});
    EXPECT_TRUE(result.found);
    route = std::move(result.route);
  }
};

TEST(RouteDependenciesTest, CoversLhsAndRhsFacts) {
  ClosureFixture f;
  std::vector<FactKey> deps = RouteDependencies(*f.s.mapping, f.route);
  // Producing T(1,3) takes S(1,2), S(2,3) (sources of the two copy steps),
  // T(1,2), T(2,3) (copies, also the closure step's LHS) and T(1,3) itself.
  auto has = [&](const FactKey& key) {
    return std::find(deps.begin(), deps.end(), key) != deps.end();
  };
  EXPECT_TRUE(has(SourceKeyOf(f.s, "S", Tuple({Value::Int(1), Value::Int(2)}))));
  EXPECT_TRUE(has(SourceKeyOf(f.s, "S", Tuple({Value::Int(2), Value::Int(3)}))));
  EXPECT_TRUE(has(TargetKeyOf(f.s, "T", Tuple({Value::Int(1), Value::Int(2)}))));
  EXPECT_TRUE(has(TargetKeyOf(f.s, "T", Tuple({Value::Int(2), Value::Int(3)}))));
  EXPECT_TRUE(has(TargetKeyOf(f.s, "T", Tuple({Value::Int(1), Value::Int(3)}))));
  // Deduplicated: no key twice.
  for (size_t i = 0; i < deps.size(); ++i) {
    for (size_t j = i + 1; j < deps.size(); ++j) {
      EXPECT_FALSE(deps[i] == deps[j]);
    }
  }
}

TEST(RouteCacheTest, FindCountsHitsAndMisses) {
  ClosureFixture f;
  RouteCache cache;
  FactKey key = TargetKeyOf(f.s, "T", Tuple({Value::Int(1), Value::Int(3)}));

  EXPECT_EQ(cache.FindRoute(key), nullptr);
  EXPECT_EQ(cache.stats().route_misses, 1u);
  cache.PutRoute(key, f.route, RouteDependencies(*f.s.mapping, f.route));
  const Route* cached = cache.FindRoute(key);
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(cached->steps(), f.route.steps());
  EXPECT_EQ(cache.stats().route_hits, 1u);
  EXPECT_EQ(cache.NumRoutes(), 1u);
}

TEST(RouteCacheTest, RemovalOfDependencyEvictsRoute) {
  ClosureFixture f;
  RouteCache cache;
  FactKey key = TargetKeyOf(f.s, "T", Tuple({Value::Int(1), Value::Int(3)}));
  cache.PutRoute(key, f.route, RouteDependencies(*f.s.mapping, f.route));

  ApplyDeltaResult delta;
  delta.removed.push_back(
      SourceKeyOf(f.s, "S", Tuple({Value::Int(2), Value::Int(3)})));
  cache.Invalidate(*f.s.mapping, delta);

  EXPECT_EQ(cache.NumRoutes(), 0u);
  EXPECT_EQ(cache.stats().route_evictions, 1u);
}

TEST(RouteCacheTest, UnrelatedRemovalKeepsRoute) {
  ClosureFixture f;
  RouteCache cache;
  FactKey key = TargetKeyOf(f.s, "T", Tuple({Value::Int(1), Value::Int(3)}));
  cache.PutRoute(key, f.route, RouteDependencies(*f.s.mapping, f.route));

  ApplyDeltaResult delta;
  delta.removed.push_back(
      SourceKeyOf(f.s, "S", Tuple({Value::Int(8), Value::Int(9)})));
  cache.Invalidate(*f.s.mapping, delta);

  EXPECT_EQ(cache.NumRoutes(), 1u);
  EXPECT_EQ(cache.stats().route_evictions, 0u);
}

TEST(RouteCacheTest, AdditionsNeverEvictRoutes) {
  ClosureFixture f;
  RouteCache cache;
  FactKey key = TargetKeyOf(f.s, "T", Tuple({Value::Int(1), Value::Int(3)}));
  cache.PutRoute(key, f.route, RouteDependencies(*f.s.mapping, f.route));

  ApplyDeltaResult delta;
  delta.added.push_back(
      SourceKeyOf(f.s, "S", Tuple({Value::Int(3), Value::Int(4)})));
  delta.added.push_back(
      TargetKeyOf(f.s, "T", Tuple({Value::Int(3), Value::Int(4)})));
  cache.Invalidate(*f.s.mapping, delta);

  EXPECT_EQ(cache.NumRoutes(), 1u);
}

TEST(RouteCacheTest, AnyRemovalEvictsAllForests) {
  ClosureFixture f;
  RouteCache cache;
  FactKey key = TargetKeyOf(f.s, "T", Tuple({Value::Int(1), Value::Int(3)}));
  cache.PutForest(
      key, ComputeAllRoutes(*f.s.mapping, *f.s.source, *f.s.target, {f.t13}));
  ASSERT_EQ(cache.NumForests(), 1u);

  // The removed fact is unrelated to the forest's content, but forests hold
  // row indexes, which any removal destabilizes.
  ApplyDeltaResult delta;
  delta.removed.push_back(
      SourceKeyOf(f.s, "S", Tuple({Value::Int(8), Value::Int(9)})));
  cache.Invalidate(*f.s.mapping, delta);

  EXPECT_EQ(cache.NumForests(), 0u);
  EXPECT_EQ(cache.stats().forest_evictions, 1u);
}

TEST(RouteCacheTest, ThreateningAdditionEvictsForest) {
  ClosureFixture f;
  RouteCache cache;
  FactKey key = TargetKeyOf(f.s, "T", Tuple({Value::Int(1), Value::Int(3)}));
  cache.PutForest(
      key, ComputeAllRoutes(*f.s.mapping, *f.s.source, *f.s.target, {f.t13}));

  // An added S-fact can fire sigma1 into T, and the forest owns T-nodes:
  // its branch lists could grow, so it must go.
  ApplyDeltaResult delta;
  delta.added.push_back(
      SourceKeyOf(f.s, "S", Tuple({Value::Int(1), Value::Int(9)})));
  cache.Invalidate(*f.s.mapping, delta);

  EXPECT_EQ(cache.NumForests(), 0u);
  EXPECT_EQ(cache.stats().forest_evictions, 1u);
}

TEST(RouteCacheTest, NonThreateningAdditionKeepsForest) {
  // Two disconnected tgds: U-facts can only reach V, never T, so a forest
  // whose nodes all live in T survives a U/V addition.
  Scenario s = ParseScenario(R"(
source schema { S(x); U(x); }
target schema { T(x); V(x); }
st1: S(x) -> T(x);
st2: U(x) -> V(x);
source instance { S(1); U(2); }
target instance { }
)");
  ChaseScenario(&s);
  RelationId t = s.mapping->target().Require("T");
  FactRef t1{Side::kTarget, t, *s.target->FindRow(t, Tuple({Value::Int(1)}))};
  RouteCache cache;
  FactKey key = TargetKeyOf(s, "T", Tuple({Value::Int(1)}));
  cache.PutForest(key,
                  ComputeAllRoutes(*s.mapping, *s.source, *s.target, {t1}));

  ApplyDeltaResult delta;
  delta.added.push_back(SourceKeyOf(s, "U", Tuple({Value::Int(3)})));
  delta.added.push_back(TargetKeyOf(s, "V", Tuple({Value::Int(3)})));
  cache.Invalidate(*s.mapping, delta);

  EXPECT_EQ(cache.NumForests(), 1u);
  EXPECT_EQ(cache.stats().forest_evictions, 0u);
}

TEST(RouteCacheTest, FullRechaseClearsEverything) {
  ClosureFixture f;
  RouteCache cache;
  FactKey key = TargetKeyOf(f.s, "T", Tuple({Value::Int(1), Value::Int(3)}));
  cache.PutRoute(key, f.route, RouteDependencies(*f.s.mapping, f.route));
  cache.PutForest(
      key, ComputeAllRoutes(*f.s.mapping, *f.s.source, *f.s.target, {f.t13}));

  ApplyDeltaResult delta;
  delta.full_rechase = true;
  cache.Invalidate(*f.s.mapping, delta);

  EXPECT_EQ(cache.NumRoutes(), 0u);
  EXPECT_EQ(cache.NumForests(), 0u);
  EXPECT_EQ(cache.stats().clears, 1u);
}

TEST(RouteCacheTest, PutReplacesExistingEntry) {
  ClosureFixture f;
  RouteCache cache;
  FactKey key = TargetKeyOf(f.s, "T", Tuple({Value::Int(1), Value::Int(3)}));
  cache.PutRoute(key, f.route, RouteDependencies(*f.s.mapping, f.route));
  cache.PutRoute(key, f.route, {});  // same key, no deps
  EXPECT_EQ(cache.NumRoutes(), 1u);

  // With no deps recorded, removals cannot evict it.
  ApplyDeltaResult delta;
  delta.removed.push_back(
      SourceKeyOf(f.s, "S", Tuple({Value::Int(2), Value::Int(3)})));
  cache.Invalidate(*f.s.mapping, delta);
  EXPECT_EQ(cache.NumRoutes(), 1u);
}

}  // namespace
}  // namespace spider
