// Unit tests for SourceDelta batches and the CSV delta loader.
#include <sstream>

#include <gtest/gtest.h>

#include "base/status.h"
#include "catalog/schema.h"
#include "incremental/source_delta.h"

namespace spider {
namespace {

Schema TwoRelationSchema() {
  Schema schema("source");
  schema.AddRelation("R", {"a", "b"});
  schema.AddRelation("Unary", {"x"});
  return schema;
}

TEST(SourceDeltaTest, KeepsOperationsInOrder) {
  SourceDelta delta;
  EXPECT_TRUE(delta.empty());
  delta.Insert("R", Tuple({Value::Int(1), Value::Int(2)}));
  delta.Delete("R", Tuple({Value::Int(3), Value::Int(4)}));
  delta.Insert("Unary", Tuple({Value::Str("x")}));

  EXPECT_FALSE(delta.empty());
  EXPECT_EQ(delta.size(), 3u);
  ASSERT_EQ(delta.inserts().size(), 2u);
  ASSERT_EQ(delta.deletes().size(), 1u);
  EXPECT_EQ(delta.inserts()[0].relation, "R");
  EXPECT_EQ(delta.inserts()[1].relation, "Unary");
  EXPECT_EQ(delta.deletes()[0].tuple,
            Tuple({Value::Int(3), Value::Int(4)}));
}

TEST(LoadDeltaCsvTest, LoadsInsertsAndDeletes) {
  Schema schema = TwoRelationSchema();
  SourceDelta delta;
  std::istringstream ins("1,2\n3,hello\n");
  EXPECT_EQ(LoadDeltaCsv(ins, "R", schema, DeltaKind::kInsert, &delta), 2u);
  std::istringstream dels("5,6\n");
  EXPECT_EQ(LoadDeltaCsv(dels, "R", schema, DeltaKind::kDelete, &delta), 1u);

  ASSERT_EQ(delta.inserts().size(), 2u);
  ASSERT_EQ(delta.deletes().size(), 1u);
  // Unquoted fields are type-inferred: ints stay ints.
  EXPECT_EQ(delta.inserts()[0].tuple, Tuple({Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(delta.inserts()[1].tuple,
            Tuple({Value::Int(3), Value::Str("hello")}));
  EXPECT_EQ(delta.deletes()[0].tuple, Tuple({Value::Int(5), Value::Int(6)}));
}

TEST(LoadDeltaCsvTest, QuotedFieldsSurviveCommasQuotesAndNewlines) {
  Schema schema = TwoRelationSchema();
  SourceDelta delta;
  std::istringstream in(
      "\"a,b\",\"say \"\"hi\"\"\"\n"
      "\"line1\nline2\",7\n");
  EXPECT_EQ(LoadDeltaCsv(in, "R", schema, DeltaKind::kInsert, &delta), 2u);
  EXPECT_EQ(delta.inserts()[0].tuple,
            Tuple({Value::Str("a,b"), Value::Str("say \"hi\"")}));
  EXPECT_EQ(delta.inserts()[1].tuple,
            Tuple({Value::Str("line1\nline2"), Value::Int(7)}));
}

TEST(LoadDeltaCsvTest, SkipsHeaderWhenAsked) {
  Schema schema = TwoRelationSchema();
  SourceDelta delta;
  CsvOptions options;
  options.skip_header = true;
  std::istringstream in("a,b\n1,2\n");
  EXPECT_EQ(
      LoadDeltaCsv(in, "R", schema, DeltaKind::kInsert, &delta, options), 1u);
  EXPECT_EQ(delta.inserts()[0].tuple, Tuple({Value::Int(1), Value::Int(2)}));
}

TEST(LoadDeltaCsvTest, RejectsUnknownRelationAndArityMismatch) {
  Schema schema = TwoRelationSchema();
  SourceDelta delta;
  std::istringstream in("1,2\n");
  EXPECT_THROW(
      LoadDeltaCsv(in, "Nope", schema, DeltaKind::kInsert, &delta),
      SpiderError);

  std::istringstream wide("1,2,3\n");
  EXPECT_THROW(LoadDeltaCsv(wide, "R", schema, DeltaKind::kInsert, &delta),
               SpiderError);
  // A throwing load leaves the delta untouched.
  EXPECT_TRUE(delta.empty());
}

}  // namespace
}  // namespace spider
