// Full-stack flows: parse text -> chase -> debug with routes.
#include <gtest/gtest.h>

#include "chase/chase.h"
#include "mapping/parser.h"
#include "debugger/debugger.h"
#include "routes/stratified.h"
#include "testing/fixtures.h"
#include "workload/real_scenarios.h"
#include "workload/relational_scenario.h"

namespace spider {
namespace {

TEST(EndToEndTest, ChaseThenDebugCreditCard) {
  // Use a chased solution (instead of the paper's hand-written J) and run
  // the Scenario 3 probe: the route must still be m2 -> m5. The Fargo Bank
  // tgd m3 is dropped so that the supplementary card holder has no account
  // and m5 must invent the null-numbered one (in the paper's J, which Clio
  // generated, that account exists alongside m3's — the standard chase only
  // creates it when no account satisfies m5).
  Scenario s = ParseScenario(R"(
source schema {
  Cards(cardNo, limit, ssn, name, maidenName, salary, location);
  SupplementaryCards(accNo, ssn, name, address);
}
target schema {
  Accounts(accNo, limit, accHolder);
  Clients(ssn, name, maidenName, income, address);
}
m1: Cards(cn,l,s,n,m,sal,loc) ->
      exists A . Accounts(cn,l,s) & Clients(s,m,m,sal,A);
m2: SupplementaryCards(an,s,n,a) -> exists M, I . Clients(s,n,M,I,a);
m4: Accounts(a,l,s) -> exists N, M, I, A2 . Clients(s,N,M,I,A2);
m5: Clients(s,n,m,i,a) -> exists N, L . Accounts(N,L,s);
source instance {
  Cards(6689, "15K", 434, "J. Long", "Smith", "50K", "Seattle");
  SupplementaryCards(6689, 234, "A. Long", "California");
}
)");
  ChaseScenario(&s);
  MappingDebugger debugger(&s);
  // The chase invents its own null for the supplementary card holder's
  // account; find the Accounts fact with a null accNo.
  RelationId accounts = s.mapping->target().Require("Accounts");
  FactRef probe;
  for (int32_t row = 0;
       row < static_cast<int32_t>(s.target->NumTuples(accounts)); ++row) {
    if (s.target->tuple(accounts, row).at(0).is_null()) {
      probe = FactRef{Side::kTarget, accounts, row};
    }
  }
  ASSERT_TRUE(probe.valid());
  OneRouteResult result = debugger.OneRoute({probe});
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.route.TgdNames(*s.mapping), "m2 -> m5");
}

TEST(EndToEndTest, RelationalScenarioProbesAcrossGroups) {
  RelationalScenarioOptions options;
  options.joins = 1;
  options.groups = 4;
  options.sizes.units = 2;
  Scenario s = BuildRelationalScenario(options);
  ChaseScenario(&s);
  MappingDebugger debugger(&s);
  for (int group = 1; group <= 4; ++group) {
    std::vector<FactRef> facts = SelectGroupFacts(s, group, 3, group);
    OneRouteResult result = debugger.OneRoute(facts);
    ASSERT_TRUE(result.found) << "group " << group;
    StratifiedInterpretation strat =
        Stratify(result.route, *s.mapping, *s.source, *s.target);
    // The M/T factor of the deepest selected fact bounds the route rank.
    EXPECT_EQ(strat.rank(), static_cast<size_t>(group));
  }
}

TEST(EndToEndTest, DblpProbeAndPlayback) {
  RealScenarioOptions options;
  options.units = 2;
  Scenario s = BuildDblpScenario(options);
  ChaseScenario(&s);
  MappingDebugger debugger(&s);
  // Probe a citation stub: ACitation rows reference publications that only
  // exist as null-padded stubs created by the FK tgds f12/f13.
  RelationId cites = s.mapping->target().Require("ACitation");
  ASSERT_GT(s.target->NumTuples(cites), 0u);
  FactRef probe{Side::kTarget, cites, 0};
  OneRouteResult result = debugger.OneRoute({probe});
  ASSERT_TRUE(result.found);
  RoutePlayer player = debugger.Play(result.route);
  size_t steps = 0;
  while (player.Step()) ++steps;
  EXPECT_EQ(steps, result.route.size());
  EXPECT_GE(player.produced().size(), 1u);
}

TEST(EndToEndTest, SourceProbeOnRelationalScenario) {
  RelationalScenarioOptions options;
  options.joins = 0;
  options.groups = 2;
  options.sizes.units = 1;
  Scenario s = BuildRelationalScenario(options);
  ChaseScenario(&s);
  MappingDebugger debugger(&s);
  FactRef region0{Side::kSource, s.mapping->source().Require("Region0"), 0};
  ConsequenceForest forest = debugger.SourceConsequences({region0});
  // Region0 row flows into Region1 then Region2.
  EXPECT_EQ(forest.DerivedFacts().size(), 2u);
}

}  // namespace
}  // namespace spider
