// Oracle property tests: the chase output must verify as a solution, be
// homomorphically equivalent across every evaluator configuration and
// thread count, and every route the algorithms produce must validate and
// replay through the debugger's route player. Run on curated workload
// scenarios plus a batch of random ones.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "chase/homomorphism.h"
#include "chase/solution_check.h"
#include "debugger/route_player.h"
#include "mapping/scenario.h"
#include "routes/one_route.h"
#include "routes/route_forest.h"
#include "testing/fixtures.h"
#include "workload/random_scenario.h"
#include "workload/relational_scenario.h"

namespace spider {
namespace {

/// Chase variants that must all produce equivalent universal solutions.
std::vector<ChaseOptions> ChaseVariants() {
  std::vector<ChaseOptions> variants;
  ChaseOptions base;
  variants.push_back(base);

  ChaseOptions no_indexes = base;
  no_indexes.eval.use_indexes = false;
  variants.push_back(no_indexes);

  ChaseOptions no_reorder = base;
  no_reorder.eval.reorder_atoms = false;
  variants.push_back(no_reorder);

  ChaseOptions bound_count = base;
  bound_count.eval.planner = PlannerMode::kBoundCount;
  variants.push_back(bound_count);

  ChaseOptions tuple_mode = base;
  tuple_mode.eval.exec = ExecMode::kTupleAtATime;
  variants.push_back(tuple_mode);

  // Both exec modes at every thread count the bench matrix uses (1/2/8).
  for (int threads : {2, 8}) {
    ChaseOptions threaded = base;
    threaded.exec.num_threads = threads;
    variants.push_back(threaded);

    ChaseOptions threaded_tuple = tuple_mode;
    threaded_tuple.exec.num_threads = threads;
    variants.push_back(threaded_tuple);
  }
  return variants;
}

/// A handful of probe facts: the first and last tuple of every nonempty
/// target relation, capped to keep the route computations fast.
std::vector<FactRef> ProbeFacts(const Instance& target, size_t cap = 6) {
  std::vector<FactRef> facts;
  for (size_t r = 0; r < target.NumRelations() && facts.size() < cap; ++r) {
    RelationId rel = static_cast<RelationId>(r);
    size_t n = target.NumTuples(rel);
    if (n == 0) continue;
    facts.push_back(FactRef{Side::kTarget, rel, 0});
    if (n > 1 && facts.size() < cap) {
      facts.push_back(
          FactRef{Side::kTarget, rel, static_cast<int32_t>(n - 1)});
    }
  }
  return facts;
}

void ReplayRoute(const Route& route, const Scenario& scenario,
                 const Instance& target, const FactRef& fact,
                 const std::string& what) {
  RenderContext ctx{scenario.mapping.get(), scenario.source.get(), &target,
                    &scenario.null_names};
  RoutePlayer player(route, ctx, {});
  size_t steps = 0;
  while (player.Step()) ++steps;
  EXPECT_EQ(route.size(), steps) << what << ": player stopped early";
  EXPECT_TRUE(player.done()) << what;
  bool produced = false;
  for (const FactRef& f : player.produced()) {
    if (f == fact) {
      produced = true;
      break;
    }
  }
  EXPECT_TRUE(produced) << what << ": replay never produced the probed fact";
}

void CheckScenario(Scenario scenario, const std::string& label) {
  const SchemaMapping& mapping = *scenario.mapping;

  // Chase oracle: every variant agrees on the outcome; successful outputs
  // are solutions and are homomorphically equivalent (all universal).
  std::vector<ChaseOptions> variants = ChaseVariants();
  ChaseResult reference = Chase(mapping, *scenario.source, variants[0]);
  for (size_t v = 1; v < variants.size(); ++v) {
    ChaseResult other = Chase(mapping, *scenario.source, variants[v]);
    ASSERT_EQ(static_cast<int>(reference.outcome),
              static_cast<int>(other.outcome))
        << label << ": chase variant " << v << " changed the outcome";
    if (reference.outcome != ChaseOutcome::kSuccess) continue;
    EXPECT_TRUE(HomomorphicallyEquivalent(*reference.target, *other.target))
        << label << ": chase variant " << v
        << " produced an inequivalent solution";
  }
  if (reference.outcome != ChaseOutcome::kSuccess) return;
  const Instance& target = *reference.target;

  std::string why;
  EXPECT_TRUE(IsSolution(mapping, *scenario.source, target, &why))
      << label << ": chase output is not a solution: " << why;

  // Route oracles. Every chase-produced fact must have a route
  // (Theorem 3.10: ComputeOneRoute finds one iff one exists; here the chase
  // itself is a witness when no egd rewrote the instance).
  std::vector<FactRef> facts = ProbeFacts(target);
  const bool routes_guaranteed = mapping.NumEgds() == 0;
  for (const FactRef& fact : facts) {
    OneRouteResult one =
        ComputeOneRoute(mapping, *scenario.source, target, {fact});
    if (routes_guaranteed) {
      EXPECT_TRUE(one.found)
          << label << ": no route for a chase-produced fact";
    }
    if (!one.found) continue;
    EXPECT_TRUE(one.route.Validate(mapping, *scenario.source, target, {fact},
                                   &why))
        << label << ": invalid route: " << why;
    ReplayRoute(one.route, scenario, target, fact, label + "/one-route");
  }

  // The route forest is byte-identical across thread counts (1/2/8) and
  // across batched vs tuple-at-a-time findHom execution.
  if (!facts.empty()) {
    RouteOptions seq;
    RouteForest forest =
        ComputeAllRoutes(mapping, *scenario.source, target, facts, seq);
    for (int threads : {2, 8}) {
      RouteOptions par;
      par.exec.num_threads = threads;
      RouteForest forest_par =
          ComputeAllRoutes(mapping, *scenario.source, target, facts, par);
      EXPECT_TRUE(forest.stats() == forest_par.stats())
          << label << ": forest stats differ at " << threads << " threads";
      EXPECT_EQ(forest.ToString(), forest_par.ToString())
          << label << ": forest differs at " << threads << " threads";

      RouteOptions par_tuple = par;
      par_tuple.eval.exec = ExecMode::kTupleAtATime;
      RouteForest forest_tuple =
          ComputeAllRoutes(mapping, *scenario.source, target, facts,
                           par_tuple);
      EXPECT_EQ(forest.ToString(), forest_tuple.ToString())
          << label << ": forest differs under tuple-at-a-time findHom at "
          << threads << " threads";
    }
  }
}

TEST(OracleProperty, CreditCardScenario) {
  CheckScenario(testing::CreditCardScenario(), "creditcard");
}

TEST(OracleProperty, Example35Scenario) {
  CheckScenario(ParseScenario(testing::Example35Text(/*extended=*/true)),
                "example35");
}

TEST(OracleProperty, TransitiveClosure) {
  CheckScenario(ParseScenario(testing::TransitiveClosureText()), "tc");
}

TEST(OracleProperty, RelationalScenario) {
  // Deliberately tiny: the homomorphism-equivalence oracle solves a
  // conjunctive query with one atom per target tuple, which grows very
  // costly past a few hundred tuples.
  RelationalScenarioOptions options;
  options.joins = 1;
  options.groups = 2;
  options.sizes.units = 8;
  CheckScenario(BuildRelationalScenario(options), "relational");
}

TEST(OracleProperty, RandomScenarios) {
  for (uint64_t seed = 0; seed < 60; ++seed) {
    RandomScenarioOptions options;
    options.seed = seed;
    options.source_relations = 2 + static_cast<int>(seed % 3);
    options.target_relations = 2 + static_cast<int>(seed % 3);
    options.max_arity = 2 + static_cast<int>(seed % 2);
    options.st_tgds = 2 + static_cast<int>(seed % 2);
    options.target_tgds = 1 + static_cast<int>(seed % 2);
    options.egds = static_cast<int>(seed % 3 == 0);
    options.rows_per_relation = 5 + static_cast<int>(seed % 6);
    options.fanout = 2 + static_cast<int>(seed % 4);
    CheckScenario(BuildRandomScenario(options),
                  "random-" + std::to_string(seed));
    if (::testing::Test::HasFailure()) break;
  }
}

}  // namespace
}  // namespace spider
