// Property-based tests: the paper's theorems checked over families of
// scenarios (randomized mappings/instances are deterministic per seed).
#include <algorithm>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "chase/solution_check.h"
#include "mapping/parser.h"
#include "routes/fact_util.h"
#include "provenance/annotated_chase.h"
#include "provenance/explain.h"
#include "routes/alternatives.h"
#include "routes/naive_print.h"
#include "routes/one_route.h"
#include "routes/route_forest.h"
#include "routes/source_routes.h"
#include "routes/stratified.h"
#include "testing/fixtures.h"
#include "workload/rng.h"

namespace spider {
namespace {

/// Builds a random small scenario: K unary/binary target relations, chains
/// of tgds with joins and existentials, then chases a random source
/// instance. Everything is deterministic in `seed`.
Scenario RandomScenario(uint64_t seed) {
  Rng rng(seed);
  std::ostringstream text;
  const int source_rels = 2 + static_cast<int>(rng.Below(2));   // 2..3
  const int target_rels = 3 + static_cast<int>(rng.Below(3));   // 3..5
  text << "source schema { ";
  for (int i = 0; i < source_rels; ++i) {
    text << "S" << i << "(a, b); ";
  }
  text << "}\ntarget schema { ";
  for (int i = 0; i < target_rels; ++i) {
    text << "T" << i << "(a, b); ";
  }
  text << "}\n";
  // One s-t tgd per source relation into a random target relation,
  // sometimes with an existential.
  for (int i = 0; i < source_rels; ++i) {
    int dst = static_cast<int>(rng.Below(target_rels));
    if (rng.Below(3) == 0) {
      text << "st" << i << ": S" << i << "(x, y) -> exists Z . T" << dst
           << "(x, Z);\n";
    } else {
      text << "st" << i << ": S" << i << "(x, y) -> T" << dst << "(x, y);\n";
    }
  }
  // A few target tgds: copies, swaps, joins between consecutive relations.
  int num_tt = 2 + static_cast<int>(rng.Below(3));
  for (int i = 0; i < num_tt; ++i) {
    int a = static_cast<int>(rng.Below(target_rels));
    int b = static_cast<int>(rng.Below(target_rels));
    switch (rng.Below(3)) {
      case 0:
        text << "tt" << i << ": T" << a << "(x, y) -> T" << b << "(y, x);\n";
        break;
      case 1:
        text << "tt" << i << ": T" << a << "(x, y) & T" << b
             << "(y, z) -> T" << a << "(x, z);\n";
        break;
      default:
        text << "tt" << i << ": T" << a << "(x, y) -> T" << b << "(x, y);\n";
        break;
    }
  }
  // Random source data over a tiny domain so joins actually meet.
  text << "source instance {\n";
  for (int i = 0; i < source_rels; ++i) {
    int rows = 2 + static_cast<int>(rng.Below(3));
    for (int r = 0; r < rows; ++r) {
      text << "  S" << i << "(" << rng.Below(4) << ", " << rng.Below(4)
           << ");\n";
    }
  }
  text << "}\n";
  Scenario scenario = ParseScenario(text.str());
  ChaseScenario(&scenario);
  return scenario;
}

std::vector<FactRef> AllTargetFacts(const Scenario& s) {
  std::vector<FactRef> facts;
  for (size_t r = 0; r < s.target->NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    for (int32_t row = 0;
         row < static_cast<int32_t>(s.target->NumTuples(rel)); ++row) {
      facts.push_back(FactRef{Side::kTarget, rel, row});
    }
  }
  return facts;
}

class RouteProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RouteProperties, ChaseProducesSolutions) {
  Scenario s = RandomScenario(GetParam());
  std::string why;
  EXPECT_TRUE(IsSolution(*s.mapping, *s.source, *s.target, &why)) << why;
}

TEST_P(RouteProperties, EveryChasedFactHasARouteAndItValidates) {
  // Chase-produced facts always have routes (the chase steps themselves
  // form routes); ComputeOneRoute must find one, and it must replay
  // (Theorem 3.10 + Definition 3.3).
  Scenario s = RandomScenario(GetParam());
  for (const FactRef& fact : AllTargetFacts(s)) {
    OneRouteResult result =
        ComputeOneRoute(*s.mapping, *s.source, *s.target, {fact});
    ASSERT_TRUE(result.found)
        << FactToString(fact, *s.source, *s.target) << " seed " << GetParam();
    std::string why;
    EXPECT_TRUE(
        result.route.Validate(*s.mapping, *s.source, *s.target, {fact}, &why))
        << why;
  }
}

TEST_P(RouteProperties, OneRouteAgreesWithForestReachability) {
  // ComputeOneRoute succeeds exactly when NaivePrint emits at least one
  // route from the (complete) forest.
  Scenario s = RandomScenario(GetParam());
  for (const FactRef& fact : AllTargetFacts(s)) {
    OneRouteResult one =
        ComputeOneRoute(*s.mapping, *s.source, *s.target, {fact});
    RouteForest forest =
        ComputeAllRoutes(*s.mapping, *s.source, *s.target, {fact});
    NaivePrintOptions opts;
    opts.max_routes = 1;  // existence check
    NaivePrintResult printed = NaivePrint(&forest, {fact}, opts);
    EXPECT_EQ(one.found, !printed.routes.empty() || printed.truncated)
        << FactToString(fact, *s.source, *s.target) << " seed " << GetParam();
  }
}

TEST_P(RouteProperties, NaivePrintRoutesAllValidate) {
  Scenario s = RandomScenario(GetParam());
  std::vector<FactRef> facts = AllTargetFacts(s);
  if (facts.empty()) return;
  std::vector<FactRef> js = {facts[facts.size() / 2]};
  RouteForest forest = ComputeAllRoutes(*s.mapping, *s.source, *s.target, js);
  NaivePrintOptions opts;
  opts.max_routes = 64;
  for (const Route& route : NaivePrint(&forest, js, opts).routes) {
    std::string why;
    EXPECT_TRUE(route.Validate(*s.mapping, *s.source, *s.target, js, &why))
        << why << " seed " << GetParam();
  }
}

TEST_P(RouteProperties, ForestIsPolynomiallySmall) {
  // Node count <= |J|; branch count <= nodes * sum over tgds of possible
  // assignments — here simply checked against a generous polynomial bound.
  Scenario s = RandomScenario(GetParam());
  std::vector<FactRef> facts = AllTargetFacts(s);
  if (facts.empty()) return;
  RouteForest forest =
      ComputeAllRoutes(*s.mapping, *s.source, *s.target, facts);
  size_t j = s.target->TotalTuples();
  size_t i = s.source->TotalTuples();
  EXPECT_LE(forest.NumNodes(), j);
  EXPECT_LE(forest.NumBranches(),
            j * s.mapping->NumTgds() * (i + j) * (i + j));
}

TEST_P(RouteProperties, MinimizedRoutesAreMinimalAndStratEquivalent) {
  // Theorem 3.7 (operational form): minimizing any printed route yields a
  // minimal route whose strat equals the strat of some printed route.
  Scenario s = RandomScenario(GetParam());
  std::vector<FactRef> facts = AllTargetFacts(s);
  if (facts.empty()) return;
  std::vector<FactRef> js = {facts[0]};
  RouteForest forest = ComputeAllRoutes(*s.mapping, *s.source, *s.target, js);
  NaivePrintOptions opts;
  opts.max_routes = 32;
  NaivePrintResult printed = NaivePrint(&forest, js, opts);
  for (const Route& route : printed.routes) {
    Route minimal = route.Minimize(*s.mapping, *s.source, *s.target, js);
    EXPECT_TRUE(minimal.IsMinimal(*s.mapping, *s.source, *s.target, js));
    StratifiedInterpretation mstrat =
        Stratify(minimal, *s.mapping, *s.source, *s.target);
    // The minimal route's steps are a subset of the original's.
    std::set<std::pair<TgdId, Binding>> orig;
    for (const SatStep& step : route.steps()) {
      orig.insert({step.tgd, step.h});
    }
    for (const SatStep& step : minimal.steps()) {
      EXPECT_TRUE(orig.count({step.tgd, step.h}) > 0);
    }
    EXPECT_GE(mstrat.rank(), 1u);
  }
}

TEST_P(RouteProperties, OptimizationTogglesAgree) {
  Scenario s = RandomScenario(GetParam());
  RouteOptions no_opt;
  no_opt.propagate_rhs_proven = false;
  RouteOptions eager;
  eager.eager_findhom = true;
  for (const FactRef& fact : AllTargetFacts(s)) {
    bool base =
        ComputeOneRoute(*s.mapping, *s.source, *s.target, {fact}).found;
    EXPECT_EQ(
        base,
        ComputeOneRoute(*s.mapping, *s.source, *s.target, {fact}, no_opt)
            .found);
    EXPECT_EQ(
        base,
        ComputeOneRoute(*s.mapping, *s.source, *s.target, {fact}, eager)
            .found);
  }
}

TEST_P(RouteProperties, EvaluatorKnobsDoNotChangeRouteExistence) {
  Scenario s = RandomScenario(GetParam());
  RouteOptions plain;
  plain.eval.use_indexes = false;
  plain.eval.reorder_atoms = false;
  for (const FactRef& fact : AllTargetFacts(s)) {
    EXPECT_EQ(
        ComputeOneRoute(*s.mapping, *s.source, *s.target, {fact}).found,
        ComputeOneRoute(*s.mapping, *s.source, *s.target, {fact}, plain)
            .found);
  }
}

TEST_P(RouteProperties, SourceConsequenceRoutesValidate) {
  // Every fact derived by the forward consequence search has an extractable
  // route that replays, and every derived fact is genuinely in J.
  Scenario s = RandomScenario(GetParam());
  std::vector<FactRef> selected;
  for (size_t r = 0; r < s.source->NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    if (s.source->NumTuples(rel) > 0) {
      selected.push_back(FactRef{Side::kSource, rel, 0});
    }
  }
  if (selected.empty()) return;
  ConsequenceForest forest = ComputeSourceConsequences(
      *s.mapping, *s.source, *s.target, selected);
  for (const FactRef& fact : forest.DerivedFacts()) {
    Route route = forest.RouteFor(fact, *s.mapping, *s.source, *s.target);
    std::string why;
    EXPECT_TRUE(route.Validate(*s.mapping, *s.source, *s.target, {fact},
                               &why))
        << why << " seed " << GetParam();
  }
}

TEST_P(RouteProperties, EnumeratorAgreesWithOneRouteOnExistence) {
  Scenario s = RandomScenario(GetParam());
  std::vector<FactRef> facts = AllTargetFacts(s);
  if (facts.empty()) return;
  std::vector<FactRef> js = {facts[facts.size() - 1]};
  RouteEnumerator en(*s.mapping, *s.source, *s.target, js);
  bool has_route = en.Next().has_value();
  EXPECT_EQ(has_route,
            ComputeOneRoute(*s.mapping, *s.source, *s.target, js).found);
}

TEST_P(RouteProperties, EnumeratedRoutesDistinctAndValid) {
  Scenario s = RandomScenario(GetParam());
  std::vector<FactRef> facts = AllTargetFacts(s);
  if (facts.empty()) return;
  std::vector<FactRef> js = {facts[0]};
  RouteEnumerator en(*s.mapping, *s.source, *s.target, js);
  std::vector<Route> seen;
  size_t count = 0;
  while (auto route = en.Next()) {
    EXPECT_TRUE(route->Validate(*s.mapping, *s.source, *s.target, js));
    for (const Route& prev : seen) {
      EXPECT_NE(prev.steps(), route->steps());
    }
    seen.push_back(*route);
    if (++count >= 16) break;  // bound the check
  }
}

TEST_P(RouteProperties, EagerExplanationsValidateEverywhere) {
  // AnnotatedChase + ExplainFact on random (egd-free) scenarios: every
  // live fact's extended route replays against the source.
  Scenario s = RandomScenario(GetParam());
  AnnotatedChaseResult result = AnnotatedChase(*s.mapping, *s.source);
  ASSERT_EQ(result.outcome, AnnotatedChaseOutcome::kSuccess);
  for (size_t f = 0; f < result.log.NumFacts(); ++f) {
    auto id = static_cast<AnnotatedChaseLog::ProvFactId>(f);
    ExtendedRoute route = ExplainFact(result.log, id, *s.mapping);
    std::string why;
    EXPECT_TRUE(route.Validate(*s.mapping, *s.source,
                               {{result.log.relation(id),
                                 result.log.tuple(id)}},
                               &why))
        << why << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouteProperties,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

// Exhaustive Theorem 3.7 check on the paper's Example 3.5 (extended): every
// minimal step-SET (computed by brute force over subsets of all candidate
// steps) matches the step set of some NaivePrint route.
TEST(Theorem37Test, EveryMinimalRouteRepresentedInForest) {
  Scenario s = ParseScenario(testing::Example35Text(true, 1));
  FactRef t7 = RequireTargetFact(*s.target, "T7", Tuple({Value::Str("a")}));
  std::vector<FactRef> js = {t7};

  // Candidate steps: every (tgd, h) over every target fact.
  std::vector<SatStep> candidates;
  std::set<std::pair<TgdId, Binding>> seen;
  RouteForest full =
      ComputeAllRoutes(*s.mapping, *s.source, *s.target, AllTargetFacts(s));
  for (size_t r = 0; r < s.target->NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    for (int32_t row = 0;
         row < static_cast<int32_t>(s.target->NumTuples(rel)); ++row) {
      const RouteForest::Node* node =
          full.Find(FactRef{Side::kTarget, rel, row});
      if (node == nullptr) continue;
      for (const RouteForest::Branch& b : node->branches) {
        if (seen.insert({b.tgd, b.h}).second) {
          candidates.push_back(SatStep{b.tgd, b.h});
        }
      }
    }
  }
  ASSERT_LE(candidates.size(), 16u) << "brute force would explode";

  // A step set is routable if some ordering forms a valid route for js:
  // greedily apply any step whose LHS is available; all steps must apply
  // and t7 must be produced.
  auto routable = [&](const std::vector<SatStep>& steps) {
    std::vector<bool> used(steps.size(), false);
    std::vector<SatStep> ordered;
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t i = 0; i < steps.size(); ++i) {
        if (used[i]) continue;
        std::vector<SatStep> attempt = ordered;
        attempt.push_back(steps[i]);
        // Valid prefix: every LHS fact available in order.
        if (Route(attempt).Validate(*s.mapping, *s.source, *s.target, {})) {
          ordered = std::move(attempt);
          used[i] = true;
          progress = true;
        }
      }
    }
    if (ordered.size() != steps.size()) return false;
    return Route(ordered).Validate(*s.mapping, *s.source, *s.target, js);
  };

  // Enumerate all subsets; collect minimal routable step sets.
  std::vector<std::set<size_t>> minimal_sets;
  size_t n = candidates.size();
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    std::vector<SatStep> subset;
    std::set<size_t> indices;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) {
        subset.push_back(candidates[i]);
        indices.insert(i);
      }
    }
    if (!routable(subset)) continue;
    bool is_minimal = true;
    for (const std::set<size_t>& other : minimal_sets) {
      if (std::includes(indices.begin(), indices.end(), other.begin(),
                        other.end())) {
        is_minimal = false;
        break;
      }
    }
    if (is_minimal) {
      // Remove any previously found supersets (enumeration order by mask
      // does not imply subset order).
      minimal_sets.erase(
          std::remove_if(minimal_sets.begin(), minimal_sets.end(),
                         [&](const std::set<size_t>& other) {
                           return std::includes(other.begin(), other.end(),
                                                indices.begin(),
                                                indices.end());
                         }),
          minimal_sets.end());
      minimal_sets.push_back(indices);
    }
  }
  ASSERT_FALSE(minimal_sets.empty());

  // NaivePrint routes, as step sets.
  RouteForest forest = ComputeAllRoutes(*s.mapping, *s.source, *s.target, js);
  NaivePrintOptions opts;
  opts.max_routes = 4096;
  NaivePrintResult printed = NaivePrint(&forest, js, opts);
  ASSERT_FALSE(printed.truncated);
  std::vector<std::set<std::pair<TgdId, Binding>>> printed_sets;
  for (const Route& route : printed.routes) {
    std::set<std::pair<TgdId, Binding>> set;
    for (const SatStep& step : route.steps()) set.insert({step.tgd, step.h});
    printed_sets.push_back(std::move(set));
  }
  for (const std::set<size_t>& indices : minimal_sets) {
    std::set<std::pair<TgdId, Binding>> want;
    for (size_t i : indices) want.insert({candidates[i].tgd, candidates[i].h});
    bool found = false;
    for (const auto& have : printed_sets) {
      if (have == want) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "a minimal route's step set is missing from "
                          "NaivePrint (Theorem 3.7 violation)";
  }
}

}  // namespace
}  // namespace spider
