// Properties of the serialization, core, and certain-answer companions
// over randomized scenarios (shares the generator with property_test.cc in
// spirit; regenerated locally to keep the files self-contained).
#include <sstream>

#include <gtest/gtest.h>

#include "chase/certain_answers.h"
#include "chase/chase.h"
#include "chase/core.h"
#include "chase/homomorphism.h"
#include "chase/solution_check.h"
#include "mapping/parser.h"
#include "mapping/writer.h"
#include "workload/rng.h"

namespace spider {
namespace {

Scenario RandomScenario(uint64_t seed) {
  Rng rng(seed);
  std::ostringstream text;
  const int source_rels = 2;
  const int target_rels = 3;
  text << "source schema { ";
  for (int i = 0; i < source_rels; ++i) text << "S" << i << "(a, b); ";
  text << "}\ntarget schema { ";
  for (int i = 0; i < target_rels; ++i) text << "T" << i << "(a, b); ";
  text << "}\n";
  for (int i = 0; i < source_rels; ++i) {
    int dst = static_cast<int>(rng.Below(target_rels));
    if (rng.Below(2) == 0) {
      text << "st" << i << ": S" << i << "(x, y) -> exists Z . T" << dst
           << "(x, Z);\n";
    } else {
      text << "st" << i << ": S" << i << "(x, y) -> T" << dst << "(x, y);\n";
    }
  }
  text << "tt0: T0(x, y) -> T1(y, x);\n";
  text << "tt1: T1(x, y) & T2(y, z) -> T0(x, z);\n";
  text << "source instance {\n";
  for (int i = 0; i < source_rels; ++i) {
    int rows = 2 + static_cast<int>(rng.Below(3));
    for (int r = 0; r < rows; ++r) {
      text << "  S" << i << "(" << rng.Below(3) << ", " << rng.Below(3)
           << ");\n";
    }
  }
  text << "}\n";
  Scenario scenario = ParseScenario(text.str());
  ChaseScenario(&scenario);
  return scenario;
}

class CompanionProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompanionProperties, WriterRoundTripPreservesEverything) {
  Scenario s = RandomScenario(GetParam());
  Scenario reparsed = ParseScenario(WriteScenario(s));
  EXPECT_EQ(reparsed.mapping->NumTgds(), s.mapping->NumTgds());
  EXPECT_EQ(reparsed.source->TotalTuples(), s.source->TotalTuples());
  EXPECT_EQ(reparsed.target->TotalTuples(), s.target->TotalTuples());
  EXPECT_TRUE(HomomorphicallyEquivalent(*reparsed.target, *s.target));
  // The reparsed pair still satisfies the mapping.
  std::string why;
  EXPECT_TRUE(IsSolution(*reparsed.mapping, *reparsed.source,
                         *reparsed.target, &why))
      << why << " seed " << GetParam();
}

TEST_P(CompanionProperties, CoreIsEquivalentMinimalAndIdempotent) {
  Scenario s = RandomScenario(GetParam());
  CoreResult core = ComputeCore(*s.target);
  ASSERT_TRUE(core.complete);
  EXPECT_LE(core.core->TotalTuples(), s.target->TotalTuples());
  EXPECT_TRUE(HomomorphicallyEquivalent(*s.target, *core.core));
  // Idempotent: the core of the core removes nothing.
  CoreResult again = ComputeCore(*core.core);
  EXPECT_EQ(again.facts_removed, 0u);
  // No remaining null-carrying fact is redundant.
  for (size_t r = 0; r < core.core->NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    for (int32_t row = 0;
         row < static_cast<int32_t>(core.core->NumTuples(rel)); ++row) {
      EXPECT_FALSE(
          IsRedundantFact(*core.core, FactRef{Side::kTarget, rel, row}));
    }
  }
}

TEST_P(CompanionProperties, CoreIsStillASolution) {
  // The core of a universal solution is a (universal) solution.
  Scenario s = RandomScenario(GetParam());
  CoreResult core = ComputeCore(*s.target);
  std::string why;
  EXPECT_TRUE(IsSolution(*s.mapping, *s.source, *core.core, &why))
      << why << " seed " << GetParam();
}

TEST_P(CompanionProperties, CertainAnswersInvariantUnderCore) {
  // Naive evaluation over any universal solution gives the same certain
  // answers; in particular J and core(J) agree.
  Scenario s = RandomScenario(GetParam());
  CoreResult core = ComputeCore(*s.target);
  for (size_t r = 0; r < s.target->NumRelations(); ++r) {
    Atom atom;
    atom.relation = static_cast<RelationId>(r);
    atom.terms = {Term::Var(0), Term::Var(1)};
    std::vector<Tuple> from_j =
        CertainAnswers(*s.target, {atom}, {0, 1}, 2);
    std::vector<Tuple> from_core =
        CertainAnswers(*core.core, {atom}, {0, 1}, 2);
    std::sort(from_j.begin(), from_j.end());
    std::sort(from_core.begin(), from_core.end());
    EXPECT_EQ(from_j, from_core) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompanionProperties,
                         ::testing::Range(uint64_t{100}, uint64_t{120}));

}  // namespace
}  // namespace spider
