#include "mapping/dependency.h"

#include <gtest/gtest.h>

#include "base/status.h"
#include "mapping/schema_mapping.h"

namespace spider {
namespace {

Atom MakeAtom(RelationId rel, std::vector<Term> terms) {
  Atom atom;
  atom.relation = rel;
  atom.terms = std::move(terms);
  return atom;
}

class DependencyTest : public ::testing::Test {
 protected:
  DependencyTest() {
    Schema source("source");
    source.AddRelation("R", {"a", "b"});
    Schema target("target");
    target.AddRelation("T", {"u", "v"});
    target.AddRelation("U", {"w"});
    mapping_ = std::make_unique<SchemaMapping>(std::move(source),
                                               std::move(target));
  }
  std::unique_ptr<SchemaMapping> mapping_;
};

TEST_F(DependencyTest, UniversalAndExistentialVars) {
  Tgd tgd("m", {"x", "y", "z"},
          {MakeAtom(0, {Term::Var(0), Term::Var(1)})},
          {MakeAtom(0, {Term::Var(0), Term::Var(2)})},
          /*source_to_target=*/true);
  EXPECT_TRUE(tgd.IsUniversal(0));
  EXPECT_TRUE(tgd.IsUniversal(1));
  EXPECT_FALSE(tgd.IsUniversal(2));
  EXPECT_EQ(tgd.UniversalVars(), (std::vector<VarId>{0, 1}));
  EXPECT_EQ(tgd.ExistentialVars(), (std::vector<VarId>{2}));
}

TEST_F(DependencyTest, EmptySidesRejected) {
  EXPECT_THROW(
      Tgd("m", {"x"}, {}, {MakeAtom(0, {Term::Var(0), Term::Var(0)})}, true),
      SpiderError);
  EXPECT_THROW(
      Tgd("m", {"x"}, {MakeAtom(0, {Term::Var(0), Term::Var(0)})}, {}, true),
      SpiderError);
}

TEST_F(DependencyTest, VarIdOutOfRangeRejected) {
  EXPECT_THROW(Tgd("m", {"x"}, {MakeAtom(0, {Term::Var(0), Term::Var(5)})},
                   {MakeAtom(0, {Term::Var(0), Term::Var(0)})}, true),
               SpiderError);
}

TEST_F(DependencyTest, AddTgdValidatesArity) {
  // R has arity 2 in the source; a 1-term atom must be rejected.
  Tgd bad("m", {"x"}, {MakeAtom(0, {Term::Var(0)})},
          {MakeAtom(1, {Term::Var(0)})}, true);
  EXPECT_THROW(mapping_->AddTgd(std::move(bad)), SpiderError);
}

TEST_F(DependencyTest, AddTgdValidatesRelationRange) {
  Tgd bad("m", {"x"}, {MakeAtom(7, {Term::Var(0)})},
          {MakeAtom(1, {Term::Var(0)})}, true);
  EXPECT_THROW(mapping_->AddTgd(std::move(bad)), SpiderError);
}

TEST_F(DependencyTest, EgdRequiresVarsInLhs) {
  EXPECT_THROW(
      Egd("e", {"x", "y", "z"}, {MakeAtom(0, {Term::Var(0), Term::Var(1)})},
          0, 2),
      SpiderError);
  EXPECT_THROW(
      Egd("e", {"x"}, {MakeAtom(1, {Term::Var(0)})}, 0, 0),
      SpiderError);
}

TEST_F(DependencyTest, TgdIdsPartitionedBySide) {
  mapping_->AddTgd(Tgd("st", {"x", "y"},
                       {MakeAtom(0, {Term::Var(0), Term::Var(1)})},
                       {MakeAtom(0, {Term::Var(0), Term::Var(1)})}, true));
  mapping_->AddTgd(Tgd("tt", {"x", "y"},
                       {MakeAtom(0, {Term::Var(0), Term::Var(1)})},
                       {MakeAtom(1, {Term::Var(0)})}, false));
  EXPECT_EQ(mapping_->st_tgds(), (std::vector<TgdId>{0}));
  EXPECT_EQ(mapping_->target_tgds(), (std::vector<TgdId>{1}));
  EXPECT_EQ(mapping_->FindTgd("tt"), 1);
  EXPECT_EQ(mapping_->FindTgd("none"), -1);
}

TEST_F(DependencyTest, ToStringShowsQuantifiers) {
  Tgd tgd("m", {"x", "y", "Z"},
          {MakeAtom(0, {Term::Var(0), Term::Var(1)})},
          {MakeAtom(0, {Term::Var(0), Term::Var(2)})}, true);
  std::string str = tgd.ToString(mapping_->source(), mapping_->target());
  EXPECT_NE(str.find("exists Z"), std::string::npos);
  EXPECT_NE(str.find("R(x, y)"), std::string::npos);
  EXPECT_NE(str.find("T(x, Z)"), std::string::npos);
}

}  // namespace
}  // namespace spider
