// Robustness: malformed input must fail with SpiderError (never crash,
// never accept silently). Inputs are mutations of a valid scenario.
#include <gtest/gtest.h>

#include "base/status.h"
#include "mapping/parser.h"
#include "testing/fixtures.h"
#include "workload/rng.h"

namespace spider {
namespace {

TEST(ParserRobustnessTest, TruncationsNeverCrash) {
  std::string text = testing::CreditCardScenarioText();
  // Parsing any prefix either succeeds or throws SpiderError.
  for (size_t len = 0; len <= text.size(); len += 17) {
    std::string prefix = text.substr(0, len);
    try {
      Scenario s = ParseScenario(prefix);
      // Accepted prefixes must at least produce a mapping.
      EXPECT_NE(s.mapping, nullptr);
    } catch (const SpiderError&) {
      // Expected for most prefixes.
    }
  }
}

TEST(ParserRobustnessTest, RandomByteFlipsNeverCrash) {
  std::string original = testing::CreditCardScenarioText();
  Rng rng(7);
  constexpr char kAlphabet[] = "(){};,.->&#\"x1 ";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text = original;
    int flips = 1 + static_cast<int>(rng.Below(4));
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.Below(text.size());
      text[pos] = kAlphabet[rng.Below(sizeof(kAlphabet) - 1)];
    }
    try {
      ParseScenario(text);
    } catch (const SpiderError&) {
      // Fine: rejected with a proper error.
    }
  }
}

TEST(ParserRobustnessTest, GarbageInputsRejected) {
  const char* cases[] = {
      "%%%",
      "source",
      "source schema",
      "source schema {",
      "source schema { R(); }",
      "source schema { R(a); } target schema { T(a); } m: -> T(x);",
      "source schema { R(a); } target schema { T(a); } m: R(x) -> ;",
      "source schema { R(a); } target schema { T(a); } m: R(x) T(x);",
      "source schema { R(a); } target schema { T(a); } m: R(x) -> x = ;",
      "source schema { R(a); } target schema { T(a); } "
      "source instance { R(\"unterminated); }",
  };
  for (const char* text : cases) {
    EXPECT_THROW(ParseScenario(text), SpiderError) << text;
  }
}

TEST(ParserRobustnessTest, DeeplyNestedGarbageBounded) {
  // A pathological stream of punctuation terminates promptly.
  std::string text(10000, '(');
  EXPECT_THROW(ParseScenario(text), SpiderError);
}

TEST(ParserRobustnessTest, EgdEquatingConstantPositionRejected) {
  EXPECT_THROW(ParseScenario(R"(
    source schema { R(a); }
    target schema { T(a); }
    e: T(x) -> x = y;
  )"),
               SpiderError);
}

TEST(ParserRobustnessTest, ValidScenarioStillParsesAfterAllThat) {
  // Sanity: the fixture itself is unscathed by the mutation machinery.
  Scenario s = testing::CreditCardScenario();
  EXPECT_EQ(s.mapping->NumTgds(), 5u);
}

}  // namespace
}  // namespace spider
