// Span tracking: the parser records line/column spans per dependency and per
// atom, and malformed inputs keep their line-numbered SpiderError messages.
#include <gtest/gtest.h>

#include <string>

#include "base/status.h"
#include "mapping/parser.h"

namespace spider {
namespace {

// Built with explicit newlines so every column below is exact.
const char* kSpanText =
    "source schema { R(a, b); }\n"             // line 1
    "target schema { T(u, v); U(w); }\n"       // line 2
    "m1: R(x, y) -> T(x, y);\n"                // line 3
    "t1: T(x, y) & T(y, z)\n"                  // line 4
    "      -> U(x);\n"                         // line 5
    "e1: U(x) & U(y) -> x = y;\n";             // line 6

TEST(ParserSpanTest, DependencySpansCoverNameThroughSemicolon) {
  Scenario s = ParseScenario(kSpanText);
  ASSERT_EQ(s.mapping->NumTgds(), 2u);
  ASSERT_EQ(s.mapping->NumEgds(), 1u);

  const Tgd& m1 = s.mapping->tgd(s.mapping->FindTgd("m1"));
  EXPECT_EQ(m1.span(), (SourceSpan{3, 1, 3, 24}));

  // t1 wraps onto line 5; the span follows.
  const Tgd& t1 = s.mapping->tgd(s.mapping->FindTgd("t1"));
  EXPECT_EQ(t1.span(), (SourceSpan{4, 1, 5, 15}));

  const Egd& e1 = s.mapping->egd(0);
  EXPECT_EQ(e1.span(), (SourceSpan{6, 1, 6, 26}));
}

TEST(ParserSpanTest, AtomSpansCoverRelationThroughClosingParen) {
  Scenario s = ParseScenario(kSpanText);
  const Tgd& m1 = s.mapping->tgd(s.mapping->FindTgd("m1"));
  ASSERT_EQ(m1.lhs_spans().size(), 1u);
  ASSERT_EQ(m1.rhs_spans().size(), 1u);
  EXPECT_EQ(m1.lhs_spans()[0], (SourceSpan{3, 5, 3, 12}));   // R(x, y)
  EXPECT_EQ(m1.rhs_spans()[0], (SourceSpan{3, 16, 3, 23}));  // T(x, y)
  EXPECT_EQ(m1.LhsAtomSpan(0), m1.lhs_spans()[0]);

  const Tgd& t1 = s.mapping->tgd(s.mapping->FindTgd("t1"));
  ASSERT_EQ(t1.lhs_spans().size(), 2u);
  EXPECT_EQ(t1.lhs_spans()[1], (SourceSpan{4, 15, 4, 22}));  // T(y, z)
  ASSERT_EQ(t1.rhs_spans().size(), 1u);
  EXPECT_EQ(t1.rhs_spans()[0], (SourceSpan{5, 10, 5, 14}));  // U(x)

  const Egd& e1 = s.mapping->egd(0);
  ASSERT_EQ(e1.lhs_spans().size(), 2u);
  EXPECT_EQ(e1.lhs_spans()[0], (SourceSpan{6, 5, 6, 9}));    // U(x)
  EXPECT_EQ(e1.lhs_spans()[1], (SourceSpan{6, 12, 6, 16}));  // U(y)
}

TEST(ParserSpanTest, UnnamedDependencySpanStartsAtFirstAtom) {
  Scenario s = ParseScenario(
      "source schema { R(a); }\n"
      "target schema { T(a); }\n"
      "R(x) -> T(x);\n");
  const Tgd& tgd = s.mapping->tgd(0);
  EXPECT_EQ(tgd.span(), (SourceSpan{3, 1, 3, 14}));
  ASSERT_EQ(tgd.lhs_spans().size(), 1u);
  EXPECT_EQ(tgd.lhs_spans()[0], (SourceSpan{3, 1, 3, 5}));
}

TEST(ParserSpanTest, ProgrammaticTgdHasInvalidSpan) {
  Tgd tgd("t", {"x"}, {Atom{0, {Term::Var(0)}}}, {Atom{0, {Term::Var(0)}}},
          true);
  EXPECT_FALSE(tgd.span().valid());
  EXPECT_TRUE(tgd.lhs_spans().empty());
  // Atom-span accessors fall back to the (invalid) dependency span.
  EXPECT_FALSE(tgd.LhsAtomSpan(0).valid());
  EXPECT_EQ(tgd.span().ToString(), "?");
}

// Error positions on malformed inputs must stay stable: downstream tooling
// (and users) rely on the "parse error at line N" prefix.
TEST(ParserSpanTest, ErrorPositionsOnMalformedInputs) {
  struct Case {
    const char* text;
    const char* message_prefix;
  };
  const Case cases[] = {
      {"source schema {\nR(a;\n}", "parse error at line 2: expected ','"},
      {"source schema { R(a); }\ntarget schema { T(a); }\nm: R(x) -> T(@);",
       "parse error at line 3: expected a term"},
      {"source schema { R(a); }\ntarget schema { T(a); }\n\nm: R(x) - T(x);",
       "parse error at line 4: expected '->'"},
      {"source schema { R(a); }\ntarget\n",
       "parse error at line 3: expected identifier"},
      {"source schema { R(a); }\ntarget instanse { }\n",
       "parse error at line 2: expected 'schema' or 'instance'"},
  };
  for (const Case& c : cases) {
    try {
      ParseScenario(c.text);
      FAIL() << "expected SpiderError for: " << c.text;
    } catch (const SpiderError& e) {
      EXPECT_EQ(std::string(e.what()).rfind(c.message_prefix, 0), 0u)
          << "got: " << e.what();
    }
  }
}

// Bad terms inside facts and dependencies report the exact line:column of
// the offending token, not just the line. Golden messages: downstream
// tooling parses the "parse error at line L:C:" prefix.
TEST(ParserSpanTest, BadTermErrorsCarryLineAndColumn) {
  struct Case {
    const char* text;
    const char* message;
  };
  const Case cases[] = {
      // Bare identifier in an instance block: 'abc' starts at column 21.
      {"source schema { R(a); }\n"
       "target schema { T(a); }\n"
       "source instance { R(abc); }\n",
       "parse error at line 3:21: bare identifier 'abc' in a fact; "
       "constants must be numbers, quoted strings, or #nulls"},
      // A labeled null in a dependency body: the '#' is at column 8.
      {"source schema { R(a); }\n"
       "target schema { T(a); }\n"
       "m: R(x) -> T(#oops);\n",
       "parse error at line 3:14: labeled nulls cannot appear in "
       "dependencies"},
  };
  for (const Case& c : cases) {
    try {
      ParseScenario(c.text);
      FAIL() << "expected SpiderError for: " << c.text;
    } catch (const SpiderError& e) {
      EXPECT_EQ(std::string(e.what()), c.message);
    }
  }
}

TEST(ParserSpanTest, FactTextErrorsCarryLineAndColumn) {
  std::string relation;
  try {
    ParseFactText("T(#bogus)", &relation, {});
    FAIL() << "expected SpiderError";
  } catch (const SpiderError& e) {
    EXPECT_EQ(std::string(e.what()),
              "parse error at line 1:3: unknown labeled null '#bogus'");
  }
  try {
    ParseFactText("T(1, foo)", &relation, {});
    FAIL() << "expected SpiderError";
  } catch (const SpiderError& e) {
    EXPECT_EQ(std::string(e.what()),
              "parse error at line 1:6: bare identifier 'foo' in a fact; "
              "use numbers, quoted strings or #nulls");
  }
}

TEST(ParserSpanTest, SpansSurviveMultilineStringLiterals) {
  // A string literal containing a newline shifts subsequent lines; spans must
  // account for it.
  Scenario s = ParseScenario(
      "source schema { R(a); }\n"
      "target schema { T(a); }\n"
      "source instance { R(\"two\nline\"); }\n"
      "m: R(x) -> T(x);\n");
  const Tgd& tgd = s.mapping->tgd(0);
  EXPECT_EQ(tgd.span().line, 5);
  EXPECT_EQ(tgd.span().col, 1);
}

}  // namespace
}  // namespace spider
