#include "mapping/parser.h"

#include <gtest/gtest.h>

#include "base/status.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

TEST(ParserTest, ParsesSchemas) {
  Scenario s = ParseScenario(R"(
    source schema { R(a, b); Q(x); }
    target schema { T(u, v); }
  )");
  EXPECT_EQ(s.mapping->source().size(), 2u);
  EXPECT_EQ(s.mapping->target().size(), 1u);
  EXPECT_EQ(s.mapping->source().relation(0).name(), "R");
  EXPECT_EQ(s.mapping->source().relation(0).arity(), 2u);
}

TEST(ParserTest, ParsesStTgd) {
  Scenario s = ParseScenario(R"(
    source schema { R(a, b); }
    target schema { T(u, v, w); }
    m1: R(x, y) -> exists Z . T(x, y, Z);
  )");
  ASSERT_EQ(s.mapping->NumTgds(), 1u);
  const Tgd& tgd = s.mapping->tgd(0);
  EXPECT_TRUE(tgd.source_to_target());
  EXPECT_EQ(tgd.name(), "m1");
  EXPECT_EQ(tgd.num_vars(), 3u);
  EXPECT_EQ(tgd.UniversalVars().size(), 2u);
  EXPECT_EQ(tgd.ExistentialVars().size(), 1u);
  EXPECT_EQ(s.mapping->st_tgds().size(), 1u);
  EXPECT_TRUE(s.mapping->target_tgds().empty());
}

TEST(ParserTest, ParsesTargetTgd) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); }
    target schema { T(u); U(v); }
    t1: T(x) -> U(x);
  )");
  ASSERT_EQ(s.mapping->NumTgds(), 1u);
  EXPECT_FALSE(s.mapping->tgd(0).source_to_target());
  EXPECT_EQ(s.mapping->target_tgds().size(), 1u);
}

TEST(ParserTest, ParsesEgd) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); }
    target schema { T(u, v); }
    e1: T(x, y) & T(x, z) -> y = z;
  )");
  ASSERT_EQ(s.mapping->NumEgds(), 1u);
  const Egd& egd = s.mapping->egd(0);
  EXPECT_EQ(egd.name(), "e1");
  EXPECT_NE(egd.left(), egd.right());
}

TEST(ParserTest, ExistentialInferredWithoutDeclaration) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); }
    target schema { T(u, v); }
    m: R(x) -> T(x, Y);
  )");
  EXPECT_EQ(s.mapping->tgd(0).ExistentialVars().size(), 1u);
}

TEST(ParserTest, DeclaredExistentialMustNotOccurInLhs) {
  EXPECT_THROW(ParseScenario(R"(
    source schema { R(a); }
    target schema { T(u, v); }
    m: R(x) -> exists x . T(x, x);
  )"),
               SpiderError);
}

TEST(ParserTest, UnusedDeclaredExistentialRejected) {
  EXPECT_THROW(ParseScenario(R"(
    source schema { R(a); }
    target schema { T(u, v); }
    m: R(x) -> exists Z . T(x, x);
  )"),
               SpiderError);
}

TEST(ParserTest, ConstantsInDependencies) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); }
    target schema { T(u, v); }
    m: R(x) -> T(x, "phd");
  )");
  const Atom& atom = s.mapping->tgd(0).rhs()[0];
  EXPECT_TRUE(atom.terms[1].is_const());
  EXPECT_EQ(atom.terms[1].value(), Value::Str("phd"));
}

TEST(ParserTest, ParsesInstances) {
  Scenario s = ParseScenario(R"(
    source schema { R(a, b); }
    target schema { T(u); }
    source instance { R(1, "x"); R(2, "y"); }
    target instance { T(#N1); T(7); }
  )");
  EXPECT_EQ(s.source->TotalTuples(), 2u);
  EXPECT_EQ(s.target->TotalTuples(), 2u);
  EXPECT_EQ(s.target->tuple(0, 0), Tuple({Value::Null(1)}));
  EXPECT_EQ(s.max_null_id, 1);
  EXPECT_EQ(s.null_names.at(1), "N1");
}

TEST(ParserTest, SharedNullNamesDenoteSameNull) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); }
    target schema { T(u, v); }
    target instance { T(#A, #A); T(#B, #A); }
  )");
  const Tuple& t0 = s.target->tuple(0, 0);
  EXPECT_EQ(t0.at(0), t0.at(1));
  const Tuple& t1 = s.target->tuple(0, 1);
  EXPECT_NE(t1.at(0), t1.at(1));
  EXPECT_EQ(t1.at(1), t0.at(0));
}

TEST(ParserTest, CommentsIgnored) {
  Scenario s = ParseScenario(R"(
    // leading comment
    source schema { R(a); } // trailing
    target schema { T(u); }
    // a dependency:
    m: R(x) -> T(x);
  )");
  EXPECT_EQ(s.mapping->NumTgds(), 1u);
}

TEST(ParserTest, AnonymousDependencyGetsName) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); }
    target schema { T(u); }
    R(x) -> T(x);
  )");
  EXPECT_EQ(s.mapping->tgd(0).name(), "d1");
}

TEST(ParserTest, MixedLhsRejected) {
  EXPECT_THROW(ParseScenario(R"(
    source schema { R(a); }
    target schema { T(u); }
    m: R(x) & T(x) -> T(x);
  )"),
               SpiderError);
}

TEST(ParserTest, UnknownRelationRejected) {
  EXPECT_THROW(ParseScenario(R"(
    source schema { R(a); }
    target schema { T(u); }
    m: Nope(x) -> T(x);
  )"),
               SpiderError);
}

TEST(ParserTest, LabeledNullInDependencyRejected) {
  EXPECT_THROW(ParseScenario(R"(
    source schema { R(a); }
    target schema { T(u); }
    m: R(x) -> T(#N1);
  )"),
               SpiderError);
}

TEST(ParserTest, BareIdentifierInFactRejected) {
  EXPECT_THROW(ParseScenario(R"(
    source schema { R(a); }
    target schema { T(u); }
    source instance { R(hello); }
  )"),
               SpiderError);
}

TEST(ParserTest, ArityMismatchInFactRejected) {
  EXPECT_THROW(ParseScenario(R"(
    source schema { R(a, b); }
    target schema { T(u); }
    source instance { R(1); }
  )"),
               SpiderError);
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  try {
    ParseScenario("source schema {\n  R(a;\n}");
    FAIL() << "expected SpiderError";
  } catch (const SpiderError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ParserTest, ParseDependenciesAppendsToMapping) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); }
    target schema { T(u); U(v); }
  )");
  ParseDependencies("m: R(x) -> T(x); t: T(x) -> U(x);", s.mapping.get());
  EXPECT_EQ(s.mapping->NumTgds(), 2u);
}

TEST(ParserTest, ParseFactsAppendsToInstance) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); }
    target schema { T(u); }
  )");
  ParseFacts("R(1); R(2);", s.source.get());
  EXPECT_EQ(s.source->TotalTuples(), 2u);
}

TEST(ParserTest, ParseFactTextResolvesNamedNulls) {
  std::string relation;
  Tuple t = ParseFactText("T(#M1, 3)", &relation, {{"M1", 42}});
  EXPECT_EQ(relation, "T");
  EXPECT_EQ(t.at(0), Value::Null(42));
  EXPECT_EQ(t.at(1), Value::Int(3));
}

TEST(ParserTest, ParseFactTextResolvesDefaultNullNames) {
  std::string relation;
  Tuple t = ParseFactText("T(#N17)", &relation, {});
  EXPECT_EQ(t.at(0), Value::Null(17));
}

TEST(ParserTest, ParseFactTextRejectsUnknownNull) {
  std::string relation;
  EXPECT_THROW(ParseFactText("T(#XYZ)", &relation, {}), SpiderError);
}

TEST(ParserTest, RoundTripThroughToString) {
  Scenario s = testing::CreditCardScenario();
  std::string rendered = s.mapping->ToString();
  EXPECT_NE(rendered.find("m1:"), std::string::npos);
  EXPECT_NE(rendered.find("exists"), std::string::npos);
  EXPECT_NE(rendered.find("l = l2"), std::string::npos);
}

TEST(ParserTest, CreditCardScenarioShape) {
  Scenario s = testing::CreditCardScenario();
  EXPECT_EQ(s.mapping->st_tgds().size(), 3u);
  EXPECT_EQ(s.mapping->target_tgds().size(), 2u);
  EXPECT_EQ(s.mapping->NumEgds(), 1u);
  EXPECT_EQ(s.source->TotalTuples(), 6u);
  EXPECT_EQ(s.target->TotalTuples(), 10u);
  // Eight named nulls: N1, A1, M1..M5, I1.
  EXPECT_EQ(s.null_names.size(), 8u);
}

TEST(ParserTest, NegativeNumbersAndDoubles) {
  Scenario s = ParseScenario(R"(
    source schema { R(a, b); }
    target schema { T(u); }
    source instance { R(-5, 2.25); }
  )");
  EXPECT_EQ(s.source->tuple(0, 0).at(0), Value::Int(-5));
  EXPECT_EQ(s.source->tuple(0, 0).at(1), Value::Real(2.25));
}

}  // namespace
}  // namespace spider
