#include "mapping/writer.h"

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "chase/homomorphism.h"
#include "mapping/parser.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

TEST(WriterTest, RoundTripsCreditCardScenario) {
  Scenario original = testing::CreditCardScenario();
  std::string text = WriteScenario(original);
  Scenario reparsed = ParseScenario(text);
  // Schemas and dependency counts survive.
  EXPECT_EQ(reparsed.mapping->source().size(),
            original.mapping->source().size());
  EXPECT_EQ(reparsed.mapping->target().size(),
            original.mapping->target().size());
  EXPECT_EQ(reparsed.mapping->NumTgds(), original.mapping->NumTgds());
  EXPECT_EQ(reparsed.mapping->NumEgds(), original.mapping->NumEgds());
  // Dependency classification survives.
  EXPECT_EQ(reparsed.mapping->st_tgds().size(),
            original.mapping->st_tgds().size());
  // Instances are equal up to null renaming.
  EXPECT_EQ(reparsed.source->TotalTuples(), original.source->TotalTuples());
  EXPECT_EQ(reparsed.target->TotalTuples(), original.target->TotalTuples());
  EXPECT_TRUE(HomomorphicallyEquivalent(*reparsed.target, *original.target));
}

TEST(WriterTest, SecondRoundTripIsStable) {
  Scenario original = testing::CreditCardScenario();
  std::string once = WriteScenario(original);
  Scenario reparsed = ParseScenario(once);
  std::string twice = WriteScenario(reparsed);
  EXPECT_EQ(once, twice);
}

TEST(WriterTest, ChaseInventedNullsRoundTrip) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); }
    target schema { T(a, b); U(a, b); }
    m1: R(x) -> exists Y . T(x, Y) & U(x, Y);
    source instance { R(1); }
  )");
  ChaseScenario(&s);
  // The shared invented null must stay shared across relations.
  Scenario reparsed = ParseScenario(WriteScenario(s));
  const Tuple& t = reparsed.target->tuple(0, 0);
  const Tuple& u = reparsed.target->tuple(1, 0);
  EXPECT_TRUE(t.at(1).is_null());
  EXPECT_EQ(t.at(1), u.at(1));
}

TEST(WriterTest, WriteFactsEmitsParseableLines) {
  Scenario s = testing::CreditCardScenario();
  std::string facts = WriteFacts(*s.source, s.null_names);
  EXPECT_NE(facts.find("Cards(6689, \"15K\", 434"), std::string::npos);
  // Reparse into a fresh instance.
  Instance fresh(&s.mapping->source());
  ParseFacts(facts, &fresh);
  EXPECT_EQ(fresh.TotalTuples(), s.source->TotalTuples());
}

TEST(WriterTest, NamedNullsKeepTheirNames) {
  Scenario s = testing::CreditCardScenario();
  std::string text = WriteScenario(s);
  EXPECT_NE(text.find("#A1"), std::string::npos);
  EXPECT_NE(text.find("#M5"), std::string::npos);
}

}  // namespace
}  // namespace spider
