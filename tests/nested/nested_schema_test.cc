#include "nested/nested_schema.h"

#include <gtest/gtest.h>

#include "base/status.h"
#include "chase/chase.h"
#include "chase/solution_check.h"
#include "nested/shredded_builder.h"
#include "routes/fact_util.h"
#include "routes/one_route.h"

namespace spider {
namespace {

/// The deep-hierarchy shape of §4.1: Region/Nation/Customer/Orders/Lineitem.
NestedSchema DeepSchema() {
  NestedSchema nested("tpch_nested");
  NestedSetDef* region = nested.AddRoot("Region", {"rname"});
  NestedSetDef* nation = region->AddChild("Nation", {"nname"});
  NestedSetDef* customer = nation->AddChild("Customer", {"cname"});
  NestedSetDef* orders = customer->AddChild("Orders", {"ostatus"});
  orders->AddChild("Lineitem", {"quantity"});
  return nested;
}

TEST(NestedSchemaTest, DepthAndElements) {
  NestedSchema nested = DeepSchema();
  EXPECT_EQ(nested.Depth(), 5);
  // 5 sets + 5 atomic attributes.
  EXPECT_EQ(nested.TotalElements(), 10u);
}

TEST(NestedSchemaTest, ShreddingLayout) {
  Schema shredded = DeepSchema().Shred();
  EXPECT_EQ(shredded.size(), 5u);
  RelationId region = shredded.Require("Region");
  EXPECT_EQ(shredded.relation(region).attributes(),
            (std::vector<std::string>{"nkey", "rname"}));
  RelationId nation = shredded.Require("Nation");
  EXPECT_EQ(shredded.relation(nation).attributes(),
            (std::vector<std::string>{"nkey", "nparent", "nname"}));
}

TEST(NestedSchemaTest, ForestOfRoots) {
  NestedSchema nested("two_docs");
  nested.AddRoot("A", {"x"});
  nested.AddRoot("B", {"y"});
  EXPECT_EQ(nested.Depth(), 1);
  EXPECT_EQ(nested.Shred().size(), 2u);
}

TEST(NestedCopyMappingTest, OneTgdPerLeafPath) {
  NestedSchema nested("n");
  NestedSetDef* root = nested.AddRoot("Doc", {"title"});
  root->AddChild("SectionA", {"heading"});
  NestedSetDef* b = root->AddChild("SectionB", {"heading"});
  b->AddChild("Paragraph", {"text"});
  NestedCopyMapping copy = BuildNestedCopyMapping(nested, "_t");
  // Two leaves: Doc/SectionA and Doc/SectionB/Paragraph.
  EXPECT_EQ(copy.mapping->st_tgds().size(), 2u);
  // The second tgd joins three levels on both sides.
  const Tgd& tgd = copy.mapping->tgd(copy.mapping->st_tgds()[1]);
  EXPECT_EQ(tgd.lhs().size(), 3u);
  EXPECT_EQ(tgd.rhs().size(), 3u);
}

TEST(NestedCopyMappingTest, EmptySuffixRejected) {
  EXPECT_THROW(BuildNestedCopyMapping(DeepSchema(), ""), SpiderError);
}

class NestedEndToEndTest : public ::testing::Test {
 protected:
  NestedEndToEndTest() : nested_(DeepSchema()) {
    NestedCopyMapping copy = BuildNestedCopyMapping(nested_, "_t");
    scenario_.mapping = std::move(copy.mapping);
    scenario_.source = std::make_unique<Instance>(&scenario_.mapping->source());
    scenario_.target = std::make_unique<Instance>(&scenario_.mapping->target());
    ShreddedInstanceBuilder builder(scenario_.source.get());
    for (int r = 0; r < 2; ++r) {
      int64_t region = builder.InsertRoot(
          "Region", {Value::Str("region#" + std::to_string(r))});
      for (int n = 0; n < 2; ++n) {
        int64_t nation = builder.InsertChild("Nation", region,
                                             {Value::Str("nation")});
        int64_t customer = builder.InsertChild("Customer", nation,
                                               {Value::Str("cust")});
        int64_t order = builder.InsertChild("Orders", customer,
                                            {Value::Str("O")});
        builder.InsertChild("Lineitem", order, {Value::Int(7)});
      }
    }
    ChaseScenario(&scenario_);
  }

  NestedSchema nested_;
  Scenario scenario_;
};

TEST_F(NestedEndToEndTest, CopiesWholeHierarchy) {
  EXPECT_EQ(scenario_.target->TotalTuples(),
            scenario_.source->TotalTuples());
  std::string why;
  EXPECT_TRUE(IsSolution(*scenario_.mapping, *scenario_.source,
                         *scenario_.target, &why))
      << why;
}

TEST_F(NestedEndToEndTest, DeepElementRouteBindsWholePath) {
  // Probing a copied Lineitem element: the single satisfaction step's
  // assignment binds the full root-to-leaf path, as a nested tgd would.
  RelationId lineitem = scenario_.mapping->target().Require("Lineitem_t");
  ASSERT_GT(scenario_.target->NumTuples(lineitem), 0u);
  FactRef fact{Side::kTarget, lineitem, 0};
  OneRouteResult result = ComputeOneRoute(*scenario_.mapping,
                                          *scenario_.source,
                                          *scenario_.target, {fact});
  ASSERT_TRUE(result.found);
  ASSERT_EQ(result.route.size(), 1u);
  const SatStep& step = result.route.steps()[0];
  std::vector<FactRef> lhs =
      LhsFacts(*scenario_.mapping, step.tgd, step.h, *scenario_.source,
               *scenario_.target);
  // One source fact per nesting level.
  EXPECT_EQ(lhs.size(), 5u);
}

}  // namespace
}  // namespace spider
