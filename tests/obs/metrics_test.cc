// spider::obs metrics: instrument behavior, the fixed-key-order JSON
// export, and the determinism contract — counters published by the engines
// are byte-identical at every thread count because they come from the
// per-task stats structs merged in canonical order, not from racy bumps.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chase/chase.h"
#include "mapping/parser.h"
#include "routes/one_route.h"
#include "routes/route_forest.h"
#include "testing/json_check.h"
#include "workload/relational_scenario.h"

namespace spider {
namespace {

TEST(MetricsTest, CounterAccumulates) {
  obs::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricsTest, GaugeSetsAndAdds) {
  obs::Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST(MetricsTest, HistogramBucketsLogarithmically) {
  obs::Histogram histogram;
  histogram.Record(0.5);   // 2^-1 ms -> bucket 5 (upper bound 0.5).
  histogram.Record(1.0);   // bucket 6 (upper bound 1).
  histogram.Record(100.0);  // bucket 13 (upper bound 128).
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_DOUBLE_EQ(histogram.sum_ms(), 101.5);
  EXPECT_DOUBLE_EQ(histogram.min_ms(), 0.5);
  EXPECT_DOUBLE_EQ(histogram.max_ms(), 100.0);
  std::vector<uint64_t> buckets = histogram.buckets();
  ASSERT_EQ(buckets.size(), static_cast<size_t>(obs::Histogram::kNumBuckets));
  EXPECT_EQ(buckets[5], 1u);
  EXPECT_EQ(buckets[6], 1u);
  EXPECT_EQ(buckets[13], 1u);
  EXPECT_DOUBLE_EQ(obs::Histogram::BucketUpperMs(6), 1.0);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  obs::Registry registry;
  obs::Counter* a = registry.GetCounter("a");
  EXPECT_EQ(registry.GetCounter("a"), a);
  EXPECT_NE(registry.GetCounter("b"), a);
  a->Add(5);
  registry.ResetAll();
  // Reset zeroes values but keeps the instruments alive.
  EXPECT_EQ(registry.GetCounter("a"), a);
  EXPECT_EQ(a->value(), 0u);
}

TEST(MetricsTest, EmptyRegistryJson) {
  obs::Registry registry;
  EXPECT_EQ(registry.ToJson(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {}\n}\n");
}

TEST(MetricsTest, JsonKeysAreSortedRegardlessOfRegistrationOrder) {
  obs::Registry registry;
  registry.GetCounter("z.last")->Add(2);
  registry.GetCounter("a.first")->Add(1);
  registry.GetGauge("g")->Set(5);
  registry.GetHistogram("h")->Record(1.0);

  std::string json = registry.ToJson();
  EXPECT_EQ(json,
            "{\n"
            "  \"counters\": {\n"
            "    \"a.first\": 1,\n"
            "    \"z.last\": 2\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"g\": 5\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"h\": {\"count\": 1, \"sum_ms\": 1, \"min_ms\": 1, "
            "\"max_ms\": 1, \"buckets\": [{\"le_ms\": 1, \"count\": 1}]}\n"
            "  }\n"
            "}\n");

  testing::JsonReader reader(json);
  auto doc = reader.Parse();
  ASSERT_NE(doc, nullptr) << reader.error();
  const testing::JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->members.size(), 2u);
  EXPECT_EQ(counters->members[0].first, "a.first");
  EXPECT_EQ(counters->members[1].first, "z.last");
}

TEST(MetricsTest, CountersJsonExcludesHistograms) {
  obs::Registry registry;
  registry.GetCounter("c")->Add(3);
  registry.GetHistogram("h")->Record(2.0);
  std::string json = registry.CountersJson();
  EXPECT_EQ(json.find("histograms"), std::string::npos);
  EXPECT_NE(json.find("\"c\": 3"), std::string::npos);
}

TEST(MetricsTest, EnabledSwitchGatesEnginePublication) {
  obs::Registry& registry = obs::Registry::Global();
  registry.ResetAll();
  Scenario scenario = ParseScenario(
      "source schema { R(a); }\n"
      "target schema { T(a); }\n"
      "m: R(x) -> T(x);\n"
      "source instance { R(1); R(2); }\n");

  obs::SetMetricsEnabled(false);
  EXPECT_FALSE(obs::MetricsEnabled());
  ChaseResult quiet = Chase(*scenario.mapping, *scenario.source);
  ASSERT_EQ(quiet.outcome, ChaseOutcome::kSuccess);
  EXPECT_EQ(registry.GetCounter("chase.st_steps")->value(), 0u);

  obs::SetMetricsEnabled(true);
  ChaseResult loud = Chase(*scenario.mapping, *scenario.source);
  ASSERT_EQ(loud.outcome, ChaseOutcome::kSuccess);
  EXPECT_EQ(registry.GetCounter("chase.st_steps")->value(), 2u);
}

/// The first `count` target facts in relation-major order.
std::vector<FactRef> FirstTargetFacts(const Instance& target, size_t count) {
  std::vector<FactRef> facts;
  for (size_t r = 0; r < target.NumRelations() && facts.size() < count; ++r) {
    RelationId rel = static_cast<RelationId>(r);
    int32_t rows = static_cast<int32_t>(target.NumTuples(rel));
    for (int32_t row = 0; row < rows && facts.size() < count; ++row) {
      facts.push_back(FactRef{Side::kTarget, rel, row});
    }
  }
  return facts;
}

/// Resets the global registry, runs chase + one-route + all-routes at the
/// given thread count, and returns the deterministic counters export.
std::string CountersAfterPipeline(int num_threads) {
  obs::Registry& registry = obs::Registry::Global();
  registry.ResetAll();

  RelationalScenarioOptions options;
  options.joins = 1;
  options.groups = 3;
  options.sizes.units = 2;
  Scenario scenario = BuildRelationalScenario(options);

  ChaseOptions chase_options;
  chase_options.exec.num_threads = num_threads;
  ChaseScenario(&scenario, chase_options);

  RouteOptions route_options;
  route_options.exec.num_threads = num_threads;
  std::vector<FactRef> selected = FirstTargetFacts(*scenario.target, 6);
  ComputeOneRoute(*scenario.mapping, *scenario.source, *scenario.target,
                  selected, route_options);
  ComputeAllRoutes(*scenario.mapping, *scenario.source, *scenario.target,
                   selected, route_options);
  return registry.CountersJson();
}

// The headline determinism claim: the counters JSON is byte-identical at
// 1, 2 and 8 threads. (Histograms record wall clock and are deliberately
// excluded from this export.)
TEST(MetricsTest, CountersJsonByteIdenticalAcrossThreadCounts) {
  obs::SetMetricsEnabled(true);
  std::string base = CountersAfterPipeline(1);
  EXPECT_NE(base.find("\"chase."), std::string::npos) << base;
  EXPECT_NE(base.find("\"routes."), std::string::npos) << base;
  for (int threads : {2, 8}) {
    EXPECT_EQ(CountersAfterPipeline(threads), base) << threads << " threads";
  }
}

}  // namespace
}  // namespace spider
