// spider::obs tracing: span capture semantics, Chrome trace-event JSON
// shape, and the end-to-end golden — a traced DebugSession run writes a
// file that parses as trace-event JSON with the schema Perfetto and
// about:tracing expect.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "debugger/debug_session.h"
#include "incremental/source_delta.h"
#include "mapping/parser.h"
#include "obs/metrics.h"
#include "testing/fixtures.h"
#include "testing/json_check.h"

namespace spider {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// One trace event must carry name/ph/pid/tid (+ts for events, +dur for
/// complete spans, +s for instants).
void CheckEventSchema(const testing::JsonValue& event) {
  ASSERT_EQ(event.kind, testing::JsonValue::Kind::kObject);
  const testing::JsonValue* name = event.Find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->kind, testing::JsonValue::Kind::kString);
  const testing::JsonValue* ph = event.Find("ph");
  ASSERT_NE(ph, nullptr);
  ASSERT_EQ(ph->kind, testing::JsonValue::Kind::kString);
  EXPECT_NE(event.Find("pid"), nullptr);
  EXPECT_NE(event.Find("tid"), nullptr);
  if (ph->string_value == "M") return;  // Metadata has no timestamp.
  const testing::JsonValue* ts = event.Find("ts");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->kind, testing::JsonValue::Kind::kNumber);
  if (ph->string_value == "X") {
    const testing::JsonValue* dur = event.Find("dur");
    ASSERT_NE(dur, nullptr);
    EXPECT_EQ(dur->kind, testing::JsonValue::Kind::kNumber);
  }
  if (ph->string_value == "i") {
    const testing::JsonValue* scope = event.Find("s");
    ASSERT_NE(scope, nullptr);
    EXPECT_EQ(scope->string_value, "t");
  }
}

/// Checks `json` parses and has the Chrome trace-event shape: an object
/// with displayTimeUnit and a traceEvents array of schema-valid entries.
/// Returns the parsed document (nullptr on parse failure) for
/// test-specific assertions.
std::unique_ptr<testing::JsonValue> CheckTraceSchema(const std::string& json) {
  testing::JsonReader reader(json);
  std::unique_ptr<testing::JsonValue> doc = reader.Parse();
  EXPECT_NE(doc, nullptr) << reader.error();
  if (doc == nullptr) return nullptr;
  EXPECT_EQ(doc->kind, testing::JsonValue::Kind::kObject);

  const testing::JsonValue* unit = doc->Find("displayTimeUnit");
  EXPECT_NE(unit, nullptr) << "missing displayTimeUnit";
  if (unit != nullptr) EXPECT_EQ(unit->string_value, "ms");

  const testing::JsonValue* events = doc->Find("traceEvents");
  EXPECT_NE(events, nullptr) << "missing traceEvents";
  if (events == nullptr) return doc;
  EXPECT_EQ(events->kind, testing::JsonValue::Kind::kArray);
  for (const auto& event : events->items) {
    CheckEventSchema(*event);
    if (::testing::Test::HasFatalFailure()) break;
  }
  return doc;
}

/// True when some traceEvents entry has the given name.
bool HasEventNamed(const testing::JsonValue& doc, const std::string& name) {
  const testing::JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr) return false;
  for (const auto& event : events->items) {
    const testing::JsonValue* n = event->Find("name");
    if (n != nullptr && n->string_value == name) return true;
  }
  return false;
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Stop();
  size_t before = tracer.NumEventsForTest();
  {
    obs::TraceSpan span("test", "ignored");
    span.AddArg("n", 1);
  }
  tracer.RecordInstant("test", "also_ignored");
  EXPECT_EQ(tracer.NumEventsForTest(), before);
}

TEST(TraceTest, SpansInstantsAndThreadNamesSerialize) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Start();  // Clears previous events.
  tracer.SetCurrentThreadName("trace-test-main");
  {
    obs::TraceSpan span("test", "outer \"quoted\"");
    span.AddArg("items", 7);
    obs::TraceSpan inner("test", "inner");
  }
  tracer.RecordInstant("test", "tick", {{"count", 3}});
  tracer.Stop();
  EXPECT_EQ(tracer.NumEventsForTest(), 3u);

  std::string json = tracer.ToJson();
  std::unique_ptr<testing::JsonValue> doc = CheckTraceSchema(json);
  ASSERT_NE(doc, nullptr);
  EXPECT_TRUE(HasEventNamed(*doc, "outer \"quoted\""));
  EXPECT_TRUE(HasEventNamed(*doc, "inner"));
  EXPECT_TRUE(HasEventNamed(*doc, "tick"));
  EXPECT_TRUE(HasEventNamed(*doc, "thread_name"));

  // The span's arg survives with its value.
  const testing::JsonValue* events = doc->Find("traceEvents");
  bool found_arg = false;
  for (const auto& event : events->items) {
    const testing::JsonValue* args = event->Find("args");
    if (args == nullptr) continue;
    const testing::JsonValue* items = args->Find("items");
    if (items != nullptr) {
      EXPECT_EQ(items->string_value, "7");
      found_arg = true;
    }
  }
  EXPECT_TRUE(found_arg);
}

TEST(TraceTest, StartClearsPreviousEvents) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Start();
  { obs::TraceSpan span("test", "stale"); }
  tracer.Start();
  { obs::TraceSpan span("test", "fresh"); }
  tracer.Stop();
  EXPECT_EQ(tracer.NumEventsForTest(), 1u);
  EXPECT_EQ(tracer.ToJson().find("stale"), std::string::npos);
}

// The golden: a DebugSession opened with trace_path/metrics_path traces the
// initial chase, a route probe and an incremental edit, and on destruction
// writes a schema-valid Chrome trace plus a parsable metrics dump.
TEST(TraceTest, DebugSessionWritesValidChromeTrace) {
  const std::string trace_path = ::testing::TempDir() + "/spider_trace.json";
  const std::string metrics_path =
      ::testing::TempDir() + "/spider_metrics.json";
  {
    DebugSessionOptions options;
    options.trace_path = trace_path;
    options.metrics_path = metrics_path;
    DebugSession session(ParseScenario(testing::TransitiveClosureText()),
                         options);
    session.RouteFor("T(1, 3)");
    SourceDelta delta;
    delta.Insert("S", Tuple({Value::Int(7), Value::Int(8)}));
    session.Apply(delta);
    session.RouteFor("T(7, 8)");
  }  // Destructor stops tracing and writes both files.

  std::string trace_json = ReadFileOrDie(trace_path);
  std::unique_ptr<testing::JsonValue> doc = CheckTraceSchema(trace_json);
  ASSERT_NE(doc, nullptr);
  // The session's own phases are on the trace...
  EXPECT_TRUE(HasEventNamed(*doc, "open"));
  EXPECT_TRUE(HasEventNamed(*doc, "apply"));
  EXPECT_TRUE(HasEventNamed(*doc, "route_for"));
  // ...and so are the engine spans beneath them: route computation and
  // cache probes from RouteFor, the incremental insert phase from Apply.
  EXPECT_TRUE(HasEventNamed(*doc, "one_route"));
  EXPECT_TRUE(HasEventNamed(*doc, "insert_apply"));
  EXPECT_TRUE(HasEventNamed(*doc, "route_miss"));

  testing::JsonReader metrics_reader(ReadFileOrDie(metrics_path));
  std::unique_ptr<testing::JsonValue> metrics = metrics_reader.Parse();
  ASSERT_NE(metrics, nullptr) << metrics_reader.error();
  EXPECT_NE(metrics->Find("counters"), nullptr);
  EXPECT_NE(metrics->Find("histograms"), nullptr);
}

}  // namespace
}  // namespace spider
