#include "provenance/annotated_chase.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "chase/homomorphism.h"
#include "chase/solution_check.h"
#include "mapping/parser.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

TEST(AnnotatedChaseTest, AgreesWithPlainChase) {
  Scenario s = testing::CreditCardScenario();
  ChaseResult plain = Chase(*s.mapping, *s.source);
  AnnotatedChaseResult annotated = AnnotatedChase(*s.mapping, *s.source);
  ASSERT_EQ(annotated.outcome, AnnotatedChaseOutcome::kSuccess);
  // Same instance up to null renaming (both are universal solutions for I).
  EXPECT_TRUE(HomomorphicallyEquivalent(*plain.target, *annotated.target));
  EXPECT_EQ(plain.target->TotalTuples(), annotated.target->TotalTuples());
}

TEST(AnnotatedChaseTest, RecordsProducerForEveryFact) {
  Scenario s = ParseScenario(testing::TransitiveClosureText());
  AnnotatedChaseResult result = AnnotatedChase(*s.mapping, *s.source);
  ASSERT_EQ(result.outcome, AnnotatedChaseOutcome::kSuccess);
  const AnnotatedChaseLog& log = result.log;
  EXPECT_EQ(log.NumFacts(), 3u);  // T(1,2), T(2,3), T(1,3)
  for (size_t f = 0; f < log.NumFacts(); ++f) {
    size_t producer = log.ProducerStep(static_cast<int32_t>(f));
    ASSERT_LT(producer, log.tgd_steps().size());
    // The producer's RHS contains the fact.
    const auto& rhs = log.tgd_steps()[producer].rhs;
    EXPECT_NE(std::find(rhs.begin(), rhs.end(), static_cast<int32_t>(f)),
              rhs.end());
  }
}

TEST(AnnotatedChaseTest, MaterializeMatchesWorkingInstance) {
  Scenario s = ParseScenario(testing::Example35Text(false));
  AnnotatedChaseResult result = AnnotatedChase(*s.mapping, *s.source);
  std::unique_ptr<Instance> materialized =
      result.log.Materialize(&s.mapping->target());
  EXPECT_EQ(materialized->TotalTuples(), result.target->TotalTuples());
}

TEST(AnnotatedChaseTest, EgdStepsRecorded) {
  Scenario s = ParseScenario(R"(
    source schema { R(a, b); P(a, c); }
    target schema { T(a, b, c); }
    m1: R(x, y) -> exists C . T(x, y, C);
    m2: P(x, z) -> exists B . T(x, B, z);
    e1: T(x, y, z) & T(x, y2, z2) -> y = y2;
    e2: T(x, y, z) & T(x, y2, z2) -> z = z2;
    source instance { R(1, "b"); P(1, "c"); }
  )");
  AnnotatedChaseResult result = AnnotatedChase(*s.mapping, *s.source);
  ASSERT_EQ(result.outcome, AnnotatedChaseOutcome::kSuccess);
  EXPECT_EQ(result.target->TotalTuples(), 1u);
  EXPECT_GE(result.log.egd_steps().size(), 2u);
  // One of the two facts was merged away; exactly one live fact remains.
  size_t live = 0;
  for (size_t f = 0; f < result.log.NumFacts(); ++f) {
    if (result.log.Find(0, result.log.tuple(static_cast<int32_t>(f)))
            .has_value()) {
      ++live;
    }
  }
  EXPECT_GE(result.log.NumFacts(), 2u);
  EXPECT_EQ(result.target->NumTuples(0), 1u);
  // Every egd step records the facts it rewrote.
  for (const auto& step : result.log.egd_steps()) {
    EXPECT_FALSE(step.rewritten.empty());
    EXPECT_FALSE(step.lhs.empty());
  }
}

TEST(AnnotatedChaseTest, EgdFailureDetected) {
  Scenario s = ParseScenario(R"(
    source schema { R(a, b); }
    target schema { T(a, b); }
    m: R(x, y) -> T(x, y);
    e: T(x, y) & T(x, y2) -> y = y2;
    source instance { R(1, 10); R(1, 20); }
  )");
  AnnotatedChaseResult result = AnnotatedChase(*s.mapping, *s.source);
  EXPECT_EQ(result.outcome, AnnotatedChaseOutcome::kEgdFailure);
}

TEST(AnnotatedChaseTest, FindResolvesFinalTuples) {
  Scenario s = ParseScenario(testing::TransitiveClosureText());
  AnnotatedChaseResult result = AnnotatedChase(*s.mapping, *s.source);
  auto id = result.log.Find(0, Tuple({Value::Int(1), Value::Int(3)}));
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(result.log.tuple(*id), Tuple({Value::Int(1), Value::Int(3)}));
  EXPECT_FALSE(
      result.log.Find(0, Tuple({Value::Int(9), Value::Int(9)})).has_value());
}

TEST(AnnotatedChaseTest, ResultIsSolution) {
  Scenario s = testing::CreditCardScenario();
  AnnotatedChaseResult result = AnnotatedChase(*s.mapping, *s.source);
  std::string why;
  EXPECT_TRUE(IsSolution(*s.mapping, *s.source, *result.target, &why)) << why;
}

}  // namespace
}  // namespace spider
