#include "provenance/exchange_player.h"

#include <gtest/gtest.h>

#include "mapping/parser.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

class ExchangePlayerTest : public ::testing::Test {
 protected:
  ExchangePlayerTest() : scenario_(testing::CreditCardScenario()) {
    result_ = AnnotatedChase(*scenario_.mapping, *scenario_.source);
    EXPECT_EQ(result_.outcome, AnnotatedChaseOutcome::kSuccess);
  }

  Scenario scenario_;
  AnnotatedChaseResult result_;
};

TEST_F(ExchangePlayerTest, ReplaysToTheFullSolution) {
  ExchangePlayer player(&result_.log, scenario_.mapping.get());
  EXPECT_EQ(player.current().TotalTuples(), 0u);
  size_t steps = 0;
  while (player.Step()) ++steps;
  EXPECT_EQ(steps, result_.log.events().size());
  EXPECT_EQ(player.current().TotalTuples(), result_.target->TotalTuples());
  EXPECT_TRUE(player.done());
}

TEST_F(ExchangePlayerTest, InstanceGrowsMonotonicallyOnTgdEvents) {
  ExchangePlayer player(&result_.log, scenario_.mapping.get());
  size_t previous = 0;
  while (!player.done()) {
    bool is_tgd = result_.log.events()[player.position()].kind ==
                  AnnotatedChaseLog::Event::Kind::kTgd;
    player.Step();
    if (is_tgd) {
      EXPECT_GE(player.current().TotalTuples(), previous);
    }
    previous = player.current().TotalTuples();
  }
}

TEST_F(ExchangePlayerTest, ResetRestarts) {
  ExchangePlayer player(&result_.log, scenario_.mapping.get());
  player.Step();
  player.Step();
  player.Reset();
  EXPECT_EQ(player.position(), 0u);
  EXPECT_EQ(player.current().TotalTuples(), 0u);
}

TEST_F(ExchangePlayerTest, BreakpointStopsBeforeTgd) {
  TgdId m3 = scenario_.mapping->FindTgd("m3");
  ASSERT_GE(m3, 0);
  ExchangePlayer player(&result_.log, scenario_.mapping.get());
  player.SetBreakpoint(m3);
  ASSERT_TRUE(player.RunToBreakpoint());
  // The next event is an m3 firing.
  const auto& event = result_.log.events()[player.position()];
  EXPECT_EQ(event.kind, AnnotatedChaseLog::Event::Kind::kTgd);
  EXPECT_EQ(result_.log.tgd_steps()[event.index].tgd, m3);
  // Stepping over and running again finds the next m3 firing (4 triggers).
  size_t stops = 1;
  player.Step();
  while (player.RunToBreakpoint()) {
    ++stops;
    player.Step();
  }
  EXPECT_EQ(stops, 4u);
  EXPECT_TRUE(player.done());
}

TEST_F(ExchangePlayerTest, WatchDescribesEvents) {
  ExchangePlayer player(&result_.log, scenario_.mapping.get());
  player.Step();
  std::string watch = player.Watch();
  EXPECT_NE(watch.find("event 1/"), std::string::npos);
  EXPECT_NE(watch.find("last: tgd m1"), std::string::npos);
  EXPECT_NE(watch.find("next:"), std::string::npos);
}

TEST(ExchangePlayerEgdTest, EgdEventsShrinkOrRewrite) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); P(a, c); }
    target schema { T(a, c); }
    m1: R(x) -> exists C . T(x, C);
    m2: P(x, z) -> T(x, z);
    e: T(x, y) & T(x, y2) -> y = y2;
    source instance { R(1); P(1, "c"); }
  )");
  AnnotatedChaseResult result = AnnotatedChase(*s.mapping, *s.source);
  ASSERT_EQ(result.outcome, AnnotatedChaseOutcome::kSuccess);
  ExchangePlayer player(&result.log, s.mapping.get());
  while (player.Step()) {
  }
  // After replay, the two T facts merged into T(1, "c").
  EXPECT_EQ(player.current().TotalTuples(), 1u);
  EXPECT_EQ(player.current().tuple(0, 0),
            Tuple({Value::Int(1), Value::Str("c")}));
}

}  // namespace
}  // namespace spider
