#include "provenance/explain.h"

#include <gtest/gtest.h>

#include "mapping/parser.h"
#include "routes/fact_util.h"
#include "routes/one_route.h"
#include "routes/stratified.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

AnnotatedChaseLog::ProvFactId Resolve(const AnnotatedChaseResult& result,
                                      const Schema& target,
                                      const std::string& relation,
                                      Tuple tuple) {
  auto id = result.log.Find(target.Require(relation), tuple);
  EXPECT_TRUE(id.has_value()) << relation << tuple.ToString();
  return id.value_or(-1);
}

TEST(ExplainTest, TransitiveClosureRoute) {
  Scenario s = ParseScenario(testing::TransitiveClosureText());
  AnnotatedChaseResult result = AnnotatedChase(*s.mapping, *s.source);
  auto t13 = Resolve(result, s.mapping->target(), "T",
                     Tuple({Value::Int(1), Value::Int(3)}));
  ExtendedRoute route = ExplainFact(result.log, t13, *s.mapping);
  // No egds: the extended route is a plain route (two sigma1 steps, one
  // sigma2 step) and its projection validates against the chase output.
  EXPECT_EQ(route.NumEgdEntries(), 0u);
  EXPECT_EQ(route.size(), 3u);
  std::string why;
  EXPECT_TRUE(route.Validate(
      *s.mapping, *s.source,
      {{s.mapping->target().Require("T"),
        Tuple({Value::Int(1), Value::Int(3)})}},
      &why))
      << why;
  Route plain = route.TgdProjection();
  FactRef fact = RequireTargetFact(*result.target, "T",
                                   Tuple({Value::Int(1), Value::Int(3)}));
  EXPECT_TRUE(
      plain.Validate(*s.mapping, *s.source, *result.target, {fact}, &why))
      << why;
}

TEST(ExplainTest, EgdAwareRoute) {
  // The §6 extension: T(1, y, z) is merged by two egds; the extended route
  // for the final fact includes both unification entries and replays.
  Scenario s = ParseScenario(R"(
    source schema { R(a, b); P(a, c); }
    target schema { T(a, b, c); }
    m1: R(x, y) -> exists C . T(x, y, C);
    m2: P(x, z) -> exists B . T(x, B, z);
    e1: T(x, y, z) & T(x, y2, z2) -> y = y2;
    e2: T(x, y, z) & T(x, y2, z2) -> z = z2;
    source instance { R(1, "b"); P(1, "c"); }
  )");
  AnnotatedChaseResult result = AnnotatedChase(*s.mapping, *s.source);
  ASSERT_EQ(result.outcome, AnnotatedChaseOutcome::kSuccess);
  Tuple final_tuple({Value::Int(1), Value::Str("b"), Value::Str("c")});
  auto fact = Resolve(result, s.mapping->target(), "T", final_tuple);
  ExtendedRoute route = ExplainFact(result.log, fact, *s.mapping);
  EXPECT_GE(route.NumEgdEntries(), 1u);
  EXPECT_GE(route.size() - route.NumEgdEntries(), 2u);  // both tgd steps
  std::string why;
  EXPECT_TRUE(route.Validate(*s.mapping, *s.source,
                             {{s.mapping->target().Require("T"),
                               final_tuple}},
                             &why))
      << why;
  // The plain projection CANNOT produce the merged fact: dropping the egd
  // entries loses the unification.
  Route plain = route.TgdProjection();
  FactRef final_ref = RequireTargetFact(*result.target, "T", final_tuple);
  EXPECT_FALSE(plain.Validate(*s.mapping, *s.source, *result.target,
                              {final_ref}));
  // The rendering mentions the unifications.
  EXPECT_NE(route.ToString(*s.mapping).find("unify"), std::string::npos);
}

TEST(ExplainTest, ExtendedRouteOrderIsReplayable) {
  Scenario s = testing::CreditCardScenario();
  AnnotatedChaseResult result = AnnotatedChase(*s.mapping, *s.source);
  ASSERT_EQ(result.outcome, AnnotatedChaseOutcome::kSuccess);
  // Every chased fact's explanation validates.
  for (size_t f = 0; f < result.log.NumFacts(); ++f) {
    auto id = static_cast<AnnotatedChaseLog::ProvFactId>(f);
    if (!result.log.Find(result.log.relation(id), result.log.tuple(id))
             .has_value()) {
      continue;  // merged away
    }
    ExtendedRoute route = ExplainFact(result.log, id, *s.mapping);
    std::string why;
    EXPECT_TRUE(route.Validate(*s.mapping, *s.source,
                               {{result.log.relation(id),
                                 result.log.tuple(id)}},
                               &why))
        << why;
  }
}

TEST(ExplainTest, WhyProvenanceMatchesPaperExample) {
  // §5.1: the why-provenance of t3 = T(1,3) is {s1, s2}; the route is more
  // informative, but the projection to source facts must coincide.
  Scenario s = ParseScenario(testing::TransitiveClosureText());
  AnnotatedChaseResult result = AnnotatedChase(*s.mapping, *s.source);
  auto t13 = Resolve(result, s.mapping->target(), "T",
                     Tuple({Value::Int(1), Value::Int(3)}));
  std::vector<FactRef> sources = WhyProvenance(result.log, t13);
  ASSERT_EQ(sources.size(), 2u);
  for (const FactRef& f : sources) EXPECT_EQ(f.side, Side::kSource);
}

TEST(ExplainTest, EagerAndLazyAgreeOnTgdSteps) {
  // The eager explanation and the lazy ComputeOneRoute agree up to
  // minimization on egd-free scenarios.
  Scenario s = ParseScenario(testing::Example35Text(false));
  AnnotatedChaseResult result = AnnotatedChase(*s.mapping, *s.source);
  auto t7 = Resolve(result, s.mapping->target(), "T7",
                    Tuple({Value::Str("a")}));
  ExtendedRoute eager = ExplainFact(result.log, t7, *s.mapping);
  Route eager_route = eager.TgdProjection();

  FactRef fact =
      RequireTargetFact(*result.target, "T7", Tuple({Value::Str("a")}));
  OneRouteResult lazy = ComputeOneRoute(*s.mapping, *s.source,
                                        *result.target, {fact});
  ASSERT_TRUE(lazy.found);
  Route lazy_min = lazy.route.Minimize(*s.mapping, *s.source, *result.target,
                                       {fact});
  Route eager_min = eager_route.Minimize(*s.mapping, *s.source,
                                         *result.target, {fact});
  EXPECT_EQ(Stratify(lazy_min, *s.mapping, *s.source, *result.target),
            Stratify(eager_min, *s.mapping, *s.source, *result.target));
}

TEST(ExplainTest, ValidationRejectsTamperedRoutes) {
  Scenario s = ParseScenario(testing::TransitiveClosureText());
  AnnotatedChaseResult result = AnnotatedChase(*s.mapping, *s.source);
  auto t13 = Resolve(result, s.mapping->target(), "T",
                     Tuple({Value::Int(1), Value::Int(3)}));
  ExtendedRoute route = ExplainFact(result.log, t13, *s.mapping);
  // Drop the first entry: the closure step loses a dependency.
  route.entries.erase(route.entries.begin());
  EXPECT_FALSE(route.Validate(*s.mapping, *s.source,
                              {{s.mapping->target().Require("T"),
                                Tuple({Value::Int(1), Value::Int(3)})}}));
}

}  // namespace
}  // namespace spider
