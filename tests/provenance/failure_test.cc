#include <gtest/gtest.h>

#include "mapping/parser.h"
#include "provenance/explain.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

TEST(ExplainFailureTest, DerivesTheViolatingFacts) {
  // Two Fargo Bank customers give account holder 1 different limits; the
  // key egd fails and the explanation derives both offending facts.
  Scenario s = ParseScenario(R"(
    source schema { R(card, limit, owner); }
    target schema { Accounts(card, limit, owner); }
    m: R(c, l, o) -> Accounts(c, l, o);
    key: Accounts(c, l, o) & Accounts(c2, l2, o) -> l = l2;
    source instance { R(10, "2K", 1); R(11, "9K", 1); }
  )");
  AnnotatedChaseResult result = AnnotatedChase(*s.mapping, *s.source);
  ASSERT_EQ(result.outcome, AnnotatedChaseOutcome::kEgdFailure);
  ASSERT_TRUE(result.failure.has_value());
  EXPECT_EQ(result.failure->lhs.size(), 2u);

  FailureExplanation explanation =
      ExplainFailure(result.log, *result.failure, *s.mapping);
  EXPECT_NE(explanation.message.find("no solution exists"),
            std::string::npos);
  EXPECT_NE(explanation.message.find("key"), std::string::npos);
  // The route has the two m-steps deriving the clashing accounts, and it
  // replays against the source, producing both facts.
  EXPECT_EQ(explanation.route.size(), 2u);
  RelationId accounts = s.mapping->target().Require("Accounts");
  std::string why;
  EXPECT_TRUE(explanation.route.Validate(
      *s.mapping, *s.source,
      {{accounts, Tuple({Value::Int(10), Value::Str("2K"), Value::Int(1)})},
       {accounts, Tuple({Value::Int(11), Value::Str("9K"), Value::Int(1)})}},
      &why))
      << why;
}

TEST(ExplainFailureTest, FailureAfterUnificationsIncludesEgdEntries) {
  // The clash only appears after an earlier egd merged a null: the
  // explanation carries that unification too.
  Scenario s = ParseScenario(R"(
    source schema { R(a); P(a, b); Q(a, b); }
    target schema { T(a, b); U(a, b); }
    m1: R(x) -> exists Y . T(x, Y) & U(x, Y);
    m2: P(x, y) -> T(x, y);
    m3: Q(x, y) -> U(x, y);
    e1: T(x, y) & T(x, y2) -> y = y2;
    e2: U(x, y) & U(x, y2) -> y = y2;
    source instance { R(1); P(1, 5); Q(1, 6); }
  )");
  AnnotatedChaseResult result = AnnotatedChase(*s.mapping, *s.source);
  ASSERT_EQ(result.outcome, AnnotatedChaseOutcome::kEgdFailure);
  ASSERT_TRUE(result.failure.has_value());
  FailureExplanation explanation =
      ExplainFailure(result.log, *result.failure, *s.mapping);
  // e1 unified the invented Y with 5; e2 then clashes 5 with 6 through U.
  EXPECT_GE(explanation.route.NumEgdEntries(), 1u);
}

TEST(ExplainFailureTest, NoFailureObjectOnSuccess) {
  Scenario s = testing::CreditCardScenario();
  AnnotatedChaseResult result = AnnotatedChase(*s.mapping, *s.source);
  EXPECT_EQ(result.outcome, AnnotatedChaseOutcome::kSuccess);
  EXPECT_FALSE(result.failure.has_value());
}

}  // namespace
}  // namespace spider
