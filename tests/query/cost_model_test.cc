// Unit pins for the probe-aware cost model: the fixed-point cardinality
// arithmetic, the degenerate-statistics estimate (NumDistinct == 0 on a
// nonempty relation), cost-unit pricing, the plan-cache fingerprint, and
// the wall-clock calibration harness.

#include <cstdint>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "query/cost_model.h"

namespace spider {
namespace {

TEST(ExpectedBoundVarRowsTest, UniformSelectivityCeil) {
  EXPECT_EQ(ExpectedBoundVarRows(100, 10), 10u);
  EXPECT_EQ(ExpectedBoundVarRows(100, 7), 15u);  // ceil(100/7)
  EXPECT_EQ(ExpectedBoundVarRows(100, 100), 1u);
  EXPECT_EQ(ExpectedBoundVarRows(1, 1), 1u);
}

TEST(ExpectedBoundVarRowsTest, ZeroDistinctOnNonemptyIsNoInformation) {
  // The seed silently skipped the selectivity factor when the distinct
  // count was 0; the estimate must now be the explicit no-information
  // value — the full relation size — not a skipped-branch accident.
  EXPECT_EQ(ExpectedBoundVarRows(100, 0), 100u);
  EXPECT_EQ(ExpectedBoundVarRows(1, 0), 1u);
}

TEST(ExpectedBoundVarRowsTest, EmptyRelationEstimatesZero) {
  EXPECT_EQ(ExpectedBoundVarRows(0, 0), 0u);
  EXPECT_EQ(ExpectedBoundVarRows(0, 5), 0u);
}

TEST(ExpectedBoundVarRowsTest, DistinctAboveRowsClampsToOneRow) {
  // Impossible statistic (more distinct values than rows): never estimate
  // below one candidate row.
  EXPECT_EQ(ExpectedBoundVarRows(10, 1000), 1u);
}

TEST(CardFpTest, RoundTripAndCeil) {
  EXPECT_EQ(CardCeilRows(CardFromCount(0)), 0u);
  EXPECT_EQ(CardCeilRows(CardFromCount(5)), 5u);
  // A fractional cardinality rounds up, never down to "free".
  EXPECT_EQ(CardCeilRows(CardScale(CardFromCount(10), 1, 3)), 4u);
  EXPECT_EQ(CardCeilRows(CardFp{1}), 1u);  // smallest nonzero fraction
}

TEST(CardFpTest, ScaleIsExactIntegerRatio) {
  EXPECT_EQ(CardScale(CardFromCount(100), 1, 4), CardFromCount(25));
  EXPECT_EQ(CardScale(CardFromCount(6), 7, 2), CardFromCount(21));
  EXPECT_EQ(CardScale(0, 3, 7), 0u);
}

TEST(CardFpTest, SaturatesInsteadOfWrapping) {
  constexpr CardFp kMax = CardFromCount(uint64_t{1} << 47);
  EXPECT_EQ(CardFromCount(uint64_t{1} << 60), kMax);
  EXPECT_EQ(CardScale(kMax, uint64_t{1} << 20, 1), kMax);
}

TEST(CostModelTest, CostUnitsPriceEveryComponent) {
  CostModel model;  // scan 1, probe 4, lookup 2
  AtomEstimate est;
  est.probes = 2;
  est.lookups = 1;
  est.scanned_rows = 10;
  est.out_card = CardScale(CardFromCount(10), 1, 4);  // 2.5 -> ceil 3
  EXPECT_EQ(est.CostUnits(model), 2u * 4 + 1u * 2 + 10u * 1 + 3u * 1);
}

TEST(CostModelTest, FingerprintSeparatesModels) {
  CostModel a;
  CostModel b;
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  b.probe_cost = 8;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  CostModel c;
  c.lookup_cost = 3;
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
  EXPECT_NE(b.Fingerprint(), c.Fingerprint());
}

TEST(CostModelTest, DefaultIsTheCommittedTable) {
  const CostModel& d = CostModel::Default();
  EXPECT_EQ(d.scan_cost, 1u);
  EXPECT_EQ(d.probe_cost, 4u);
  EXPECT_EQ(d.lookup_cost, 2u);
  EXPECT_EQ(d, CostModel{});
}

TEST(CalibrationTest, ProducesSaneConstantsAndRecordsHistograms) {
  obs::Registry& registry = obs::Registry::Global();
  uint64_t scan_before =
      registry.GetHistogram("query.calibrate.scan_ns")->count();

  CalibrationResult result = CalibrateCostModel(/*rows=*/512, /*repeats=*/2);

  // Constants are ratios against the scan unit, clamped to [1, 64].
  EXPECT_EQ(result.model.scan_cost, 1u);
  EXPECT_GE(result.model.probe_cost, 1u);
  EXPECT_LE(result.model.probe_cost, 64u);
  EXPECT_GE(result.model.lookup_cost, 1u);
  EXPECT_LE(result.model.lookup_cost, 64u);
  EXPECT_GT(result.scan_ns, 0.0);
  EXPECT_GT(result.probe_ns, 0.0);
  EXPECT_GT(result.lookup_ns, 0.0);

  // Every repeat lands one sample per primitive in the obs histograms.
  EXPECT_EQ(registry.GetHistogram("query.calibrate.scan_ns")->count(),
            scan_before + 2);
  EXPECT_GE(registry.GetHistogram("query.calibrate.probe_ns")->count(), 2u);
  EXPECT_GE(registry.GetHistogram("query.calibrate.lookup_ns")->count(), 2u);

  // A calibrated model fingerprints differently from the default whenever
  // its constants differ — the property the plan-cache key relies on.
  if (!(result.model == CostModel::Default())) {
    EXPECT_NE(result.model.Fingerprint(), CostModel::Default().Fingerprint());
  }
}

}  // namespace
}  // namespace spider
