// Differential property tests for the selectivity-aware evaluator: every
// planner / index / cache configuration must return the identical multiset
// of bindings for the identical query, on the curated workload scenarios
// and on a few hundred random ones. The baseline configuration is the naive
// nested-loop engine (no reordering, no indexes) — everything else is an
// optimization that must not change results.
//
// Two stronger oracles ride along:
//  - Batched execution must reproduce the tuple-at-a-time match SEQUENCE
//    byte for byte (not merely the multiset) in every configuration.
//  - Fully-bound conjunctions (the chase's RHS containment shape) must
//    report a planner-invariant levels_entered count: existence per atom
//    does not depend on the access path, and the evaluator pins the
//    original atom order for such queries in every mode.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "mapping/scenario.h"
#include "query/evaluator.h"
#include "query/plan_cache.h"
#include "testing/fixtures.h"
#include "workload/hierarchy_scenario.h"
#include "workload/random_scenario.h"
#include "workload/real_scenarios.h"
#include "workload/relational_scenario.h"

namespace spider {
namespace {

std::vector<EvalOptions> AllConfigs() {
  std::vector<EvalOptions> configs;
  for (bool reorder : {false, true}) {
    for (bool indexes : {false, true}) {
      for (PlannerMode planner :
           {PlannerMode::kBoundCount, PlannerMode::kSelectivity}) {
        EvalOptions options;
        options.reorder_atoms = reorder;
        options.use_indexes = indexes;
        options.planner = planner;
        configs.push_back(options);
      }
    }
  }
  return configs;
}

std::vector<Binding> SortedBindings(const Instance& instance,
                                    const std::vector<Atom>& atoms,
                                    const Binding& initial,
                                    const EvalOptions& options) {
  std::vector<Binding> results = EvaluateAll(instance, atoms, initial, options);
  std::sort(results.begin(), results.end());
  return results;
}

/// True when every variable the atoms mention is bound by `initial` — the
/// shape of findHom's RHS containment checks, for which the evaluator
/// promises planner-invariant work counters.
bool FullyBound(const std::vector<Atom>& atoms, const Binding& initial) {
  for (const Atom& atom : atoms) {
    for (const Term& term : atom.terms) {
      if (term.is_var() && !initial.IsBound(term.var())) return false;
    }
  }
  return true;
}

std::string Describe(const EvalOptions& config) {
  std::string s = "reorder=";
  s += config.reorder_atoms ? '1' : '0';
  s += " indexes=";
  s += config.use_indexes ? '1' : '0';
  s += " planner=";
  s += config.planner == PlannerMode::kSelectivity ? "selectivity"
                                                   : "bound-count";
  return s;
}

/// Runs every configuration of one query against the naive baseline;
/// `what` labels failures. Exercises the plan cache as well: a cached
/// re-evaluation must agree with the fresh one.
void ExpectAllConfigsAgree(const Instance& instance,
                           const std::vector<Atom>& atoms,
                           const Binding& initial, const std::string& what) {
  EvalOptions naive;
  naive.reorder_atoms = false;
  naive.use_indexes = false;
  std::vector<Binding> expected =
      SortedBindings(instance, atoms, initial, naive);
  const bool fully_bound = FullyBound(atoms, initial);
  std::vector<uint64_t> fully_bound_levels;
  for (const EvalOptions& config : AllConfigs()) {
    // Batched (the config default) vs tuple-at-a-time: the match sequences
    // must be byte-identical, in order, before any sorting.
    EvalOptions tuple = config;
    tuple.exec = ExecMode::kTupleAtATime;
    EvalStats batch_stats;
    EvalStats tuple_stats;
    std::vector<Binding> batch_seq =
        EvaluateAll(instance, atoms, initial, config, &batch_stats);
    std::vector<Binding> tuple_seq =
        EvaluateAll(instance, atoms, initial, tuple, &tuple_stats);
    EXPECT_EQ(batch_seq, tuple_seq)
        << what << " batch vs tuple-at-a-time sequence diverged ("
        << Describe(config) << ")";
    EXPECT_EQ(batch_stats.tuples_scanned, tuple_stats.tuples_scanned)
        << what << " batch scan count diverged (" << Describe(config) << ")";
    std::sort(batch_seq.begin(), batch_seq.end());
    EXPECT_EQ(expected, batch_seq)
        << what << " diverged (" << Describe(config) << ")";
    if (fully_bound) {
      fully_bound_levels.push_back(batch_stats.levels_entered);
      fully_bound_levels.push_back(tuple_stats.levels_entered);
    }
  }
  // The fully-bound invariant: identical levels_entered in every
  // configuration and exec mode (same short-circuit atom, original order).
  for (size_t i = 1; i < fully_bound_levels.size(); ++i) {
    EXPECT_EQ(fully_bound_levels[0], fully_bound_levels[i])
        << what << " fully-bound levels_entered drifted across configs";
  }
  // Cached plans: evaluate twice through one cache (second run hits, and
  // runs tuple-at-a-time — exec modes share plan entries) and once through
  // HasMatch; multisets and existence must match the baseline.
  PlanCache cache;
  EvalOptions cached;
  cached.plan_cache = &cache;
  for (int round = 0; round < 2; ++round) {
    cached.exec = round == 0 ? ExecMode::kBatch : ExecMode::kTupleAtATime;
    Binding b = initial;
    MatchIterator it(instance, atoms, &b, cached, /*plan_key=*/0x5eed);
    std::vector<Binding> results;
    while (it.Next()) results.push_back(b);
    std::sort(results.begin(), results.end());
    EXPECT_EQ(expected, results) << what << " diverged with plan cache, round "
                                 << round;
  }
  EXPECT_EQ(!expected.empty(),
            HasMatch(instance, atoms, initial, cached, nullptr, 0x5eed))
      << what << " HasMatch diverged";
}

/// Differential checks for every query a scenario's dependencies induce:
/// each tgd LHS (unbound), each tgd RHS under a real LHS match (partially
/// bound — existentials stay free), and each egd LHS.
void CheckScenario(const Scenario& scenario, const std::string& label) {
  const SchemaMapping& mapping = *scenario.mapping;
  // Populate the target with the chase so target-side queries see data.
  ChaseResult chased = Chase(mapping, *scenario.source);
  const Instance& target = chased.outcome == ChaseOutcome::kSuccess
                               ? *chased.target
                               : *scenario.target;
  for (size_t i = 0; i < mapping.NumTgds(); ++i) {
    const Tgd& tgd = mapping.tgd(static_cast<TgdId>(i));
    const Instance& lhs_instance =
        tgd.source_to_target() ? *scenario.source : target;
    std::string what = label + "/" + tgd.name();
    Binding empty(tgd.num_vars());
    ExpectAllConfigsAgree(lhs_instance, tgd.lhs(), empty, what + "/lhs");
    // Partially bound: the RHS as findHom would issue it, with universal
    // variables pinned by an actual LHS match.
    std::vector<Binding> matches =
        EvaluateAll(lhs_instance, tgd.lhs(), empty);
    if (!matches.empty()) {
      ExpectAllConfigsAgree(target, tgd.rhs(), matches.front(),
                            what + "/rhs-bound");
    }
  }
  for (size_t e = 0; e < mapping.NumEgds(); ++e) {
    const Egd& egd = mapping.egd(static_cast<EgdId>(e));
    ExpectAllConfigsAgree(target, egd.lhs(), Binding(egd.num_vars()),
                          label + "/" + egd.name());
  }
}

TEST(DifferentialEval, CreditCardScenario) {
  CheckScenario(testing::CreditCardScenario(), "creditcard");
}

TEST(DifferentialEval, Example35Scenario) {
  CheckScenario(ParseScenario(testing::Example35Text(/*extended=*/true)),
                "example35");
}

TEST(DifferentialEval, RelationalScenario) {
  RelationalScenarioOptions options;
  options.joins = 2;
  options.groups = 2;
  options.sizes.units = 40;
  CheckScenario(BuildRelationalScenario(options), "relational");
}

TEST(DifferentialEval, DeepHierarchyScenario) {
  DeepHierarchyOptions options;
  CheckScenario(BuildDeepHierarchyScenario(options), "hierarchy");
}

TEST(DifferentialEval, DblpScenario) {
  CheckScenario(BuildDblpScenario(), "dblp");
}

TEST(DifferentialEval, MondialScenario) {
  CheckScenario(BuildMondialScenario(), "mondial");
}

TEST(DifferentialEval, RandomScenarios) {
  // >= 200 random scenarios spanning fan-out (dense joins vs. key-like
  // columns), arity, and dependency-count regimes.
  for (uint64_t seed = 0; seed < 220; ++seed) {
    RandomScenarioOptions options;
    options.seed = seed;
    options.source_relations = 2 + static_cast<int>(seed % 3);
    options.target_relations = 2 + static_cast<int>(seed % 4);
    options.max_arity = 2 + static_cast<int>(seed % 3);
    options.st_tgds = 2 + static_cast<int>(seed % 3);
    options.target_tgds = 1 + static_cast<int>(seed % 3);
    options.egds = static_cast<int>(seed % 2);
    options.rows_per_relation = 6 + static_cast<int>(seed % 10);
    options.fanout = 2 + static_cast<int>(seed % 5);
    Scenario scenario = BuildRandomScenario(options);
    CheckScenario(scenario, "random-" + std::to_string(seed));
    if (::testing::Test::HasFailure()) break;
  }
}

}  // namespace
}  // namespace spider
