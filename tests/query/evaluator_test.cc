#include "query/evaluator.h"

#include <gtest/gtest.h>

#include "base/status.h"

namespace spider {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() : schema_("test") {
    edge_ = schema_.AddRelation("Edge", {"src", "dst"});
    node_ = schema_.AddRelation("Node", {"id", "label"});
    inst_ = std::make_unique<Instance>(&schema_);
    // A small graph: 1->2, 2->3, 1->3, 3->4.
    AddEdge(1, 2);
    AddEdge(2, 3);
    AddEdge(1, 3);
    AddEdge(3, 4);
    for (int n = 1; n <= 4; ++n) {
      inst_->Insert(node_, Tuple({Value::Int(n),
                                  Value::Str(n % 2 == 0 ? "even" : "odd")}));
    }
  }

  void AddEdge(int a, int b) {
    inst_->Insert(edge_, Tuple({Value::Int(a), Value::Int(b)}));
  }

  Atom EdgeAtom(Term a, Term b) {
    Atom atom;
    atom.relation = edge_;
    atom.terms = {a, b};
    return atom;
  }
  Atom NodeAtom(Term a, Term b) {
    Atom atom;
    atom.relation = node_;
    atom.terms = {a, b};
    return atom;
  }

  Schema schema_;
  RelationId edge_;
  RelationId node_;
  std::unique_ptr<Instance> inst_;
};

TEST_F(EvaluatorTest, SingleAtomScan) {
  Binding b(2);
  MatchIterator it(*inst_, {EdgeAtom(Term::Var(0), Term::Var(1))}, &b);
  int count = 0;
  while (it.Next()) ++count;
  EXPECT_EQ(count, 4);
}

TEST_F(EvaluatorTest, ConstantSelection) {
  Binding b(1);
  MatchIterator it(*inst_, {EdgeAtom(Term::Const(Value::Int(1)),
                                     Term::Var(0))},
                   &b);
  std::vector<int64_t> dsts;
  while (it.Next()) dsts.push_back(b.Get(0).AsInt());
  EXPECT_EQ(dsts.size(), 2u);  // 1->2, 1->3
}

TEST_F(EvaluatorTest, BoundVariableActsAsSelection) {
  Binding b(2);
  b.Set(0, Value::Int(3));
  MatchIterator it(*inst_, {EdgeAtom(Term::Var(0), Term::Var(1))}, &b);
  ASSERT_TRUE(it.Next());
  EXPECT_EQ(b.Get(1).AsInt(), 4);
  EXPECT_FALSE(it.Next());
  // The initial binding is restored on exhaustion.
  EXPECT_TRUE(b.IsBound(0));
  EXPECT_FALSE(b.IsBound(1));
}

TEST_F(EvaluatorTest, TwoAtomJoin) {
  // Edge(x, y) & Edge(y, z): paths of length 2.
  Binding b(3);
  MatchIterator it(*inst_,
                   {EdgeAtom(Term::Var(0), Term::Var(1)),
                    EdgeAtom(Term::Var(1), Term::Var(2))},
                   &b);
  int count = 0;
  while (it.Next()) ++count;
  // 1->2->3, 2->3->4, 1->3->4.
  EXPECT_EQ(count, 3);
}

TEST_F(EvaluatorTest, SelfJoinWithRepeatedVariable) {
  // Edge(x, x): none in this graph.
  Binding b(1);
  MatchIterator it(*inst_, {EdgeAtom(Term::Var(0), Term::Var(0))}, &b);
  EXPECT_FALSE(it.Next());
  AddEdge(7, 7);
  Binding b2(1);
  MatchIterator it2(*inst_, {EdgeAtom(Term::Var(0), Term::Var(0))}, &b2);
  ASSERT_TRUE(it2.Next());
  EXPECT_EQ(b2.Get(0).AsInt(), 7);
}

TEST_F(EvaluatorTest, CrossProductWhenNoSharedVars) {
  Binding b(4);
  MatchIterator it(*inst_,
                   {EdgeAtom(Term::Var(0), Term::Var(1)),
                    EdgeAtom(Term::Var(2), Term::Var(3))},
                   &b);
  int count = 0;
  while (it.Next()) ++count;
  EXPECT_EQ(count, 16);
}

TEST_F(EvaluatorTest, EmptyConjunctionMatchesOnce) {
  Binding b(0);
  MatchIterator it(*inst_, {}, &b);
  EXPECT_TRUE(it.Next());
  EXPECT_FALSE(it.Next());
}

TEST_F(EvaluatorTest, TriangleQuery) {
  AddEdge(4, 1);  // close a cycle 1->3->4->1
  Binding b(3);
  MatchIterator it(*inst_,
                   {EdgeAtom(Term::Var(0), Term::Var(1)),
                    EdgeAtom(Term::Var(1), Term::Var(2)),
                    EdgeAtom(Term::Var(2), Term::Var(0))},
                   &b);
  std::vector<std::vector<int64_t>> triangles;
  while (it.Next()) {
    triangles.push_back({b.Get(0).AsInt(), b.Get(1).AsInt(),
                         b.Get(2).AsInt()});
  }
  // 1->3->4->1 in its three rotations.
  EXPECT_EQ(triangles.size(), 3u);
}

TEST_F(EvaluatorTest, MixedRelationsJoin) {
  // Edge(x, y) & Node(y, "even").
  Binding b(2);
  MatchIterator it(
      *inst_,
      {EdgeAtom(Term::Var(0), Term::Var(1)),
       NodeAtom(Term::Var(1), Term::Const(Value::Str("even")))},
      &b);
  int count = 0;
  while (it.Next()) ++count;
  EXPECT_EQ(count, 2);  // 1->2 and 3->4.
}

TEST_F(EvaluatorTest, NoIndexesMatchesIndexedResults) {
  EvalOptions no_index;
  no_index.use_indexes = false;
  Binding b1(3);
  Binding b2(3);
  std::vector<Atom> atoms = {EdgeAtom(Term::Var(0), Term::Var(1)),
                             EdgeAtom(Term::Var(1), Term::Var(2))};
  std::vector<Binding> with = EvaluateAll(*inst_, atoms, Binding(3));
  std::vector<Binding> without = EvaluateAll(*inst_, atoms, Binding(3),
                                             no_index);
  EXPECT_EQ(with.size(), without.size());
}

TEST_F(EvaluatorTest, NoReorderingMatchesReorderedResults) {
  EvalOptions no_reorder;
  no_reorder.reorder_atoms = false;
  std::vector<Atom> atoms = {EdgeAtom(Term::Var(0), Term::Var(1)),
                             EdgeAtom(Term::Const(Value::Int(1)),
                                      Term::Var(0))};
  std::vector<Binding> a = EvaluateAll(*inst_, atoms, Binding(2));
  std::vector<Binding> b = EvaluateAll(*inst_, atoms, Binding(2), no_reorder);
  EXPECT_EQ(a.size(), b.size());
}

TEST_F(EvaluatorTest, HasMatch) {
  EXPECT_TRUE(HasMatch(*inst_, {EdgeAtom(Term::Const(Value::Int(1)),
                                         Term::Var(0))},
                       Binding(1)));
  EXPECT_FALSE(HasMatch(*inst_, {EdgeAtom(Term::Const(Value::Int(99)),
                                          Term::Var(0))},
                        Binding(1)));
}

TEST_F(EvaluatorTest, ConstantMismatchInAtomRejected) {
  // Atom over a relation not in the instance's schema fails validation.
  Atom bad;
  bad.relation = 42;
  bad.terms = {Term::Var(0)};
  Binding b(1);
  EXPECT_THROW(MatchIterator(*inst_, {bad}, &b), SpiderError);
}

TEST_F(EvaluatorTest, ArityMismatchRejected) {
  Atom bad;
  bad.relation = edge_;
  bad.terms = {Term::Var(0)};
  Binding b(1);
  EXPECT_THROW(MatchIterator(*inst_, {bad}, &b), SpiderError);
}

TEST_F(EvaluatorTest, TuplesScannedGrowsWithWork) {
  Binding b(2);
  MatchIterator it(*inst_, {EdgeAtom(Term::Var(0), Term::Var(1))}, &b);
  while (it.Next()) {
  }
  EXPECT_GE(it.tuples_scanned(), 4u);
}

TEST_F(EvaluatorTest, IndexProbeScansFewerTuplesThanScan) {
  // Selection on a constant: the index probe touches only matching rows.
  for (int i = 10; i < 60; ++i) AddEdge(i, i + 1);
  std::vector<Atom> atoms = {EdgeAtom(Term::Const(Value::Int(1)),
                                      Term::Var(0))};
  Binding b1(1);
  MatchIterator indexed(*inst_, atoms, &b1);
  while (indexed.Next()) {
  }
  EvalOptions no_index;
  no_index.use_indexes = false;
  Binding b2(1);
  MatchIterator scanning(*inst_, atoms, &b2, no_index);
  while (scanning.Next()) {
  }
  EXPECT_LT(indexed.tuples_scanned(), scanning.tuples_scanned());
}

TEST_F(EvaluatorTest, ReorderingStartsFromTheBoundAtom) {
  // Edge(x, y) & Edge(1, x): the planner must evaluate the selective
  // second atom first; without reordering the scan-heavy order stands.
  for (int i = 10; i < 60; ++i) AddEdge(i, i + 1);
  std::vector<Atom> atoms = {EdgeAtom(Term::Var(0), Term::Var(1)),
                             EdgeAtom(Term::Const(Value::Int(1)),
                                      Term::Var(0))};
  EvalOptions no_index_reorder;
  no_index_reorder.use_indexes = false;
  Binding b1(2);
  MatchIterator reordered(*inst_, atoms, &b1, no_index_reorder);
  while (reordered.Next()) {
  }
  EvalOptions no_index_no_reorder = no_index_reorder;
  no_index_no_reorder.reorder_atoms = false;
  Binding b2(2);
  MatchIterator in_order(*inst_, atoms, &b2, no_index_no_reorder);
  while (in_order.Next()) {
  }
  EXPECT_LT(reordered.tuples_scanned(), in_order.tuples_scanned());
}

TEST_F(EvaluatorTest, EvaluateAllReturnsDistinctBindings) {
  std::vector<Binding> all = EvaluateAll(
      *inst_, {EdgeAtom(Term::Var(0), Term::Var(1))}, Binding(2));
  EXPECT_EQ(all.size(), 4u);
  for (const Binding& b : all) {
    EXPECT_TRUE(b.IsBound(0));
    EXPECT_TRUE(b.IsBound(1));
  }
}

}  // namespace
}  // namespace spider
