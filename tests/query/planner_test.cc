// Tests for the selectivity-aware planner, the EvalStats counters, the
// per-dependency plan cache, and the atom-term validation regressions.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "base/status.h"
#include "query/evaluator.h"
#include "query/plan_cache.h"
#include "storage/instance.h"

namespace spider {
namespace {

/// A skewed instance tailored to expose planner differences:
///   Big(k, tag): 200 rows; column `k` is key-like (distinct), column `tag`
///     is a constant 7 on every row (worthless to probe).
///   Small(k): 3 rows.
/// The join Small(x) & Big(x, y) should start from Small under a cost-based
/// planner; the bound-count planner has no reason to prefer it when atom
/// order favors Big.
class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : schema_("planner") {
    big_ = schema_.AddRelation("Big", {"k", "tag"});
    small_ = schema_.AddRelation("Small", {"k"});
    inst_ = std::make_unique<Instance>(&schema_);
    for (int i = 0; i < 200; ++i) {
      inst_->Insert(big_, Tuple({Value::Int(i), Value::Int(7)}));
    }
    for (int i = 0; i < 3; ++i) {
      inst_->Insert(small_, Tuple({Value::Int(i * 50)}));
    }
  }

  Atom BigAtom(Term k, Term tag) { return Atom{big_, {k, tag}}; }
  Atom SmallAtom(Term k) { return Atom{small_, {k}}; }

  uint64_t ScanCount(const std::vector<Atom>& atoms, size_t num_vars,
                     PlannerMode planner) {
    EvalOptions options;
    options.planner = planner;
    Binding b(num_vars);
    MatchIterator it(*inst_, atoms, &b, options);
    while (it.Next()) {
    }
    return it.tuples_scanned();
  }

  Schema schema_;
  RelationId big_;
  RelationId small_;
  std::unique_ptr<Instance> inst_;
};

TEST_F(PlannerTest, SelectivityPlannerScansLess) {
  // Atoms listed Big-first: both atoms have zero bound positions at plan
  // time, so the bound-count planner starts with... the smaller relation
  // (its tie-break). Force the interesting case with a constant: the tag
  // column binds one position of Big, so bound-count greedily starts with
  // Big (1 bound position beats 0) and scans all 200 rows; the selectivity
  // planner knows tag=7 selects everything (posting list 200) while Small
  // yields 3 rows with a key probe into Big, and starts with Small.
  std::vector<Atom> atoms = {
      BigAtom(Term::Var(0), Term::Const(Value::Int(7))),
      SmallAtom(Term::Var(0)),
  };
  uint64_t bound_count = ScanCount(atoms, 1, PlannerMode::kBoundCount);
  uint64_t selectivity = ScanCount(atoms, 1, PlannerMode::kSelectivity);
  EXPECT_LT(selectivity, bound_count);
  EXPECT_LE(selectivity, 3 + 3 * 2u);  // Small scan + three key probes.
}

TEST_F(PlannerTest, FullyBoundAtomIsOnePointLookup) {
  // Fully bound Big atom under kSelectivity: one exact-tuple point lookup —
  // no posting-list probes at all, one row fetched. kBoundCount keeps the
  // seed probe-and-scan access path (and consults no statistics).
  Atom atom = BigAtom(Term::Const(Value::Int(5)), Term::Const(Value::Int(7)));
  {
    EvalOptions options;  // defaults to kSelectivity
    Binding b(0);
    MatchIterator it(*inst_, {atom}, &b, options);
    EXPECT_TRUE(it.plan().point_lookup);
    ASSERT_TRUE(it.Next());
    EXPECT_EQ(1u, it.tuples_scanned());
    EXPECT_EQ(0u, it.stats().index_probes);
    EXPECT_EQ(1u, it.stats().point_lookups);
    EXPECT_FALSE(it.Next());
  }
  {
    EvalOptions options;
    options.planner = PlannerMode::kBoundCount;
    Binding b(0);
    MatchIterator it(*inst_, {atom}, &b, options);
    EXPECT_FALSE(it.plan().point_lookup);
    ASSERT_TRUE(it.Next());
    // Seed path: probes column k (1-row posting list), scans the hit.
    EXPECT_EQ(1u, it.tuples_scanned());
    EXPECT_EQ(1u, it.stats().index_probes);
    EXPECT_EQ(0u, it.stats().point_lookups);
  }
}

TEST_F(PlannerTest, FullyBoundConjunctionLevelsArePlannerInvariant) {
  // A fully-bound conjunction keeps the caller's atom order in EVERY
  // indexed configuration, so both planners short-circuit a failed
  // existence check on the same atom: levels_entered is planner-invariant
  // (the BENCH_planner chase drift fix). Access paths — and therefore
  // probe/scan counters — still differ per mode.
  std::vector<Atom> atoms = {
      BigAtom(Term::Const(Value::Int(5)), Term::Const(Value::Int(7))),
      SmallAtom(Term::Const(Value::Int(50))),
  };
  std::vector<Atom> missing = {
      BigAtom(Term::Const(Value::Int(5)), Term::Const(Value::Int(999))),
      SmallAtom(Term::Const(Value::Int(50))),
  };
  std::vector<EvalStats> hit_stats, miss_stats;
  for (PlannerMode planner :
       {PlannerMode::kBoundCount, PlannerMode::kSelectivity}) {
    for (bool reorder : {false, true}) {
      EvalOptions options;
      options.planner = planner;
      options.reorder_atoms = reorder;
      Binding b(0);
      MatchIterator hit(*inst_, atoms, &b, options);
      EXPECT_TRUE(hit.Next());
      hit_stats.push_back(hit.stats());
      Binding b2(0);
      MatchIterator miss(*inst_, missing, &b2, options);
      EXPECT_FALSE(miss.Next());
      miss_stats.push_back(miss.stats());
    }
  }
  for (size_t i = 1; i < hit_stats.size(); ++i) {
    EXPECT_EQ(hit_stats[0].levels_entered, hit_stats[i].levels_entered);
    EXPECT_EQ(miss_stats[0].levels_entered, miss_stats[i].levels_entered);
  }
  EXPECT_EQ(2u, hit_stats[0].levels_entered);
  // The miss stops at the first (failed) atom in every mode: one level —
  // even though Big(5, 999) and Small(50) live in differently-sized
  // relations, no mode reorders them.
  EXPECT_EQ(1u, miss_stats[0].levels_entered);
}

TEST_F(PlannerTest, CheapestPostingProbedFirstUnderBudget) {
  // Tag(tag, k, v): column tag's posting list is the whole relation, column
  // k's is a single row; v keeps the atom from being fully bound. The seed
  // engine probes the first bound column (tag) and scans its 200-row list;
  // the selectivity engine probes the cheapest expected column (k) first
  // and the probe budget stops it there — the 200-expected tag probe can't
  // pay for itself against a 1-row list in hand.
  Schema schema("probe");
  RelationId tag_rel = schema.AddRelation("Tag", {"tag", "k", "v"});
  Instance inst(&schema);
  for (int i = 0; i < 200; ++i) {
    inst.Insert(tag_rel,
                Tuple({Value::Int(7), Value::Int(i), Value::Int(i * 2)}));
  }
  Atom atom{tag_rel,
            {Term::Const(Value::Int(7)), Term::Const(Value::Int(5)),
             Term::Var(0)}};
  for (PlannerMode planner :
       {PlannerMode::kBoundCount, PlannerMode::kSelectivity}) {
    EvalOptions options;
    options.planner = planner;
    Binding b(1);
    MatchIterator it(inst, {atom}, &b, options);
    ASSERT_TRUE(it.Next());
    if (planner == PlannerMode::kSelectivity) {
      EXPECT_EQ(1u, it.tuples_scanned());
      EXPECT_EQ(1u, it.stats().index_probes);  // budget: second probe skipped
    } else {
      // First bound column is `tag`; its posting list holds all 200 rows
      // and the match (k=5) is the sixth of them.
      EXPECT_EQ(6u, it.tuples_scanned());
      EXPECT_EQ(1u, it.stats().index_probes);
    }
  }
}

TEST_F(PlannerTest, SelectivityProbesNeverExceedBoundColumns) {
  // Regression for the wall-clock regression's root cause: under the probe
  // budget, kSelectivity issues at most one probe per bound column per
  // level entry (and typically far fewer). Join S(x) & T(x, 7, y): T's
  // level is entered once per S row with two bound columns (k and tag) and
  // one produced column keeping it off the point-lookup path.
  Schema schema("budget");
  RelationId s_rel = schema.AddRelation("S", {"k"});
  RelationId t_rel = schema.AddRelation("T", {"k", "tag", "v"});
  Instance inst(&schema);
  for (int i = 0; i < 3; ++i) inst.Insert(s_rel, Tuple({Value::Int(i * 50)}));
  for (int i = 0; i < 200; ++i) {
    inst.Insert(t_rel,
                Tuple({Value::Int(i), Value::Int(7), Value::Int(i + 1)}));
  }
  std::vector<Atom> atoms = {
      Atom{s_rel, {Term::Var(0)}},
      Atom{t_rel,
           {Term::Var(0), Term::Const(Value::Int(7)), Term::Var(1)}},
  };
  EvalOptions options;
  options.planner = PlannerMode::kSelectivity;
  Binding b(2);
  MatchIterator it(inst, atoms, &b, options);
  uint64_t matches = 0;
  while (it.Next()) ++matches;
  EXPECT_EQ(3u, matches);
  // S's level has no bound columns (0 probes); T's has 2 per entry.
  const uint64_t t_entries = it.stats().levels_entered - 1;
  EXPECT_EQ(3u, t_entries);
  EXPECT_LE(it.stats().index_probes, 2 * t_entries);
  EXPECT_GE(it.stats().index_probes, t_entries);  // at least the primary
}

TEST_F(PlannerTest, TieBreakIsDeterministicIntegerComparison) {
  // Two relations with byte-identical statistics: every cost term ties, so
  // the planner must fall back to the original atom position — an exact
  // integer comparison, immune to float summation-order differences across
  // platforms. Pin both the forward and the reversed listing.
  Schema schema("tie");
  RelationId r1 = schema.AddRelation("R1", {"a", "b"});
  RelationId r2 = schema.AddRelation("R2", {"a", "b"});
  Instance inst(&schema);
  for (int i = 0; i < 50; ++i) {
    inst.Insert(r1, Tuple({Value::Int(i), Value::Int(i % 5)}));
    inst.Insert(r2, Tuple({Value::Int(i), Value::Int(i % 5)}));
  }
  EvalOptions options;
  options.planner = PlannerMode::kSelectivity;
  Binding b(4);
  MatchIterator forward(
      inst,
      {Atom{r1, {Term::Var(0), Term::Var(1)}},
       Atom{r2, {Term::Var(2), Term::Var(3)}}},
      &b, options);
  EXPECT_EQ((std::vector<size_t>{0, 1}), forward.plan().order);
  Binding b2(4);
  MatchIterator reversed(
      inst,
      {Atom{r2, {Term::Var(0), Term::Var(1)}},
       Atom{r1, {Term::Var(2), Term::Var(3)}}},
      &b2, options);
  EXPECT_EQ((std::vector<size_t>{0, 1}), reversed.plan().order);
}

TEST_F(PlannerTest, StatsCountersPopulated) {
  std::vector<Atom> atoms = {SmallAtom(Term::Var(0)),
                             BigAtom(Term::Var(0), Term::Var(1))};
  EvalOptions options;
  Binding b(2);
  MatchIterator it(*inst_, atoms, &b, options);
  while (it.Next()) {
  }
  const EvalStats& stats = it.stats();
  EXPECT_GT(stats.tuples_scanned, 0u);
  EXPECT_GT(stats.index_probes, 0u);
  EXPECT_GT(stats.levels_entered, 0u);
  EXPECT_EQ(1u, stats.plans_built);
  EXPECT_EQ(0u, stats.plan_cache_hits);
}

TEST_F(PlannerTest, PlanCacheHitsAndInvalidation) {
  std::vector<Atom> atoms = {SmallAtom(Term::Var(0)),
                             BigAtom(Term::Var(0), Term::Var(1))};
  PlanCache cache;
  EvalOptions options;
  options.plan_cache = &cache;
  auto run = [&] {
    Binding b(2);
    MatchIterator it(*inst_, atoms, &b, options, /*plan_key=*/42);
    while (it.Next()) {
    }
    return it.stats();
  };
  EvalStats first = run();
  EXPECT_EQ(1u, first.plans_built);
  EXPECT_EQ(0u, first.plan_cache_hits);
  EvalStats second = run();
  EXPECT_EQ(0u, second.plans_built);
  EXPECT_EQ(1u, second.plan_cache_hits);
  EXPECT_EQ(1u, cache.size());

  // Mutating the instance bumps its version; the cached plan is stale.
  inst_->Insert(small_, Tuple({Value::Int(199)}));
  EvalStats third = run();
  EXPECT_EQ(1u, third.plans_built);
  EXPECT_EQ(0u, third.plan_cache_hits);

  // A zero key opts out of the cache entirely.
  Binding b(2);
  MatchIterator it(*inst_, atoms, &b, options, MatchIterator::kNoPlanKey);
  while (it.Next()) {
  }
  EXPECT_EQ(1u, it.stats().plans_built);
  EXPECT_EQ(1u, cache.size());
}

TEST_F(PlannerTest, CachedPlanMatchesFreshResults) {
  // The same key is reused for bindings with the same bound-variable
  // signature but different values — results must match fresh evaluation.
  std::vector<Atom> atoms = {BigAtom(Term::Var(0), Term::Var(1)),
                             SmallAtom(Term::Var(0))};
  PlanCache cache;
  EvalOptions cached;
  cached.plan_cache = &cache;
  for (int key = 0; key < 3; ++key) {
    Binding init(2);
    init.Set(0, Value::Int(key * 50));
    std::vector<Binding> fresh = EvaluateAll(*inst_, atoms, init);
    Binding b = init;
    MatchIterator it(*inst_, atoms, &b, cached, /*plan_key=*/7);
    std::vector<Binding> via_cache;
    while (it.Next()) via_cache.push_back(b);
    EXPECT_EQ(fresh, via_cache);
  }
}

TEST(TermValidation, NegativeVarIdRejected) {
  // Regression: Term::Var(-1) used to masquerade as a constant (is_var()
  // keys on the sign) and later indexed Binding slots out of range.
  EXPECT_THROW(Term::Var(-1), SpiderError);
  EXPECT_THROW(Term::Var(-1000), SpiderError);
  EXPECT_NO_THROW(Term::Var(0));
}

TEST(TermValidation, MatchIteratorRejectsOutOfRangeVar) {
  Schema schema("v");
  RelationId rel = schema.AddRelation("R", {"a"});
  Instance inst(&schema);
  inst.Insert(rel, Tuple({Value::Int(1)}));
  Atom atom{rel, {Term::Var(3)}};
  Binding too_small(2);  // var 3 does not fit
  EXPECT_THROW(MatchIterator(inst, {atom}, &too_small), SpiderError);
  Binding fits(4);
  MatchIterator ok(inst, {atom}, &fits);
  EXPECT_TRUE(ok.Next());
}

}  // namespace
}  // namespace spider
