// Tests for the selectivity-aware planner, the EvalStats counters, the
// per-dependency plan cache, and the atom-term validation regressions.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "base/status.h"
#include "query/evaluator.h"
#include "query/plan_cache.h"
#include "storage/instance.h"

namespace spider {
namespace {

/// A skewed instance tailored to expose planner differences:
///   Big(k, tag): 200 rows; column `k` is key-like (distinct), column `tag`
///     is a constant 7 on every row (worthless to probe).
///   Small(k): 3 rows.
/// The join Small(x) & Big(x, y) should start from Small under a cost-based
/// planner; the bound-count planner has no reason to prefer it when atom
/// order favors Big.
class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : schema_("planner") {
    big_ = schema_.AddRelation("Big", {"k", "tag"});
    small_ = schema_.AddRelation("Small", {"k"});
    inst_ = std::make_unique<Instance>(&schema_);
    for (int i = 0; i < 200; ++i) {
      inst_->Insert(big_, Tuple({Value::Int(i), Value::Int(7)}));
    }
    for (int i = 0; i < 3; ++i) {
      inst_->Insert(small_, Tuple({Value::Int(i * 50)}));
    }
  }

  Atom BigAtom(Term k, Term tag) { return Atom{big_, {k, tag}}; }
  Atom SmallAtom(Term k) { return Atom{small_, {k}}; }

  uint64_t ScanCount(const std::vector<Atom>& atoms, size_t num_vars,
                     PlannerMode planner) {
    EvalOptions options;
    options.planner = planner;
    Binding b(num_vars);
    MatchIterator it(*inst_, atoms, &b, options);
    while (it.Next()) {
    }
    return it.tuples_scanned();
  }

  Schema schema_;
  RelationId big_;
  RelationId small_;
  std::unique_ptr<Instance> inst_;
};

TEST_F(PlannerTest, SelectivityPlannerScansLess) {
  // Atoms listed Big-first: both atoms have zero bound positions at plan
  // time, so the bound-count planner starts with... the smaller relation
  // (its tie-break). Force the interesting case with a constant: the tag
  // column binds one position of Big, so bound-count greedily starts with
  // Big (1 bound position beats 0) and scans all 200 rows; the selectivity
  // planner knows tag=7 selects everything (posting list 200) while Small
  // yields 3 rows with a key probe into Big, and starts with Small.
  std::vector<Atom> atoms = {
      BigAtom(Term::Var(0), Term::Const(Value::Int(7))),
      SmallAtom(Term::Var(0)),
  };
  uint64_t bound_count = ScanCount(atoms, 1, PlannerMode::kBoundCount);
  uint64_t selectivity = ScanCount(atoms, 1, PlannerMode::kSelectivity);
  EXPECT_LT(selectivity, bound_count);
  EXPECT_LE(selectivity, 3 + 3 * 2u);  // Small scan + three key probes.
}

TEST_F(PlannerTest, SelectivityProbesAllBoundColumns) {
  // Fully bound Big atom: the selectivity engine probes both columns
  // (column k's posting list has 1 entry, tag's has 200), keeps the
  // smaller, and scans exactly one candidate row.
  Atom atom = BigAtom(Term::Const(Value::Int(5)), Term::Const(Value::Int(7)));
  EvalOptions options;
  Binding b(0);
  MatchIterator it(*inst_, {atom}, &b, options);
  ASSERT_TRUE(it.Next());
  EXPECT_EQ(1u, it.tuples_scanned());
  EXPECT_EQ(2u, it.stats().index_probes);  // probed both, kept the smaller
}

TEST_F(PlannerTest, SmallestPostingBeatsFirstColumn) {
  // Tag(tag, k): the first column's posting list is the whole relation, the
  // second is a single row. The seed engine probes the first bound column
  // and scans 200 candidates; the selectivity engine probes both and scans
  // the 1-row list.
  Schema schema("probe");
  RelationId tag_rel = schema.AddRelation("Tag", {"tag", "k"});
  Instance inst(&schema);
  for (int i = 0; i < 200; ++i) {
    inst.Insert(tag_rel, Tuple({Value::Int(7), Value::Int(i)}));
  }
  Atom atom{tag_rel, {Term::Const(Value::Int(7)), Term::Const(Value::Int(5))}};
  for (PlannerMode planner :
       {PlannerMode::kBoundCount, PlannerMode::kSelectivity}) {
    EvalOptions options;
    options.planner = planner;
    Binding b(0);
    MatchIterator it(inst, {atom}, &b, options);
    ASSERT_TRUE(it.Next());
    if (planner == PlannerMode::kSelectivity) {
      EXPECT_EQ(1u, it.tuples_scanned());
    } else {
      // First bound column is `tag`; its posting list holds all 200 rows
      // and the match (k=5) is the sixth of them.
      EXPECT_EQ(6u, it.tuples_scanned());
    }
  }
}

TEST_F(PlannerTest, StatsCountersPopulated) {
  std::vector<Atom> atoms = {SmallAtom(Term::Var(0)),
                             BigAtom(Term::Var(0), Term::Var(1))};
  EvalOptions options;
  Binding b(2);
  MatchIterator it(*inst_, atoms, &b, options);
  while (it.Next()) {
  }
  const EvalStats& stats = it.stats();
  EXPECT_GT(stats.tuples_scanned, 0u);
  EXPECT_GT(stats.index_probes, 0u);
  EXPECT_GT(stats.levels_entered, 0u);
  EXPECT_EQ(1u, stats.plans_built);
  EXPECT_EQ(0u, stats.plan_cache_hits);
}

TEST_F(PlannerTest, PlanCacheHitsAndInvalidation) {
  std::vector<Atom> atoms = {SmallAtom(Term::Var(0)),
                             BigAtom(Term::Var(0), Term::Var(1))};
  PlanCache cache;
  EvalOptions options;
  options.plan_cache = &cache;
  auto run = [&] {
    Binding b(2);
    MatchIterator it(*inst_, atoms, &b, options, /*plan_key=*/42);
    while (it.Next()) {
    }
    return it.stats();
  };
  EvalStats first = run();
  EXPECT_EQ(1u, first.plans_built);
  EXPECT_EQ(0u, first.plan_cache_hits);
  EvalStats second = run();
  EXPECT_EQ(0u, second.plans_built);
  EXPECT_EQ(1u, second.plan_cache_hits);
  EXPECT_EQ(1u, cache.size());

  // Mutating the instance bumps its version; the cached plan is stale.
  inst_->Insert(small_, Tuple({Value::Int(199)}));
  EvalStats third = run();
  EXPECT_EQ(1u, third.plans_built);
  EXPECT_EQ(0u, third.plan_cache_hits);

  // A zero key opts out of the cache entirely.
  Binding b(2);
  MatchIterator it(*inst_, atoms, &b, options, MatchIterator::kNoPlanKey);
  while (it.Next()) {
  }
  EXPECT_EQ(1u, it.stats().plans_built);
  EXPECT_EQ(1u, cache.size());
}

TEST_F(PlannerTest, CachedPlanMatchesFreshResults) {
  // The same key is reused for bindings with the same bound-variable
  // signature but different values — results must match fresh evaluation.
  std::vector<Atom> atoms = {BigAtom(Term::Var(0), Term::Var(1)),
                             SmallAtom(Term::Var(0))};
  PlanCache cache;
  EvalOptions cached;
  cached.plan_cache = &cache;
  for (int key = 0; key < 3; ++key) {
    Binding init(2);
    init.Set(0, Value::Int(key * 50));
    std::vector<Binding> fresh = EvaluateAll(*inst_, atoms, init);
    Binding b = init;
    MatchIterator it(*inst_, atoms, &b, cached, /*plan_key=*/7);
    std::vector<Binding> via_cache;
    while (it.Next()) via_cache.push_back(b);
    EXPECT_EQ(fresh, via_cache);
  }
}

TEST(TermValidation, NegativeVarIdRejected) {
  // Regression: Term::Var(-1) used to masquerade as a constant (is_var()
  // keys on the sign) and later indexed Binding slots out of range.
  EXPECT_THROW(Term::Var(-1), SpiderError);
  EXPECT_THROW(Term::Var(-1000), SpiderError);
  EXPECT_NO_THROW(Term::Var(0));
}

TEST(TermValidation, MatchIteratorRejectsOutOfRangeVar) {
  Schema schema("v");
  RelationId rel = schema.AddRelation("R", {"a"});
  Instance inst(&schema);
  inst.Insert(rel, Tuple({Value::Int(1)}));
  Atom atom{rel, {Term::Var(3)}};
  Binding too_small(2);  // var 3 does not fit
  EXPECT_THROW(MatchIterator(inst, {atom}, &too_small), SpiderError);
  Binding fits(4);
  MatchIterator ok(inst, {atom}, &fits);
  EXPECT_TRUE(ok.Next());
}

}  // namespace
}  // namespace spider
