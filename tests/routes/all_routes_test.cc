#include "routes/route_forest.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "mapping/parser.h"
#include "routes/fact_util.h"
#include "routes/naive_print.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

FactRef TargetFact(const Scenario& s, const std::string& relation,
                   std::vector<Value> values) {
  return RequireTargetFact(*s.target, relation, Tuple(std::move(values)));
}

std::vector<std::string> BranchTgds(const RouteForest& forest,
                                    const RouteForest::Node& node,
                                    const SchemaMapping& mapping) {
  std::vector<std::string> names;
  for (const RouteForest::Branch& b : node.branches) {
    names.push_back(mapping.tgd(b.tgd).name());
  }
  return names;
}

class Example35Test : public ::testing::Test {
 protected:
  Example35Test() : scenario_(ParseScenario(testing::Example35Text(false))) {}

  FactRef T(int i) {
    return TargetFact(scenario_, "T" + std::to_string(i), {Value::Str("a")});
  }

  Scenario scenario_;
};

TEST_F(Example35Test, Figure5ForestShape) {
  RouteForest forest = ComputeAllRoutes(*scenario_.mapping, *scenario_.source,
                                        *scenario_.target, {T(7)});
  // Nodes for T7, T4, T6, T3, T5, T2, T1 — each expanded exactly once.
  EXPECT_EQ(forest.NumNodes(), 7u);
  EXPECT_EQ(forest.NumExpandedNodes(), 7u);
  // Branch counts per Fig. 5: T3 has two branches (sigma7 and sigma3), all
  // other tuples have one.
  EXPECT_EQ(forest.NumBranches(), 8u);
  const SchemaMapping& m = *scenario_.mapping;
  EXPECT_EQ(BranchTgds(forest, *forest.Find(T(7)), m),
            (std::vector<std::string>{"sigma6"}));
  EXPECT_EQ(BranchTgds(forest, *forest.Find(T(4)), m),
            (std::vector<std::string>{"sigma4"}));
  // sigma7 is declared before sigma3, so it is explored first, matching the
  // paper's figure.
  EXPECT_EQ(BranchTgds(forest, *forest.Find(T(3)), m),
            (std::vector<std::string>{"sigma7", "sigma3"}));
  EXPECT_EQ(BranchTgds(forest, *forest.Find(T(5)), m),
            (std::vector<std::string>{"sigma5"}));
  EXPECT_EQ(BranchTgds(forest, *forest.Find(T(6)), m),
            (std::vector<std::string>{"sigma8"}));
  EXPECT_EQ(BranchTgds(forest, *forest.Find(T(1)), m),
            (std::vector<std::string>{"sigma1"}));
  EXPECT_EQ(BranchTgds(forest, *forest.Find(T(2)), m),
            (std::vector<std::string>{"sigma2"}));
}

TEST_F(Example35Test, NaivePrintReproducesRouteR3) {
  RouteForest forest = ComputeAllRoutes(*scenario_.mapping, *scenario_.source,
                                        *scenario_.target, {T(7)});
  NaivePrintResult result = NaivePrint(&forest, {T(7)});
  EXPECT_FALSE(result.truncated);
  // Exactly one route for T7(a) in the base example — the paper's R3:
  // sigma2 sigma3 sigma4 sigma2 sigma3 sigma4 sigma1 sigma5 sigma8 sigma6.
  ASSERT_EQ(result.routes.size(), 1u);
  EXPECT_EQ(result.routes[0].TgdNames(*scenario_.mapping),
            "sigma2 -> sigma3 -> sigma4 -> sigma2 -> sigma3 -> sigma4 -> "
            "sigma1 -> sigma5 -> sigma8 -> sigma6");
  // R3 is valid for T7(a) but not minimal (it repeats steps).
  EXPECT_TRUE(result.routes[0].Validate(*scenario_.mapping, *scenario_.source,
                                        *scenario_.target, {T(7)}));
  EXPECT_FALSE(result.routes[0].IsMinimal(
      *scenario_.mapping, *scenario_.source, *scenario_.target, {T(7)}));
  // Its minimization is the paper's R1 (7 distinct steps:
  // sigma2, sigma3, sigma4, sigma1, sigma5, sigma8, sigma6).
  Route r1 = result.routes[0].Minimize(*scenario_.mapping, *scenario_.source,
                                       *scenario_.target, {T(7)});
  EXPECT_EQ(r1.size(), 7u);
}

TEST_F(Example35Test, LazyExpansionOnlyTouchesReachableNodes) {
  RouteForest forest(*scenario_.mapping, *scenario_.source, *scenario_.target,
                     {T(2)});
  forest.Expand(T(2));
  EXPECT_EQ(forest.NumExpandedNodes(), 1u);
  forest.ExpandAll();
  // T2 is witnessed by sigma2 alone; nothing else is reachable.
  EXPECT_EQ(forest.NumExpandedNodes(), 1u);
}

TEST_F(Example35Test, ForestToStringShowsSharedSubtrees) {
  RouteForest forest = ComputeAllRoutes(*scenario_.mapping, *scenario_.source,
                                        *scenario_.target, {T(7)});
  std::string str = forest.ToString();
  EXPECT_NE(str.find("T7(\"a\")"), std::string::npos);
  EXPECT_NE(str.find("[see above]"), std::string::npos);
  EXPECT_NE(str.find("[source]"), std::string::npos);
}

class Example35ExtendedTest : public ::testing::Test {
 protected:
  Example35ExtendedTest()
      : scenario_(ParseScenario(testing::Example35Text(true, 3))) {}

  FactRef T(int i) {
    return TargetFact(scenario_, "T" + std::to_string(i), {Value::Str("a")});
  }

  Scenario scenario_;
};

TEST_F(Example35ExtendedTest, DottedBranchesAppear) {
  RouteForest forest = ComputeAllRoutes(*scenario_.mapping, *scenario_.source,
                                        *scenario_.target, {T(7)});
  // T5 now has the sigma9 (s-t) branch in addition to sigma5.
  std::vector<std::string> t5;
  for (const RouteForest::Branch& b : forest.Find(T(5))->branches) {
    t5.push_back(scenario_.mapping->tgd(b.tgd).name());
  }
  ASSERT_EQ(t5.size(), 2u);
  EXPECT_EQ(t5[0], "sigma9");  // s-t tgds come first (step 2 before step 3)
  EXPECT_EQ(t5[1], "sigma5");
  // T3 gains sigma10 branches, one per T8 tuple (h differs in y).
  size_t sigma10_branches = 0;
  for (const RouteForest::Branch& b : forest.Find(T(3))->branches) {
    if (scenario_.mapping->tgd(b.tgd).name() == "sigma10") ++sigma10_branches;
  }
  EXPECT_EQ(sigma10_branches, 3u);
}

TEST_F(Example35ExtendedTest, RouteR2Appears) {
  RouteForest forest = ComputeAllRoutes(*scenario_.mapping, *scenario_.source,
                                        *scenario_.target, {T(7)});
  NaivePrintResult result = NaivePrint(&forest, {T(7)});
  EXPECT_FALSE(result.truncated);
  // The paper's R2 — sigma9, sigma7, sigma4, sigma8, sigma6 — must be among
  // the printed routes (exact sequence).
  bool found_r2 = false;
  for (const Route& route : result.routes) {
    if (route.TgdNames(*scenario_.mapping) ==
        "sigma9 -> sigma7 -> sigma4 -> sigma9 -> sigma8 -> sigma6") {
      found_r2 = true;
    }
  }
  // NaivePrint derives T6 via its own subtree, so R2 appears with sigma9
  // repeated (the concatenation semantics); check a normalized form instead:
  // some route minimizes to exactly {sigma9, sigma7, sigma4, sigma8, sigma6}.
  for (const Route& route : result.routes) {
    Route min = route.Minimize(*scenario_.mapping, *scenario_.source,
                               *scenario_.target, {T(7)});
    if (min.TgdNames(*scenario_.mapping) ==
        "sigma9 -> sigma7 -> sigma4 -> sigma8 -> sigma6") {
      found_r2 = true;
    }
  }
  EXPECT_TRUE(found_r2);
  // All printed routes are valid.
  for (const Route& route : result.routes) {
    EXPECT_TRUE(route.Validate(*scenario_.mapping, *scenario_.source,
                               *scenario_.target, {T(7)}));
  }
}

TEST(AllRoutesCreditCardTest, TwoWitnessesForT4) {
  Scenario s = testing::CreditCardScenario();
  FactRef t4 = TargetFact(s, "Accounts", {Value::Int(5539),
                                          Value::Str("40K"),
                                          Value::Int(153)});
  RouteForest forest =
      ComputeAllRoutes(*s.mapping, *s.source, *s.target, {t4});
  // Scenario 2 of the paper: t4 has exactly two m3 branches, the legitimate
  // (s4, s6) witness and the bogus (s3, s6) one revealing the missing join.
  const RouteForest::Node* node = forest.Find(t4);
  ASSERT_NE(node, nullptr);
  size_t m3_branches = 0;
  for (const RouteForest::Branch& b : node->branches) {
    if (s.mapping->tgd(b.tgd).name() == "m3") ++m3_branches;
  }
  EXPECT_EQ(m3_branches, 2u);
}

TEST(AllRoutesCreditCardTest, MultiFactSelection) {
  Scenario s = testing::CreditCardScenario();
  FactRef t2 = TargetFact(s, "Accounts", {Value::Null(1), Value::Str("2K"),
                                          Value::Int(234)});
  FactRef t5 = TargetFact(s, "Clients",
                          {Value::Int(434), Value::Str("Smith"),
                           Value::Str("Smith"), Value::Str("50K"),
                           Value::Null(2)});
  RouteForest forest =
      ComputeAllRoutes(*s.mapping, *s.source, *s.target, {t2, t5});
  NaivePrintResult result = NaivePrint(&forest, {t2, t5});
  ASSERT_FALSE(result.routes.empty());
  for (const Route& route : result.routes) {
    EXPECT_TRUE(route.Validate(*s.mapping, *s.source, *s.target, {t2, t5}));
  }
}

TEST(AllRoutesCreditCardTest, RootsMustBeTargetFacts) {
  Scenario s = testing::CreditCardScenario();
  EXPECT_THROW(ComputeAllRoutes(*s.mapping, *s.source, *s.target,
                                {FactRef{Side::kSource, 0, 0}}),
               SpiderError);
}

TEST(NaivePrintTest, TruncationCapsRoutes) {
  Scenario s = ParseScenario(testing::Example35Text(true, 5));
  FactRef t7 = TargetFact(s, "T7", {Value::Str("a")});
  RouteForest forest =
      ComputeAllRoutes(*s.mapping, *s.source, *s.target, {t7});
  NaivePrintOptions options;
  options.max_routes = 2;
  NaivePrintResult result = NaivePrint(&forest, {t7}, options);
  EXPECT_TRUE(result.truncated);
  EXPECT_LE(result.routes.size(), 2u);
}

TEST(NaivePrintTest, FactWithNoWitnessYieldsNoRoutes) {
  // A hand-written J containing a fact no tgd can witness.
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a); U(a); }
    m: S(x) -> T(x);
    source instance { S(1); }
    target instance { T(1); U(5); }
  )");
  FactRef orphan = TargetFact(s, "U", {Value::Int(5)});
  RouteForest forest =
      ComputeAllRoutes(*s.mapping, *s.source, *s.target, {orphan});
  NaivePrintResult result = NaivePrint(&forest, {orphan});
  EXPECT_TRUE(result.routes.empty());
  EXPECT_FALSE(result.truncated);
}

}  // namespace
}  // namespace spider
