#include "routes/alternatives.h"

#include <gtest/gtest.h>

#include "mapping/parser.h"
#include "routes/fact_util.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

TEST(RouteEnumeratorTest, YieldsDistinctRoutesOnDemand) {
  Scenario s = ParseScenario(testing::Example35Text(true));
  FactRef t5 = RequireTargetFact(*s.target, "T5", Tuple({Value::Str("a")}));
  RouteEnumerator en(*s.mapping, *s.source, *s.target, {t5});
  std::optional<Route> first = en.Next();
  ASSERT_TRUE(first.has_value());
  std::optional<Route> second = en.Next();
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(first->steps(), second->steps());
  EXPECT_FALSE(en.Next().has_value());
  EXPECT_EQ(en.produced(), 2u);
  for (const Route* r : {&*first, &*second}) {
    EXPECT_TRUE(r->Validate(*s.mapping, *s.source, *s.target, {t5}));
  }
}

TEST(RouteEnumeratorTest, Scenario2TwoDirectWitnessesForT4) {
  // Alice asks for the first route, finds nothing odd, then requests the
  // next one, which reveals the missing join (Scenario 2 of the paper).
  // Besides the two one-step m3 witnesses the enumeration also surfaces
  // longer routes going through m5; exactly two single-step routes exist.
  Scenario s = testing::CreditCardScenario();
  FactRef t4 = RequireTargetFact(
      *s.target, "Accounts",
      Tuple({Value::Int(5539), Value::Str("40K"), Value::Int(153)}));
  RouteEnumerator en(*s.mapping, *s.source, *s.target, {t4});
  size_t single_step_m3 = 0;
  size_t total = 0;
  while (std::optional<Route> route = en.Next()) {
    ++total;
    EXPECT_TRUE(route->Validate(*s.mapping, *s.source, *s.target, {t4}));
    if (route->size() == 1 &&
        s.mapping->tgd(route->steps()[0].tgd).name() == "m3") {
      ++single_step_m3;
    }
  }
  EXPECT_EQ(single_step_m3, 2u);
  EXPECT_GE(total, 2u);
}

TEST(RouteEnumeratorTest, NoRoutesForOrphanFact) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a); U(a); }
    m: S(x) -> T(x);
    source instance { S(1); }
    target instance { T(1); U(5); }
  )");
  FactRef orphan = RequireTargetFact(*s.target, "U", Tuple({Value::Int(5)}));
  RouteEnumerator en(*s.mapping, *s.source, *s.target, {orphan});
  EXPECT_FALSE(en.Next().has_value());
}

TEST(RouteEnumeratorTest, LazyForestExpandsIncrementally) {
  Scenario s = ParseScenario(testing::Example35Text(false));
  FactRef t2 = RequireTargetFact(*s.target, "T2", Tuple({Value::Str("a")}));
  RouteEnumerator en(*s.mapping, *s.source, *s.target, {t2});
  ASSERT_TRUE(en.Next().has_value());
  // Only T2's node is ever expanded for this probe.
  EXPECT_EQ(en.forest().NumExpandedNodes(), 1u);
}

TEST(RouteEnumeratorTest, StepSetDeduplication) {
  // Routes that permute the same steps are reported once: probing both T1
  // and T2 at once yields one route even though each fact has one route and
  // concatenation order could differ.
  Scenario s = ParseScenario(testing::Example35Text(false));
  FactRef t1 = RequireTargetFact(*s.target, "T1", Tuple({Value::Str("a")}));
  FactRef t2 = RequireTargetFact(*s.target, "T2", Tuple({Value::Str("a")}));
  RouteEnumerator en(*s.mapping, *s.source, *s.target, {t1, t2});
  ASSERT_TRUE(en.Next().has_value());
  EXPECT_FALSE(en.Next().has_value());
}

}  // namespace
}  // namespace spider
