#include "routes/find_hom.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "mapping/parser.h"

#include "base/status.h"
#include "routes/fact_util.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

class FindHomTest : public ::testing::Test {
 protected:
  FindHomTest() : scenario_(testing::CreditCardScenario()) {}

  FactRef Target(const std::string& relation, std::vector<Value> values) {
    return RequireTargetFact(*scenario_.target, relation,
                             Tuple(std::move(values)));
  }
  TgdId TgdByName(const std::string& name) {
    TgdId id = scenario_.mapping->FindTgd(name);
    EXPECT_GE(id, 0);
    return id;
  }
  size_t CountAssignments(const FactRef& fact, TgdId tgd,
                          RouteOptions options = {}) {
    FindHomIterator it(*scenario_.mapping, *scenario_.source,
                       *scenario_.target, fact, tgd, options);
    Binding h;
    size_t n = 0;
    while (it.Next(&h)) ++n;
    return n;
  }

  Scenario scenario_;
};

TEST_F(FindHomTest, PaperExampleT1WithM1) {
  // findHom(I, J, t1, m1) from §3.1: matching t1 = Accounts(6689,15K,434)
  // against m1's Accounts atom yields the assignment of the paper.
  FactRef t1 = Target("Accounts",
                      {Value::Int(6689), Value::Str("15K"), Value::Int(434)});
  FindHomIterator it(*scenario_.mapping, *scenario_.source, *scenario_.target,
                     t1, TgdByName("m1"));
  Binding h;
  ASSERT_TRUE(it.Next(&h));
  const Tgd& m1 = scenario_.mapping->tgd(TgdByName("m1"));
  EXPECT_TRUE(h.IsTotal());
  // Check a few named variables: cn=6689, n="J. Long", A = the null A1.
  auto var = [&](const std::string& name) {
    for (size_t v = 0; v < m1.var_names().size(); ++v) {
      if (m1.var_names()[v] == name) return static_cast<VarId>(v);
    }
    ADD_FAILURE() << "no variable " << name;
    return VarId{-1};
  };
  EXPECT_EQ(h.Get(var("cn")), Value::Int(6689));
  EXPECT_EQ(h.Get(var("n")), Value::Str("J. Long"));
  EXPECT_EQ(h.Get(var("sal")), Value::Str("50K"));
  EXPECT_TRUE(h.Get(var("A")).is_null());
  // There is exactly one assignment for t1 with m1.
  EXPECT_FALSE(it.Next(&h));
}

TEST_F(FindHomTest, NoAssignmentWhenRelationNotInRhs) {
  // m2 only produces Clients facts; probing an Accounts fact fails fast.
  FactRef t1 = Target("Accounts",
                      {Value::Int(6689), Value::Str("15K"), Value::Int(434)});
  EXPECT_EQ(CountAssignments(t1, TgdByName("m2")), 0u);
}

TEST_F(FindHomTest, ScenarioTwoRoutesForT4) {
  // t4 = Accounts(5539, 40K, 153) has two witnesses through m3: (s4, s6)
  // and the bogus (s3, s6) caused by the missing join on ssn.
  FactRef t4 = Target("Accounts",
                      {Value::Int(5539), Value::Str("40K"), Value::Int(153)});
  EXPECT_EQ(CountAssignments(t4, TgdByName("m3")), 2u);
}

TEST_F(FindHomTest, TargetTgdAssignments) {
  // t2 = Accounts(N1, 2K, 234) via m5: three Clients tuples with ssn 234,
  // each with the existentials pinned by v1 to (N1, 2K).
  FactRef t2 = Target("Accounts",
                      {Value::Null(1), Value::Str("2K"), Value::Int(234)});
  EXPECT_EQ(CountAssignments(t2, TgdByName("m5")), 3u);
}

TEST_F(FindHomTest, ExistentialsBoundFromTargetInstance) {
  // m5's existentials N, L must be bound to values from J (v3), here to the
  // two distinct Accounts with holder 234 per LHS client: 3 clients x 2
  // accounts... but v1 pins (N, L) when probing a specific account.
  FactRef t3 = Target("Accounts",
                      {Value::Int(2252), Value::Str("2K"), Value::Int(234)});
  EXPECT_EQ(CountAssignments(t3, TgdByName("m5")), 3u);
}

TEST_F(FindHomTest, EagerModeReturnsSameAssignments) {
  FactRef t4 = Target("Accounts",
                      {Value::Int(5539), Value::Str("40K"), Value::Int(153)});
  RouteOptions eager;
  eager.eager_findhom = true;
  EXPECT_EQ(CountAssignments(t4, TgdByName("m3"), eager),
            CountAssignments(t4, TgdByName("m3")));
}

TEST_F(FindHomTest, RejectsSourceFacts) {
  FactRef bogus{Side::kSource, 0, 0};
  EXPECT_THROW(FindHomIterator(*scenario_.mapping, *scenario_.source,
                               *scenario_.target, bogus, TgdByName("m1")),
               SpiderError);
}

TEST_F(FindHomTest, AssignmentSatisfiesDefinition) {
  // For every assignment h: LHS(h) ⊆ K, RHS(h) ⊆ J, t ∈ RHS(h).
  FactRef t4 = Target("Accounts",
                      {Value::Int(5539), Value::Str("40K"), Value::Int(153)});
  TgdId m3 = TgdByName("m3");
  FindHomIterator it(*scenario_.mapping, *scenario_.source, *scenario_.target,
                     t4, m3);
  Binding h;
  while (it.Next(&h)) {
    std::vector<FactRef> lhs = LhsFacts(*scenario_.mapping, m3, h,
                                        *scenario_.source, *scenario_.target);
    for (const FactRef& f : lhs) EXPECT_EQ(f.side, Side::kSource);
    std::vector<FactRef> rhs =
        RhsFacts(*scenario_.mapping, m3, h, *scenario_.target);
    EXPECT_NE(std::find(rhs.begin(), rhs.end(), t4), rhs.end());
  }
}

TEST_F(FindHomTest, FindHomFirstConvenience) {
  FactRef t1 = Target("Accounts",
                      {Value::Int(6689), Value::Str("15K"), Value::Int(434)});
  EXPECT_TRUE(FindHomFirst(*scenario_.mapping, *scenario_.source,
                           *scenario_.target, t1, TgdByName("m1"))
                  .has_value());
  EXPECT_FALSE(FindHomFirst(*scenario_.mapping, *scenario_.source,
                            *scenario_.target, t1, TgdByName("m2"))
                   .has_value());
}

TEST(FindHomDuplicateTest, RepeatedRhsAtomsDeduplicated) {
  Scenario s = ParseScenario(R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    m: S(x, y) -> T(x, y) & T(y, x);
    source instance { S(1, 1); }
    target instance { T(1, 1); }
  )");
  FactRef t = RequireTargetFact(*s.target, "T",
                                Tuple({Value::Int(1), Value::Int(1)}));
  FindHomIterator it(*s.mapping, *s.source, *s.target, t, 0);
  Binding h;
  size_t n = 0;
  while (it.Next(&h)) ++n;
  // Matching either RHS atom yields the same assignment {x->1, y->1}.
  EXPECT_EQ(n, 1u);
}

}  // namespace
}  // namespace spider
