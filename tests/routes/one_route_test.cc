#include "routes/one_route.h"

#include <gtest/gtest.h>

#include "mapping/parser.h"
#include "routes/fact_util.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

FactRef TargetFact(const Scenario& s, const std::string& relation,
                   std::vector<Value> values) {
  return RequireTargetFact(*s.target, relation, Tuple(std::move(values)));
}

class OneRouteExample38Test : public ::testing::Test {
 protected:
  OneRouteExample38Test()
      : scenario_(ParseScenario(testing::Example35Text(false))) {}

  FactRef T(int i) {
    return TargetFact(scenario_, "T" + std::to_string(i), {Value::Str("a")});
  }

  Scenario scenario_;
};

TEST_F(OneRouteExample38Test, ReproducesPaperTrace) {
  // Example 3.8: the algorithm returns exactly
  // [sigma1, sigma2, sigma3, sigma4, sigma5, sigma7, sigma8, sigma6]
  // (sigma7 appears even though T3 was already proven by sigma3 — Infer
  // fires every suspended triple, per Fig. 8).
  OneRouteResult result = ComputeOneRoute(*scenario_.mapping,
                                          *scenario_.source,
                                          *scenario_.target, {T(7)});
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.route.TgdNames(*scenario_.mapping),
            "sigma1 -> sigma2 -> sigma3 -> sigma4 -> sigma5 -> sigma7 -> "
            "sigma8 -> sigma6");
  EXPECT_TRUE(result.route.Validate(*scenario_.mapping, *scenario_.source,
                                    *scenario_.target, {T(7)}));
}

TEST_F(OneRouteExample38Test, RouteNotMinimalButMinimizes) {
  OneRouteResult result = ComputeOneRoute(*scenario_.mapping,
                                          *scenario_.source,
                                          *scenario_.target, {T(7)});
  ASSERT_TRUE(result.found);
  // The sigma7 step is redundant.
  EXPECT_FALSE(result.route.IsMinimal(*scenario_.mapping, *scenario_.source,
                                      *scenario_.target, {T(7)}));
  Route minimal = result.route.Minimize(*scenario_.mapping, *scenario_.source,
                                        *scenario_.target, {T(7)});
  // The paper's R1: sigma1, sigma2, sigma3, sigma4, sigma5, sigma8, sigma6
  // in some valid order (7 steps).
  EXPECT_EQ(minimal.size(), 7u);
  EXPECT_TRUE(minimal.IsMinimal(*scenario_.mapping, *scenario_.source,
                                *scenario_.target, {T(7)}));
}

TEST_F(OneRouteExample38Test, InferIsRequiredForCompleteness) {
  // Without Infer the status of T5 would be unknown when sigma8 is tried
  // (see the paper's discussion); our implementation must still succeed.
  for (int i = 1; i <= 7; ++i) {
    OneRouteResult result = ComputeOneRoute(
        *scenario_.mapping, *scenario_.source, *scenario_.target, {T(i)});
    EXPECT_TRUE(result.found) << "T" << i;
  }
}

TEST_F(OneRouteExample38Test, StatsAreTracked) {
  OneRouteResult result = ComputeOneRoute(*scenario_.mapping,
                                          *scenario_.source,
                                          *scenario_.target, {T(7)});
  EXPECT_GT(result.stats.findhom_calls, 0u);
  EXPECT_GT(result.stats.findhom_successes, 0u);
  EXPECT_GT(result.stats.infer_fires, 0u);
}

class OneRouteCreditCardTest : public ::testing::Test {
 protected:
  OneRouteCreditCardTest() : scenario_(testing::CreditCardScenario()) {}
  Scenario scenario_;
};

TEST_F(OneRouteCreditCardTest, Scenario1RouteForT5) {
  // Probing t5 yields the one-step route s1 --m1--> t1, t5.
  FactRef t5 = TargetFact(scenario_, "Clients",
                          {Value::Int(434), Value::Str("Smith"),
                           Value::Str("Smith"), Value::Str("50K"),
                           Value::Null(2)});
  OneRouteResult result = ComputeOneRoute(*scenario_.mapping,
                                          *scenario_.source,
                                          *scenario_.target, {t5});
  ASSERT_TRUE(result.found);
  ASSERT_EQ(result.route.size(), 1u);
  EXPECT_EQ(scenario_.mapping->tgd(result.route.steps()[0].tgd).name(), "m1");
}

TEST_F(OneRouteCreditCardTest, Scenario3RouteForT2) {
  // Probing t2 = Accounts(N1, 2K, 234): the route is m2 (witnessing t6)
  // followed by m5 (witnessing t2 from t6).
  FactRef t2 = TargetFact(scenario_, "Accounts",
                          {Value::Null(1), Value::Str("2K"), Value::Int(234)});
  OneRouteResult result = ComputeOneRoute(*scenario_.mapping,
                                          *scenario_.source,
                                          *scenario_.target, {t2});
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.route.TgdNames(*scenario_.mapping), "m2 -> m5");
}

TEST_F(OneRouteCreditCardTest, MultipleSelectedFacts) {
  FactRef t2 = TargetFact(scenario_, "Accounts",
                          {Value::Null(1), Value::Str("2K"), Value::Int(234)});
  FactRef t4 = TargetFact(scenario_, "Accounts",
                          {Value::Int(5539), Value::Str("40K"),
                           Value::Int(153)});
  OneRouteResult result = ComputeOneRoute(*scenario_.mapping,
                                          *scenario_.source,
                                          *scenario_.target, {t2, t4});
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(result.route.Validate(*scenario_.mapping, *scenario_.source,
                                    *scenario_.target, {t2, t4}));
}

TEST_F(OneRouteCreditCardTest, OptimizationOffStillCorrect) {
  RouteOptions options;
  options.propagate_rhs_proven = false;
  FactRef t2 = TargetFact(scenario_, "Accounts",
                          {Value::Null(1), Value::Str("2K"), Value::Int(234)});
  OneRouteResult result =
      ComputeOneRoute(*scenario_.mapping, *scenario_.source, *scenario_.target,
                      {t2}, options);
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(result.route.Validate(*scenario_.mapping, *scenario_.source,
                                    *scenario_.target, {t2}));
}

TEST_F(OneRouteCreditCardTest, OptimizationReducesFindHomCalls) {
  // Probing every Clients tuple: with §3.3 propagation, facts proven as a
  // side effect of earlier steps skip their own findHom exploration.
  std::vector<FactRef> all_clients;
  RelationId clients = scenario_.mapping->target().Require("Clients");
  for (int32_t row = 0;
       row < static_cast<int32_t>(scenario_.target->NumTuples(clients));
       ++row) {
    all_clients.push_back(FactRef{Side::kTarget, clients, row});
  }
  RouteOptions with_opt;
  RouteOptions without_opt;
  without_opt.propagate_rhs_proven = false;
  OneRouteResult fast = ComputeOneRoute(
      *scenario_.mapping, *scenario_.source, *scenario_.target, all_clients,
      with_opt);
  OneRouteResult slow = ComputeOneRoute(
      *scenario_.mapping, *scenario_.source, *scenario_.target, all_clients,
      without_opt);
  ASSERT_TRUE(fast.found);
  ASSERT_TRUE(slow.found);
  EXPECT_LE(fast.stats.findhom_calls, slow.stats.findhom_calls);
}

TEST(OneRouteNoRouteTest, UnwitnessedFactReported) {
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { T(a); U(a); }
    m: S(x) -> T(x);
    source instance { S(1); }
    target instance { T(1); U(5); }
  )");
  FactRef orphan = TargetFact(s, "U", {Value::Int(5)});
  FactRef good = TargetFact(s, "T", {Value::Int(1)});
  OneRouteResult result =
      ComputeOneRoute(*s.mapping, *s.source, *s.target, {orphan, good});
  EXPECT_FALSE(result.found);
  ASSERT_EQ(result.unproven.size(), 1u);
  EXPECT_EQ(result.unproven[0], orphan);
  // The partial route still witnesses the provable fact.
  EXPECT_TRUE(result.route.Validate(*s.mapping, *s.source, *s.target, {good}));
}

TEST(OneRouteCycleTest, MutuallyRecursiveTgdsWithNoBase) {
  // A(x) -> B(x), B(x) -> A(x): with J = {A(1), B(1)} and no s-t witness,
  // neither fact has a route; the algorithm must terminate and report it.
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { A(a); B(a); }
    m: S(x) -> A(x);
    t1: A(x) -> B(x);
    t2: B(x) -> A(x);
    target instance { A(1); B(1); }
  )");
  FactRef a1 = TargetFact(s, "A", {Value::Int(1)});
  OneRouteResult result =
      ComputeOneRoute(*s.mapping, *s.source, *s.target, {a1});
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.unproven.size(), 1u);
}

TEST(OneRouteCycleTest, CycleWithBaseResolvesThroughInfer) {
  // Same recursion, but S(1) provides a base witness for A(1).
  Scenario s = ParseScenario(R"(
    source schema { S(a); }
    target schema { A(a); B(a); }
    m: S(x) -> A(x);
    t1: A(x) -> B(x);
    t2: B(x) -> A(x);
    source instance { S(1); }
    target instance { A(1); B(1); }
  )");
  FactRef b1 = TargetFact(s, "B", {Value::Int(1)});
  OneRouteResult result =
      ComputeOneRoute(*s.mapping, *s.source, *s.target, {b1});
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(result.route.Validate(*s.mapping, *s.source, *s.target, {b1}));
}

TEST(OneRouteTransitiveClosureTest, IntermediateStepsShown) {
  // §5.1: the route for T(1,3) shows the intermediate facts T(1,2), T(2,3),
  // unlike source-only why-provenance.
  Scenario s = ParseScenario(testing::TransitiveClosureText());
  FactRef t13 = TargetFact(s, "T", {Value::Int(1), Value::Int(3)});
  OneRouteResult result =
      ComputeOneRoute(*s.mapping, *s.source, *s.target, {t13});
  ASSERT_TRUE(result.found);
  // Route: sigma1 (twice, for both base edges) then sigma2.
  EXPECT_EQ(result.route.size(), 3u);
  EXPECT_EQ(s.mapping->tgd(result.route.steps().back().tgd).name(), "sigma2");
}

}  // namespace
}  // namespace spider
