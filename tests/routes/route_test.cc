#include "routes/route.h"

#include <gtest/gtest.h>

#include "routes/fact_util.h"
#include "routes/one_route.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

class RouteTest : public ::testing::Test {
 protected:
  RouteTest() : scenario_(testing::CreditCardScenario()) {}

  FactRef Target(const std::string& relation, std::vector<Value> values) {
    return RequireTargetFact(*scenario_.target, relation,
                             Tuple(std::move(values)));
  }

  FactRef T2() {
    return Target("Accounts",
                  {Value::Null(1), Value::Str("2K"), Value::Int(234)});
  }
  FactRef T5() {
    return Target("Clients", {Value::Int(434), Value::Str("Smith"),
                              Value::Str("Smith"), Value::Str("50K"),
                              Value::Null(2)});
  }

  Route RouteFor(const FactRef& fact) {
    OneRouteResult result =
        ComputeOneRoute(*scenario_.mapping, *scenario_.source,
                        *scenario_.target, {fact});
    EXPECT_TRUE(result.found);
    return result.route;
  }

  Scenario scenario_;
};

TEST_F(RouteTest, ValidRouteValidates) {
  Route route = RouteFor(T2());
  std::string why;
  EXPECT_TRUE(route.Validate(*scenario_.mapping, *scenario_.source,
                             *scenario_.target, {T2()}, &why))
      << why;
}

TEST_F(RouteTest, EmptyRouteInvalid) {
  Route route;
  std::string why;
  EXPECT_FALSE(route.Validate(*scenario_.mapping, *scenario_.source,
                              *scenario_.target, {}, &why));
  EXPECT_NE(why.find("non-empty"), std::string::npos);
}

TEST_F(RouteTest, RouteMustProduceSelectedFacts) {
  Route route = RouteFor(T5());  // witnesses t1 and t5 via m1
  EXPECT_TRUE(route.Validate(*scenario_.mapping, *scenario_.source,
                             *scenario_.target, {T5()}));
  // ... but not t2.
  std::string why;
  EXPECT_FALSE(route.Validate(*scenario_.mapping, *scenario_.source,
                              *scenario_.target, {T2()}, &why));
  EXPECT_NE(why.find("not produced"), std::string::npos);
}

TEST_F(RouteTest, OrderMatters) {
  // The two-step route for t2 is m2 then m5; reversed it is invalid because
  // m5's LHS fact t6 has not been produced yet.
  Route route = RouteFor(T2());
  ASSERT_EQ(route.size(), 2u);
  Route reversed(
      std::vector<SatStep>{route.steps()[1], route.steps()[0]});
  EXPECT_FALSE(reversed.Validate(*scenario_.mapping, *scenario_.source,
                                 *scenario_.target, {T2()}));
}

TEST_F(RouteTest, PartialHomomorphismRejected) {
  Route route = RouteFor(T5());
  SatStep step = route.steps()[0];
  step.h.Unset(0);
  Route broken(std::vector<SatStep>{step});
  std::string why;
  EXPECT_FALSE(broken.Validate(*scenario_.mapping, *scenario_.source,
                               *scenario_.target, {}, &why));
  EXPECT_NE(why.find("cover all variables"), std::string::npos);
}

TEST_F(RouteTest, ProducedFacts) {
  Route route = RouteFor(T2());
  std::vector<FactRef> produced =
      route.ProducedFacts(*scenario_.mapping, *scenario_.source,
                          *scenario_.target);
  // m2 produces t6; m5 produces t2.
  ASSERT_EQ(produced.size(), 2u);
  EXPECT_EQ(produced[1], T2());
}

TEST_F(RouteTest, MinimizeRemovesRedundantSteps) {
  Route route = RouteFor(T5());
  // Duplicate the steps; minimization must bring it back to minimal size.
  std::vector<SatStep> doubled = route.steps();
  doubled.insert(doubled.end(), route.steps().begin(), route.steps().end());
  Route redundant(doubled);
  ASSERT_TRUE(redundant.Validate(*scenario_.mapping, *scenario_.source,
                                 *scenario_.target, {T5()}));
  Route minimal = redundant.Minimize(*scenario_.mapping, *scenario_.source,
                                     *scenario_.target, {T5()});
  EXPECT_EQ(minimal.size(), 1u);
  EXPECT_TRUE(minimal.IsMinimal(*scenario_.mapping, *scenario_.source,
                                *scenario_.target, {T5()}));
}

TEST_F(RouteTest, IsMinimalDetectsRedundancy) {
  Route route = RouteFor(T2());
  std::vector<SatStep> padded = route.steps();
  padded.push_back(route.steps()[0]);
  EXPECT_FALSE(Route(padded).IsMinimal(*scenario_.mapping, *scenario_.source,
                                       *scenario_.target, {T2()}));
  EXPECT_TRUE(route.IsMinimal(*scenario_.mapping, *scenario_.source,
                              *scenario_.target, {T2()}));
}

TEST_F(RouteTest, MinimizeRequiresValidRoute) {
  Route route;
  EXPECT_THROW(route.Minimize(*scenario_.mapping, *scenario_.source,
                              *scenario_.target, {}),
               SpiderError);
}

TEST_F(RouteTest, ToStringShowsStepsAndAssignments) {
  Route route = RouteFor(T2());
  std::string str =
      route.ToString(*scenario_.mapping, *scenario_.source, *scenario_.target);
  EXPECT_NE(str.find("step 1"), std::string::npos);
  EXPECT_NE(str.find("m2"), std::string::npos);
  EXPECT_NE(str.find("m5"), std::string::npos);
  EXPECT_NE(str.find("SupplementaryCards"), std::string::npos);
  EXPECT_EQ(route.TgdNames(*scenario_.mapping), "m2 -> m5");
}

TEST_F(RouteTest, SatStepLessIsStrictWeakOrder) {
  Route route = RouteFor(T2());
  const SatStep& a = route.steps()[0];
  const SatStep& b = route.steps()[1];
  EXPECT_TRUE(SatStepLess(a, b) || SatStepLess(b, a));
  EXPECT_FALSE(SatStepLess(a, a));
}

}  // namespace
}  // namespace spider
