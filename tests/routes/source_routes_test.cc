#include "routes/source_routes.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "base/status.h"
#include "mapping/parser.h"
#include "routes/fact_util.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

class SourceRoutesTest : public ::testing::Test {
 protected:
  SourceRoutesTest() : scenario_(testing::CreditCardScenario()) {}

  FactRef S2() {
    return RequireSourceFact(
        *scenario_.source, "SupplementaryCards",
        Tuple({Value::Int(6689), Value::Int(234), Value::Str("A. Long"),
               Value::Str("California")}));
  }

  Scenario scenario_;
};

TEST_F(SourceRoutesTest, S2ProducesT6AndT2) {
  // Selecting s2 shows its consequences: t6 directly via m2, then t2 via m5
  // (the situation Alice untangles backwards in Scenario 3).
  ConsequenceForest forest = ComputeSourceConsequences(
      *scenario_.mapping, *scenario_.source, *scenario_.target, {S2()});
  EXPECT_FALSE(forest.truncated);
  std::vector<FactRef> derived = forest.DerivedFacts();
  FactRef t6 = RequireTargetFact(
      *scenario_.target, "Clients",
      Tuple({Value::Int(234), Value::Str("A. Long"), Value::Null(3),
             Value::Null(4), Value::Str("California")}));
  FactRef t2 = RequireTargetFact(
      *scenario_.target, "Accounts",
      Tuple({Value::Null(1), Value::Str("2K"), Value::Int(234)}));
  EXPECT_NE(std::find(derived.begin(), derived.end(), t6), derived.end());
  EXPECT_NE(std::find(derived.begin(), derived.end(), t2), derived.end());
}

TEST_F(SourceRoutesTest, ExtractedRouteIsValid) {
  ConsequenceForest forest = ComputeSourceConsequences(
      *scenario_.mapping, *scenario_.source, *scenario_.target, {S2()});
  FactRef t2 = RequireTargetFact(
      *scenario_.target, "Accounts",
      Tuple({Value::Null(1), Value::Str("2K"), Value::Int(234)}));
  Route route = forest.RouteFor(t2, *scenario_.mapping, *scenario_.source,
                                *scenario_.target);
  EXPECT_TRUE(route.Validate(*scenario_.mapping, *scenario_.source,
                             *scenario_.target, {t2}));
  EXPECT_EQ(route.TgdNames(*scenario_.mapping), "m2 -> m5");
}

TEST_F(SourceRoutesTest, RouteForUnderivedFactThrows) {
  ConsequenceForest forest = ComputeSourceConsequences(
      *scenario_.mapping, *scenario_.source, *scenario_.target, {S2()});
  FactRef t1 = RequireTargetFact(
      *scenario_.target, "Accounts",
      Tuple({Value::Int(6689), Value::Str("15K"), Value::Int(434)}));
  EXPECT_THROW(forest.RouteFor(t1, *scenario_.mapping, *scenario_.source,
                               *scenario_.target),
               SpiderError);
}

TEST_F(SourceRoutesTest, SelectionMustBeSourceFacts) {
  FactRef bogus{Side::kTarget, 0, 0};
  EXPECT_THROW(
      ComputeSourceConsequences(*scenario_.mapping, *scenario_.source,
                                *scenario_.target, {bogus}),
      SpiderError);
}

TEST_F(SourceRoutesTest, TruncationBound) {
  SourceRouteOptions options;
  options.max_steps = 1;
  ConsequenceForest forest = ComputeSourceConsequences(
      *scenario_.mapping, *scenario_.source, *scenario_.target, {S2()},
      options);
  EXPECT_TRUE(forest.truncated);
  EXPECT_LE(forest.steps.size(), 1u);
}

TEST(SourceRoutesJoinTest, JointTgdUsesBothSelectedAndUnselectedFacts) {
  Scenario s = testing::CreditCardScenario();
  FactRef s6 = RequireSourceFact(
      *s.source, "CreditCards",
      Tuple({Value::Int(5539), Value::Str("40K"), Value::Int(153)}));
  ConsequenceForest forest = ComputeSourceConsequences(
      *s.mapping, *s.source, *s.target, {s6});
  // s6 joins with both FBAccounts rows through m3 (the missing-join bug),
  // so two m3 steps are discovered.
  size_t m3_steps = 0;
  for (const SatStep& step : forest.steps) {
    if (s.mapping->tgd(step.tgd).name() == "m3") ++m3_steps;
  }
  EXPECT_EQ(m3_steps, 2u);
}

TEST(SourceRoutesClosureTest, ForwardClosureFollowsTargetTgds) {
  Scenario s = ParseScenario(testing::TransitiveClosureText());
  FactRef s12 = RequireSourceFact(*s.source, "S",
                                  Tuple({Value::Int(1), Value::Int(2)}));
  ConsequenceForest forest =
      ComputeSourceConsequences(*s.mapping, *s.source, *s.target, {s12});
  // s12 yields T(1,2); T(1,3) requires T(2,3), which was NOT derived from
  // the selection, so the closure stops at T(1,2).
  std::vector<FactRef> derived = forest.DerivedFacts();
  EXPECT_EQ(derived.size(), 1u);
}

TEST(SourceRoutesClosureTest, FullSelectionDerivesClosure) {
  Scenario s = ParseScenario(testing::TransitiveClosureText());
  FactRef s12 = RequireSourceFact(*s.source, "S",
                                  Tuple({Value::Int(1), Value::Int(2)}));
  FactRef s23 = RequireSourceFact(*s.source, "S",
                                  Tuple({Value::Int(2), Value::Int(3)}));
  ConsequenceForest forest =
      ComputeSourceConsequences(*s.mapping, *s.source, *s.target, {s12, s23});
  EXPECT_EQ(forest.DerivedFacts().size(), 3u);
  FactRef t13 = RequireTargetFact(*s.target, "T",
                                  Tuple({Value::Int(1), Value::Int(3)}));
  Route route =
      forest.RouteFor(t13, *s.mapping, *s.source, *s.target);
  EXPECT_TRUE(route.Validate(*s.mapping, *s.source, *s.target, {t13}));
  EXPECT_EQ(route.size(), 3u);
}

}  // namespace
}  // namespace spider
