#include "routes/stratified.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "mapping/parser.h"
#include "routes/fact_util.h"
#include "routes/naive_print.h"
#include "routes/one_route.h"
#include "routes/route_forest.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

class StratifiedTest : public ::testing::Test {
 protected:
  StratifiedTest() : scenario_(ParseScenario(testing::Example35Text(false))) {}

  FactRef T(int i) {
    return RequireTargetFact(*scenario_.target, "T" + std::to_string(i),
                             Tuple({Value::Str("a")}));
  }

  Scenario scenario_;
};

TEST_F(StratifiedTest, PaperExampleBlocks) {
  // strat(R1) = strat(R3): rank 1 {sigma1, sigma2}, 2 {sigma3}, 3 {sigma4},
  // 4 {sigma5}, 5 {sigma8}, 6 {sigma6}, and the route rank is 6.
  OneRouteResult one = ComputeOneRoute(*scenario_.mapping, *scenario_.source,
                                       *scenario_.target, {T(7)});
  ASSERT_TRUE(one.found);
  Route r1 = one.route.Minimize(*scenario_.mapping, *scenario_.source,
                                *scenario_.target, {T(7)});
  StratifiedInterpretation strat =
      Stratify(r1, *scenario_.mapping, *scenario_.source, *scenario_.target);
  ASSERT_EQ(strat.rank(), 6u);
  auto block_names = [&](size_t k) {
    std::vector<std::string> names;
    for (const SatStep& step : strat.blocks[k]) {
      names.push_back(scenario_.mapping->tgd(step.tgd).name());
    }
    std::sort(names.begin(), names.end());
    return names;
  };
  EXPECT_EQ(block_names(0), (std::vector<std::string>{"sigma1", "sigma2"}));
  EXPECT_EQ(block_names(1), (std::vector<std::string>{"sigma3"}));
  EXPECT_EQ(block_names(2), (std::vector<std::string>{"sigma4"}));
  EXPECT_EQ(block_names(3), (std::vector<std::string>{"sigma5"}));
  EXPECT_EQ(block_names(4), (std::vector<std::string>{"sigma8"}));
  EXPECT_EQ(block_names(5), (std::vector<std::string>{"sigma6"}));
}

TEST_F(StratifiedTest, R1AndR3HaveSameStratifiedInterpretation) {
  // R3 (NaivePrint with duplicates) and R1 (its minimization) coincide.
  RouteForest forest = ComputeAllRoutes(*scenario_.mapping, *scenario_.source,
                                        *scenario_.target, {T(7)});
  NaivePrintResult printed = NaivePrint(&forest, {T(7)});
  ASSERT_EQ(printed.routes.size(), 1u);
  const Route& r3 = printed.routes[0];
  Route r1 = r3.Minimize(*scenario_.mapping, *scenario_.source,
                         *scenario_.target, {T(7)});
  EXPECT_NE(r1.steps(), r3.steps());
  EXPECT_EQ(Stratify(r1, *scenario_.mapping, *scenario_.source,
                     *scenario_.target),
            Stratify(r3, *scenario_.mapping, *scenario_.source,
                     *scenario_.target));
}

TEST_F(StratifiedTest, DifferentStepsDifferentStrat) {
  Scenario ext = ParseScenario(testing::Example35Text(true));
  FactRef t5 = RequireTargetFact(*ext.target, "T5", Tuple({Value::Str("a")}));
  // Two genuinely different routes for T5: via sigma9 directly, or via
  // sigma1/sigma2/.../sigma5.
  RouteForest forest =
      ComputeAllRoutes(*ext.mapping, *ext.source, *ext.target, {t5});
  NaivePrintResult printed = NaivePrint(&forest, {t5});
  ASSERT_GE(printed.routes.size(), 2u);
  StratifiedInterpretation a = Stratify(printed.routes[0], *ext.mapping,
                                        *ext.source, *ext.target);
  StratifiedInterpretation b = Stratify(printed.routes[1], *ext.mapping,
                                        *ext.source, *ext.target);
  EXPECT_NE(a, b);
}

TEST_F(StratifiedTest, SingleStepRouteHasRankOne) {
  FactRef t1 = T(1);
  OneRouteResult one = ComputeOneRoute(*scenario_.mapping, *scenario_.source,
                                       *scenario_.target, {t1});
  ASSERT_TRUE(one.found);
  StratifiedInterpretation strat = Stratify(
      one.route, *scenario_.mapping, *scenario_.source, *scenario_.target);
  EXPECT_EQ(strat.rank(), 1u);
}

TEST_F(StratifiedTest, ToStringListsRanks) {
  OneRouteResult one = ComputeOneRoute(*scenario_.mapping, *scenario_.source,
                                       *scenario_.target, {T(4)});
  ASSERT_TRUE(one.found);
  StratifiedInterpretation strat = Stratify(
      one.route, *scenario_.mapping, *scenario_.source, *scenario_.target);
  std::string str = strat.ToString(*scenario_.mapping);
  EXPECT_NE(str.find("rank 1"), std::string::npos);
  EXPECT_NE(str.find("sigma2"), std::string::npos);
}

TEST_F(StratifiedTest, DuplicateStepsCollapseInBlocks) {
  OneRouteResult one = ComputeOneRoute(*scenario_.mapping, *scenario_.source,
                                       *scenario_.target, {T(2)});
  ASSERT_TRUE(one.found);
  std::vector<SatStep> doubled = one.route.steps();
  doubled.insert(doubled.end(), one.route.steps().begin(),
                 one.route.steps().end());
  StratifiedInterpretation a = Stratify(
      one.route, *scenario_.mapping, *scenario_.source, *scenario_.target);
  StratifiedInterpretation b =
      Stratify(Route(doubled), *scenario_.mapping, *scenario_.source,
               *scenario_.target);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace spider
