// kAnalyze: whole-mapping static analysis over a session's loaded mapping,
// with replies cached by mapping content hash across sessions.
#include <string>

#include <gtest/gtest.h>

#include "serve/protocol.h"
#include "serve/session_manager.h"
#include "testing/fixtures.h"

namespace spider::serve {
namespace {

Request Make(MsgType type, uint64_t session_id, std::string text = "") {
  Request request;
  request.type = type;
  request.request_id = 1;
  request.session_id = session_id;
  request.text = std::move(text);
  return request;
}

// A mapping with something for every pass to find: q never fires (nothing
// writes C), U is populated only with an invented null.
std::string AnalyzableScenarioText() {
  return R"(
    source schema { S(a, b); }
    target schema { T(a, b); U(a); C(a); D(a); }
    strong: S(x, y) -> T(x, y);
    weak: S(x, y) -> exists Z . T(x, Z);
    u: S(x, y) -> exists N . U(N);
    q: C(x) -> D(x);
    source instance { S(1, 2); }
    target instance { T(1, 2); U(#N1); }
  )";
}

TEST(AnalyzeTest, FullAnalysisOverSessionMapping) {
  SessionManager manager;
  ASSERT_EQ(manager
                .Handle(Make(MsgType::kCreateSession, 1,
                             AnalyzableScenarioText()),
                        0)
                .type,
            MsgType::kReply);
  Response reply = manager.Handle(Make(MsgType::kAnalyze, 1), 0);
  ASSERT_EQ(reply.type, MsgType::kReply) << reply.text;
  EXPECT_FALSE(reply.text.empty());
}

TEST(AnalyzeTest, SpecTokensSelectPasses) {
  SessionManager manager;
  manager.Handle(Make(MsgType::kCreateSession, 1, AnalyzableScenarioText()),
                 0);

  Response reach =
      manager.Handle(Make(MsgType::kAnalyze, 1, "reachability"), 0);
  ASSERT_EQ(reach.type, MsgType::kReply) << reach.text;
  EXPECT_NE(reach.text.find("reachability:"), std::string::npos);
  EXPECT_NE(reach.text.find("C: unreachable"), std::string::npos);
  EXPECT_NE(reach.text.find("D: unreachable"), std::string::npos);

  Response cover = manager.Handle(Make(MsgType::kAnalyze, 1, "min-cover"), 0);
  ASSERT_EQ(cover.type, MsgType::kReply) << cover.text;
  EXPECT_NE(cover.text.find("min-cover:"), std::string::npos);
  EXPECT_NE(cover.text.find("remove weak"), std::string::npos);

  Response both = manager.Handle(
      Make(MsgType::kAnalyze, 1, "fast min-cover reachability"), 0);
  ASSERT_EQ(both.type, MsgType::kReply) << both.text;
  EXPECT_NE(both.text.find("reachability:"), std::string::npos);
  EXPECT_NE(both.text.find("min-cover:"), std::string::npos);

  Response bad = manager.Handle(Make(MsgType::kAnalyze, 1, "everything"), 0);
  EXPECT_EQ(bad.type, MsgType::kError);
  EXPECT_EQ(bad.code, ErrorCode::kBadRequest);
  EXPECT_NE(bad.text.find("everything"), std::string::npos);
}

TEST(AnalyzeTest, RepliesAreCachedByMappingContent) {
  SessionManager manager;
  manager.Handle(Make(MsgType::kCreateSession, 1, AnalyzableScenarioText()),
                 0);
  Response first = manager.Handle(Make(MsgType::kAnalyze, 1, "min-cover"), 0);
  ASSERT_EQ(first.type, MsgType::kReply);
  EXPECT_EQ(manager.stats().analyze_cache_misses, 1u);
  EXPECT_EQ(manager.stats().analyze_cache_hits, 0u);

  Response second =
      manager.Handle(Make(MsgType::kAnalyze, 1, "min-cover"), 0);
  ASSERT_EQ(second.type, MsgType::kReply);
  EXPECT_EQ(second.text, first.text);  // Byte-identical from the cache.
  EXPECT_EQ(manager.stats().analyze_cache_hits, 1u);

  // Another session over the SAME scenario text shares the entry: the key
  // is the mapping's content hash, not the session id.
  manager.Handle(Make(MsgType::kCreateSession, 2, AnalyzableScenarioText()),
                 0);
  Response shared =
      manager.Handle(Make(MsgType::kAnalyze, 2, "min-cover"), 0);
  ASSERT_EQ(shared.type, MsgType::kReply);
  EXPECT_EQ(shared.text, first.text);
  EXPECT_EQ(manager.stats().analyze_cache_hits, 2u);
  EXPECT_EQ(manager.stats().analyze_cache_misses, 1u);

  // A different spec is a different entry.
  Response other = manager.Handle(Make(MsgType::kAnalyze, 1, "fast"), 0);
  ASSERT_EQ(other.type, MsgType::kReply);
  EXPECT_EQ(manager.stats().analyze_cache_misses, 2u);
}

TEST(AnalyzeTest, StatsReportCacheCounters) {
  SessionManager manager;
  manager.Handle(Make(MsgType::kCreateSession, 1, AnalyzableScenarioText()),
                 0);
  manager.Handle(Make(MsgType::kAnalyze, 1), 0);
  manager.Handle(Make(MsgType::kAnalyze, 1), 0);
  Response stats = manager.Handle(Make(MsgType::kStats, 0), 0);
  ASSERT_EQ(stats.type, MsgType::kReply);
  EXPECT_NE(stats.text.find("analyze_cache_hits 1\n"), std::string::npos);
  EXPECT_NE(stats.text.find("analyze_cache_misses 1\n"), std::string::npos);
}

TEST(AnalyzeTest, UnknownSessionIsAnError) {
  SessionManager manager;
  Response reply = manager.Handle(Make(MsgType::kAnalyze, 99), 0);
  EXPECT_EQ(reply.type, MsgType::kError);
  EXPECT_EQ(reply.code, ErrorCode::kNoSuchSession);
}

TEST(AnalyzeTest, AnalyzeWorksOnWorkloadLoadedSessions) {
  SessionManager manager;
  ASSERT_EQ(manager.Handle(Make(MsgType::kLoadSession, 1, "random:7"), 0)
                .type,
            MsgType::kReply);
  Response reply =
      manager.Handle(Make(MsgType::kAnalyze, 1, "reachability"), 0);
  ASSERT_EQ(reply.type, MsgType::kReply) << reply.text;
  EXPECT_NE(reply.text.find("reachability:"), std::string::npos);
}

TEST(AnalyzeTest, MsgTypeRoundTripsThroughProtocol) {
  EXPECT_STREQ(MsgTypeName(MsgType::kAnalyze), "analyze");
  // The decoder accepts the new type (a wire round-trip would reject an
  // unknown request type before dispatch).
  Request request;
  request.type = MsgType::kAnalyze;
  request.request_id = 7;
  request.session_id = 1;
  request.text = "reachability";
  std::string error;
  Request decoded;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(request), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.type, MsgType::kAnalyze);
  EXPECT_EQ(decoded.text, "reachability");
}

}  // namespace
}  // namespace spider::serve
