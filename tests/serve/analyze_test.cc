// kAnalyze: whole-mapping static analysis over a session's loaded mapping,
// with replies cached by mapping content hash across sessions.
#include <string>

#include <gtest/gtest.h>

#include "serve/protocol.h"
#include "serve/session_manager.h"
#include "testing/fixtures.h"

namespace spider::serve {
namespace {

Request Make(MsgType type, uint64_t session_id, std::string text = "") {
  Request request;
  request.type = type;
  request.request_id = 1;
  request.session_id = session_id;
  request.text = std::move(text);
  return request;
}

// A mapping with something for every pass to find: q never fires (nothing
// writes C), U is populated only with an invented null.
std::string AnalyzableScenarioText() {
  return R"(
    source schema { S(a, b); }
    target schema { T(a, b); U(a); C(a); D(a); }
    strong: S(x, y) -> T(x, y);
    weak: S(x, y) -> exists Z . T(x, Z);
    u: S(x, y) -> exists N . U(N);
    q: C(x) -> D(x);
    source instance { S(1, 2); }
    target instance { T(1, 2); U(#N1); }
  )";
}

TEST(AnalyzeTest, FullAnalysisOverSessionMapping) {
  SessionManager manager;
  ASSERT_EQ(manager
                .Handle(Make(MsgType::kCreateSession, 1,
                             AnalyzableScenarioText()),
                        0)
                .type,
            MsgType::kReply);
  Response reply = manager.Handle(Make(MsgType::kAnalyze, 1), 0);
  ASSERT_EQ(reply.type, MsgType::kReply) << reply.text;
  EXPECT_FALSE(reply.text.empty());
}

TEST(AnalyzeTest, SpecTokensSelectPasses) {
  SessionManager manager;
  manager.Handle(Make(MsgType::kCreateSession, 1, AnalyzableScenarioText()),
                 0);

  Response reach =
      manager.Handle(Make(MsgType::kAnalyze, 1, "reachability"), 0);
  ASSERT_EQ(reach.type, MsgType::kReply) << reach.text;
  EXPECT_NE(reach.text.find("reachability:"), std::string::npos);
  EXPECT_NE(reach.text.find("C: unreachable"), std::string::npos);
  EXPECT_NE(reach.text.find("D: unreachable"), std::string::npos);

  Response cover = manager.Handle(Make(MsgType::kAnalyze, 1, "min-cover"), 0);
  ASSERT_EQ(cover.type, MsgType::kReply) << cover.text;
  EXPECT_NE(cover.text.find("min-cover:"), std::string::npos);
  EXPECT_NE(cover.text.find("remove weak"), std::string::npos);

  Response both = manager.Handle(
      Make(MsgType::kAnalyze, 1, "fast min-cover reachability"), 0);
  ASSERT_EQ(both.type, MsgType::kReply) << both.text;
  EXPECT_NE(both.text.find("reachability:"), std::string::npos);
  EXPECT_NE(both.text.find("min-cover:"), std::string::npos);

  Response bad = manager.Handle(Make(MsgType::kAnalyze, 1, "everything"), 0);
  EXPECT_EQ(bad.type, MsgType::kError);
  EXPECT_EQ(bad.code, ErrorCode::kBadRequest);
  EXPECT_NE(bad.text.find("everything"), std::string::npos);
}

TEST(AnalyzeTest, RepliesAreCachedByMappingContent) {
  SessionManager manager;
  manager.Handle(Make(MsgType::kCreateSession, 1, AnalyzableScenarioText()),
                 0);
  Response first = manager.Handle(Make(MsgType::kAnalyze, 1, "min-cover"), 0);
  ASSERT_EQ(first.type, MsgType::kReply);
  EXPECT_EQ(manager.stats().analyze_cache_misses, 1u);
  EXPECT_EQ(manager.stats().analyze_cache_hits, 0u);

  Response second =
      manager.Handle(Make(MsgType::kAnalyze, 1, "min-cover"), 0);
  ASSERT_EQ(second.type, MsgType::kReply);
  EXPECT_EQ(second.text, first.text);  // Byte-identical from the cache.
  EXPECT_EQ(manager.stats().analyze_cache_hits, 1u);

  // Another session over the SAME scenario text shares the entry: the key
  // is the mapping's content hash, not the session id.
  manager.Handle(Make(MsgType::kCreateSession, 2, AnalyzableScenarioText()),
                 0);
  Response shared =
      manager.Handle(Make(MsgType::kAnalyze, 2, "min-cover"), 0);
  ASSERT_EQ(shared.type, MsgType::kReply);
  EXPECT_EQ(shared.text, first.text);
  EXPECT_EQ(manager.stats().analyze_cache_hits, 2u);
  EXPECT_EQ(manager.stats().analyze_cache_misses, 1u);

  // A different spec is a different entry.
  Response other = manager.Handle(Make(MsgType::kAnalyze, 1, "fast"), 0);
  ASSERT_EQ(other.type, MsgType::kReply);
  EXPECT_EQ(manager.stats().analyze_cache_misses, 2u);
}

TEST(AnalyzeTest, StatsReportCacheCounters) {
  SessionManager manager;
  manager.Handle(Make(MsgType::kCreateSession, 1, AnalyzableScenarioText()),
                 0);
  manager.Handle(Make(MsgType::kAnalyze, 1), 0);
  manager.Handle(Make(MsgType::kAnalyze, 1), 0);
  Response stats = manager.Handle(Make(MsgType::kStats, 0), 0);
  ASSERT_EQ(stats.type, MsgType::kReply);
  EXPECT_NE(stats.text.find("analyze_cache_hits 1\n"), std::string::npos);
  EXPECT_NE(stats.text.find("analyze_cache_misses 1\n"), std::string::npos);
}

TEST(AnalyzeTest, ComposeTokenComposesWithSecondScenario) {
  SessionManager manager;
  manager.Handle(Make(MsgType::kCreateSession, 1, R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    sigma: S(x, y) -> T(x, y);
    source instance { S(1, 2); }
  )"),
                 0);
  std::string spec = "compose\n";
  spec += R"(
    source schema { T(a, b); }
    target schema { U(a); }
    tau: T(x, y) -> U(x);
  )";
  Response reply = manager.Handle(Make(MsgType::kAnalyze, 1, spec), 0);
  ASSERT_EQ(reply.type, MsgType::kReply) << reply.text;
  EXPECT_NE(reply.text.find("compose: composed"), std::string::npos)
      << reply.text;
  EXPECT_NE(reply.text.find("tau*sigma"), std::string::npos) << reply.text;
  EXPECT_EQ(manager.stats().analyze_cache_misses, 1u);

  // Byte-identical from the cache on repeat.
  Response again = manager.Handle(Make(MsgType::kAnalyze, 1, spec), 0);
  ASSERT_EQ(again.type, MsgType::kReply);
  EXPECT_EQ(again.text, reply.text);
  EXPECT_EQ(manager.stats().analyze_cache_hits, 1u);

  // A malformed second scenario is a bad request, not an engine error.
  Response bad =
      manager.Handle(Make(MsgType::kAnalyze, 1, "compose\nnot a scenario"), 0);
  EXPECT_EQ(bad.type, MsgType::kError);
  EXPECT_EQ(bad.code, ErrorCode::kBadRequest);
}

TEST(AnalyzeTest, CoreTokenReportsSolutionCore) {
  SessionManager manager;
  // q fires before p, so the solution carries a redundant null-padded fact.
  manager.Handle(Make(MsgType::kCreateSession, 1, R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    q: S(x, y) -> exists Z . T(x, Z);
    p: S(x, y) -> T(x, y);
    source instance { S(1, 2); }
  )"),
                 0);
  Response reply = manager.Handle(Make(MsgType::kAnalyze, 1, "core"), 0);
  ASSERT_EQ(reply.type, MsgType::kReply) << reply.text;
  EXPECT_NE(reply.text.find("core: 1 folded, 1 nulls collapsed"),
            std::string::npos)
      << reply.text;
  EXPECT_NE(reply.text.find("T(1, 2)"), std::string::npos) << reply.text;
  // The session's own solution is untouched (the reply is a report).
  Response route = manager.Handle(Make(MsgType::kRoute, 1, "T(1, #N1)"), 0);
  EXPECT_EQ(route.type, MsgType::kReply) << route.text;

  // Cached by session state, and the cache key differs from plain analyze.
  Response again = manager.Handle(Make(MsgType::kAnalyze, 1, "core"), 0);
  ASSERT_EQ(again.type, MsgType::kReply);
  EXPECT_EQ(again.text, reply.text);
  EXPECT_EQ(manager.stats().analyze_cache_hits, 1u);

  Response both =
      manager.Handle(Make(MsgType::kAnalyze, 1, "compose core"), 0);
  EXPECT_EQ(both.type, MsgType::kError);
  EXPECT_EQ(both.code, ErrorCode::kBadRequest);
}

TEST(AnalyzeTest, CoreCacheInvalidatesOnDelta) {
  SessionManager manager;
  manager.Handle(Make(MsgType::kCreateSession, 1, R"(
    source schema { S(a, b); }
    target schema { T(a, b); }
    q: S(x, y) -> exists Z . T(x, Z);
    p: S(x, y) -> T(x, y);
    source instance { S(1, 2); }
  )"),
                 0);
  Response first = manager.Handle(Make(MsgType::kAnalyze, 1, "core"), 0);
  ASSERT_EQ(first.type, MsgType::kReply);
  EXPECT_EQ(manager.stats().analyze_cache_misses, 1u);

  Request delta = Make(MsgType::kApplyDelta, 1);
  delta.ops.push_back({DeltaOp::kInsert, "S(3, 4)"});
  ASSERT_EQ(manager.Handle(delta, 0).type, MsgType::kReply);

  // New state key -> fresh computation covering the new facts.
  Response second = manager.Handle(Make(MsgType::kAnalyze, 1, "core"), 0);
  ASSERT_EQ(second.type, MsgType::kReply);
  EXPECT_EQ(manager.stats().analyze_cache_misses, 2u);
  EXPECT_NE(second.text.find("T(3, 4)"), std::string::npos) << second.text;
}

TEST(AnalyzeTest, UnknownSessionIsAnError) {
  SessionManager manager;
  Response reply = manager.Handle(Make(MsgType::kAnalyze, 99), 0);
  EXPECT_EQ(reply.type, MsgType::kError);
  EXPECT_EQ(reply.code, ErrorCode::kNoSuchSession);
}

TEST(AnalyzeTest, AnalyzeWorksOnWorkloadLoadedSessions) {
  SessionManager manager;
  ASSERT_EQ(manager.Handle(Make(MsgType::kLoadSession, 1, "random:7"), 0)
                .type,
            MsgType::kReply);
  Response reply =
      manager.Handle(Make(MsgType::kAnalyze, 1, "reachability"), 0);
  ASSERT_EQ(reply.type, MsgType::kReply) << reply.text;
  EXPECT_NE(reply.text.find("reachability:"), std::string::npos);
}

TEST(AnalyzeTest, MsgTypeRoundTripsThroughProtocol) {
  EXPECT_STREQ(MsgTypeName(MsgType::kAnalyze), "analyze");
  // The decoder accepts the new type (a wire round-trip would reject an
  // unknown request type before dispatch).
  Request request;
  request.type = MsgType::kAnalyze;
  request.request_id = 7;
  request.session_id = 1;
  request.text = "reachability";
  std::string error;
  Request decoded;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(request), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.type, MsgType::kAnalyze);
  EXPECT_EQ(decoded.text, "reachability");
}

}  // namespace
}  // namespace spider::serve
