// Deadline + cooperative-cancellation coverage across every request
// lifecycle stage: queued behind a busy session, parked, mid-pool
// execution, and completion racing cancellation. Also pins the invariant
// that a cancelled request leaves its session byte-identical to never
// having asked (differential against a fresh session) and the structured
// reply-size cap on pathological route forests.
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/cancel.h"
#include "exec/exec_options.h"
#include "exec/thread_pool.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/session_manager.h"
#include "serve/wire.h"
#include "testing/fixtures.h"

namespace spider::serve {
namespace {

// Sanitizers slow the engine by 5-20x; timing assertions scale with them.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr uint64_t kPromptBoundMs = 2000;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr uint64_t kPromptBoundMs = 2000;
#else
constexpr uint64_t kPromptBoundMs = 200;
#endif
#else
constexpr uint64_t kPromptBoundMs = 200;
#endif

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Transitive-closure chain S(1,2)..S(n-1,n) with the full closure as the
/// target solution. AllRoutes on T(1,n) explores O(n^2) facts with O(n)
/// witnesses each — seconds of engine work for n around 100, which is the
/// "slow request" every test here runs a deadline or cancel against.
std::string ChainText(int n) {
  std::string text =
      "source schema { S(x, y); }\n"
      "target schema { T(x, y); }\n"
      "sigma1: S(x,y) -> T(x,y);\n"
      "sigma2: T(x,y) & T(y,z) -> T(x,z);\n"
      "source instance { ";
  for (int i = 1; i < n; ++i) {
    text += "S(" + std::to_string(i) + "," + std::to_string(i + 1) + "); ";
  }
  text += "}\ntarget instance {\n";
  for (int i = 1; i <= n; ++i) {
    for (int j = i + 1; j <= n; ++j) {
      text += "T(" + std::to_string(i) + "," + std::to_string(j) + ");\n";
    }
  }
  text += "}\n";
  return text;
}

std::string ChainHead(int n) { return "T(1, " + std::to_string(n) + ")"; }

constexpr int kSlowChain = 100;

ServerOptions PooledOptions() {
  ServerOptions options;
  ExecOptions exec;
  exec.num_threads = 2;
  options.pool = ThreadPool::For(exec);
  return options;
}

Request MakeRequest(MsgType type, uint64_t session_id, std::string text,
                    uint32_t deadline_ms = 0) {
  Request request;
  request.type = type;
  request.session_id = session_id;
  request.text = std::move(text);
  request.deadline_ms = deadline_ms;
  return request;
}

// ---------------------------------------------------------------------------
// Deadlines.

TEST(CancelTest, DeadlineExceededPromptlyAndSessionReusable) {
  Server server(PooledOptions());
  server.Start();
  Client client;
  client.Connect("127.0.0.1", server.port());
  ASSERT_EQ(client.CreateSession(1, ChainText(kSlowChain)).type,
            MsgType::kReply);

  // A 50ms deadline against a multi-second all-routes: the reply must be
  // kDeadlineExceeded and arrive well before the work could have finished.
  uint64_t t0 = NowMs();
  Response slow = client.Call(
      MakeRequest(MsgType::kAllRoutes, 1, ChainHead(kSlowChain), 50));
  uint64_t elapsed = NowMs() - t0;
  EXPECT_EQ(slow.type, MsgType::kError);
  EXPECT_EQ(slow.code, ErrorCode::kDeadlineExceeded) << slow.text;
  EXPECT_LT(elapsed, kPromptBoundMs);

  // The session survives the abort and still answers.
  Response after = client.Route(1, "T(1, 2)");
  EXPECT_EQ(after.type, MsgType::kReply) << after.text;
  EXPECT_GE(server.manager().stats().deadline_exceeded, 1u);
  client.Close();
  server.Stop();
}

TEST(CancelTest, DefaultDeadlineAppliesToBareRequests) {
  ServerOptions options = PooledOptions();
  options.default_deadline_ms = 50;
  Server server(options);
  server.Start();
  Client client;
  client.Connect("127.0.0.1", server.port());
  // The create is also under the default deadline; use a cheap scenario.
  ASSERT_EQ(client.CreateSession(1, testing::TransitiveClosureText()).type,
            MsgType::kReply);
  // Cheap probes fit in 50ms; this one does not and carries no deadline of
  // its own.
  Response fast = client.Route(1, "T(1, 3)");
  EXPECT_EQ(fast.type, MsgType::kReply) << fast.text;
  client.Close();
  server.Stop();
}

TEST(CancelTest, QueuedRequestDeadlineFiresWhileSessionBusy) {
  Server server(PooledOptions());
  server.Start();
  Client client;
  client.Connect("127.0.0.1", server.port());
  ASSERT_EQ(client.CreateSession(1, ChainText(kSlowChain)).type,
            MsgType::kReply);

  // A: slow, no deadline. B: parked behind A with a 50ms deadline. B must
  // be answered kDeadlineExceeded from the queue, before A completes.
  uint64_t a = client.Send(
      MakeRequest(MsgType::kAllRoutes, 1, ChainHead(kSlowChain)));
  uint64_t b = client.Send(MakeRequest(MsgType::kRoute, 1, "T(1, 2)", 50));

  Response first;
  ASSERT_TRUE(client.ReadResponse(&first));
  EXPECT_EQ(first.request_id, b);
  EXPECT_EQ(first.code, ErrorCode::kDeadlineExceeded) << first.text;

  Response second;
  ASSERT_TRUE(client.ReadResponse(&second));
  EXPECT_EQ(second.request_id, a);  // Whatever A produced, B came first.
  client.Close();
  server.Stop();
}

// ---------------------------------------------------------------------------
// Explicit cancel (kCancel opcode).

TEST(CancelTest, CancelParkedRequestNeverStarts) {
  Server server(PooledOptions());
  server.Start();
  Client client;
  client.Connect("127.0.0.1", server.port());
  ASSERT_EQ(client.CreateSession(1, ChainText(kSlowChain)).type,
            MsgType::kReply);
  uint64_t requests_before = server.manager().stats().requests;

  uint64_t a = client.Send(
      MakeRequest(MsgType::kAllRoutes, 1, ChainHead(kSlowChain)));
  uint64_t b = client.Send(MakeRequest(MsgType::kRoute, 1, "T(1, 2)"));
  uint64_t c = client.SendCancel(b);

  // Reply order pins the O(1) parked kill: B's kCancelled first (the
  // target dies immediately, A is still executing), then the cancel ack,
  // then eventually A.
  Response first;
  ASSERT_TRUE(client.ReadResponse(&first));
  EXPECT_EQ(first.request_id, b);
  EXPECT_EQ(first.code, ErrorCode::kCancelled) << first.text;

  Response ack;
  ASSERT_TRUE(client.ReadResponse(&ack));
  EXPECT_EQ(ack.request_id, c);
  EXPECT_EQ(ack.text, "cancelled\n");

  Response last;
  ASSERT_TRUE(client.ReadResponse(&last));
  EXPECT_EQ(last.request_id, a);

  // B never reached the manager: only A (and no one else) was handled.
  EXPECT_EQ(server.manager().stats().requests, requests_before + 1);
  client.Close();
  server.Stop();
}

TEST(CancelTest, CancelInFlightRequestAborts) {
  Server server(PooledOptions());
  server.Start();
  Client client;
  client.Connect("127.0.0.1", server.port());
  ASSERT_EQ(client.CreateSession(1, ChainText(kSlowChain)).type,
            MsgType::kReply);

  uint64_t a = client.Send(
      MakeRequest(MsgType::kAllRoutes, 1, ChainHead(kSlowChain)));
  // Give the request time to reach the pool, then cancel it mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  uint64_t t0 = NowMs();
  uint64_t c = client.SendCancel(a);

  Response ack;
  ASSERT_TRUE(client.ReadResponse(&ack));
  EXPECT_EQ(ack.request_id, c);
  EXPECT_EQ(ack.text, "cancel_pending\n");

  Response aborted;
  ASSERT_TRUE(client.ReadResponse(&aborted));
  EXPECT_EQ(aborted.request_id, a);
  EXPECT_EQ(aborted.code, ErrorCode::kCancelled) << aborted.text;
  EXPECT_LT(NowMs() - t0, kPromptBoundMs);

  // Session still usable after the abort.
  EXPECT_EQ(client.Route(1, "T(1, 2)").type, MsgType::kReply);
  EXPECT_GE(server.netstats().cancels_received, 1u);
  client.Close();
  server.Stop();
}

TEST(CancelTest, CancelUnknownRequestIsNotFound) {
  Server server(PooledOptions());
  server.Start();
  Client client;
  client.Connect("127.0.0.1", server.port());
  uint64_t c = client.SendCancel(424242);
  Response ack;
  ASSERT_TRUE(client.ReadResponse(&ack));
  EXPECT_EQ(ack.request_id, c);
  EXPECT_EQ(ack.text, "not_found\n");
  client.Close();
  server.Stop();
}

TEST(CancelTest, CompletionRacingCancellationYieldsOneCleanReplyEach) {
  Server server(PooledOptions());
  server.Start();
  Client client;
  client.Connect("127.0.0.1", server.port());
  ASSERT_EQ(client.CreateSession(1, testing::TransitiveClosureText()).type,
            MsgType::kReply);

  // A fast probe cancelled immediately: the cancel either catches it
  // (cancelled / cancel_pending) or loses the race (not_found). In every
  // interleaving the target gets EXACTLY one reply and the ack follows.
  for (int round = 0; round < 20; ++round) {
    uint64_t a = client.Send(MakeRequest(MsgType::kRoute, 1, "T(1, 3)"));
    uint64_t c = client.SendCancel(a);
    Response r1;
    Response r2;
    ASSERT_TRUE(client.ReadResponse(&r1));
    ASSERT_TRUE(client.ReadResponse(&r2));
    // Both replies, each exactly once, in either order.
    ASSERT_TRUE((r1.request_id == a && r2.request_id == c) ||
                (r1.request_id == c && r2.request_id == a));
    const Response& target = r1.request_id == a ? r1 : r2;
    const Response& ack = r1.request_id == c ? r1 : r2;
    EXPECT_TRUE(target.type == MsgType::kReply ||
                target.code == ErrorCode::kCancelled)
        << target.text;
    EXPECT_TRUE(ack.text == "cancelled\n" || ack.text == "cancel_pending\n" ||
                ack.text == "not_found\n")
        << ack.text;
  }
  client.Close();
  server.Stop();
}

// ---------------------------------------------------------------------------
// A cancelled request leaves the session byte-identical to never asking.

TEST(CancelTest, CancelledWorkLeavesSessionByteIdentical) {
  SessionManagerOptions options;
  SessionManager touched(options);
  SessionManager fresh(options);

  Request create = MakeRequest(MsgType::kCreateSession, 1, ChainText(30));
  ASSERT_EQ(touched.Handle(create, 0).type, MsgType::kReply);
  ASSERT_EQ(fresh.Handle(create, 0).type, MsgType::kReply);

  // Abort an all-routes on `touched` mid-flight (a background flip of the
  // token), and an apply-delta plus another probe with pre-flipped tokens.
  {
    CancelToken token;
    std::thread flipper([&token] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      token.Cancel(CancelToken::Reason::kCancelled);
    });
    Response aborted = touched.Handle(
        MakeRequest(MsgType::kAllRoutes, 1, ChainHead(30)), 0, &token);
    flipper.join();
    // Either the engine observed the flip or the probe won the race; both
    // are legal — the differential below is the real assertion.
    EXPECT_TRUE(aborted.code == ErrorCode::kCancelled ||
                aborted.type == MsgType::kReply)
        << aborted.text;
  }
  {
    CancelToken token;
    token.Cancel(CancelToken::Reason::kDeadline);
    Request apply = MakeRequest(MsgType::kApplyDelta, 1, "");
    apply.ops = {DeltaOp{DeltaOp::kInsert, "S(30, 31)"}};
    Response dead = touched.Handle(apply, 0, &token);
    EXPECT_EQ(dead.code, ErrorCode::kDeadlineExceeded) << dead.text;
    Response probe =
        touched.Handle(MakeRequest(MsgType::kRoute, 1, "T(1, 5)"), 0, &token);
    EXPECT_EQ(probe.code, ErrorCode::kDeadlineExceeded) << probe.text;
  }

  // Replay an identical probe script on both managers: every reply must
  // match byte for byte, i.e. the cancelled work left no trace.
  std::vector<Request> script;
  script.push_back(MakeRequest(MsgType::kRoute, 1, "T(1, 5)"));
  script.push_back(MakeRequest(MsgType::kAllRoutes, 1, "T(1, 4)"));
  Request apply = MakeRequest(MsgType::kApplyDelta, 1, "");
  apply.ops = {DeltaOp{DeltaOp::kInsert, "S(30, 31)"}};
  script.push_back(apply);
  script.push_back(MakeRequest(MsgType::kRoute, 1, "T(29, 31)"));
  script.push_back(MakeRequest(MsgType::kAllRoutes, 1, "T(28, 31)"));
  for (const Request& request : script) {
    Response a = touched.Handle(request, 0);
    Response b = fresh.Handle(request, 0);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.code, b.code);
    EXPECT_EQ(a.text, b.text);
  }
}

// ---------------------------------------------------------------------------
// Reply-size cap.

TEST(CancelTest, PathologicalForestReplyIsCappedStructurally) {
  SessionManagerOptions options;
  options.max_reply_bytes = 64u << 10;  // The n=40 render is ~2 MB.
  SessionManager manager(options);
  ASSERT_EQ(
      manager.Handle(MakeRequest(MsgType::kCreateSession, 1, ChainText(40)), 0)
          .type,
      MsgType::kReply);

  Response capped =
      manager.Handle(MakeRequest(MsgType::kAllRoutes, 1, ChainHead(40)), 0);
  EXPECT_EQ(capped.type, MsgType::kError);
  EXPECT_EQ(capped.code, ErrorCode::kReplyTooLarge) << capped.text;
  EXPECT_NE(capped.text.find("max_reply_bytes 65536"), std::string::npos)
      << capped.text;
  EXPECT_EQ(manager.stats().replies_truncated, 1u);

  // Small probes still fit; the session is unharmed.
  EXPECT_EQ(manager.Handle(MakeRequest(MsgType::kRoute, 1, "T(1, 2)"), 0).type,
            MsgType::kReply);
  // The stats reply carries the new counters.
  Response stats = manager.Handle(MakeRequest(MsgType::kStats, 0, ""), 0);
  EXPECT_NE(stats.text.find("replies_truncated 1\n"), std::string::npos)
      << stats.text;
}

}  // namespace
}  // namespace spider::serve
