// Differential oracle: N client threads x M sessions replaying the same
// script concurrently over loopback must produce responses byte-identical
// to the same script run sequentially against an in-process
// SessionManager. This is the end-to-end determinism claim of the shared
// cache tiers: concurrency and cross-session cache hits must never change
// a single reply byte.
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/exec_options.h"
#include "exec/thread_pool.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/session_manager.h"
#include "testing/fixtures.h"

namespace spider::serve {
namespace {

/// One scripted step; session_id is filled in per replayed session.
struct Step {
  MsgType type;
  std::string text;
  std::vector<DeltaOp> ops;
};

/// The probe script: creation, cached and uncached probes, an edit, probes
/// whose answers change with the edit, a lint, and a deterministic engine
/// error. Every reply participates in the comparison.
std::vector<Step> Script() {
  return {
      {MsgType::kCreateSession, testing::TransitiveClosureText(), {}},
      {MsgType::kRoute, "T(1, 3)", {}},
      {MsgType::kAllRoutes, "T(1, 3)", {}},
      {MsgType::kApplyDelta, "", {DeltaOp{DeltaOp::kInsert, "S(3, 4)"}}},
      {MsgType::kRoute, "T(1, 4)", {}},
      {MsgType::kAllRoutes, "T(2, 4)", {}},
      {MsgType::kLint, "", {}},
      {MsgType::kRoute, "T(9, 9)", {}},  // No such fact: engine error.
      {MsgType::kRoute, "T(1, 3)", {}},
  };
}

/// A reply's comparable identity.
struct Reply {
  MsgType type;
  ErrorCode code;
  std::string text;
  friend bool operator==(const Reply&, const Reply&) = default;
};

Reply ToReply(const Response& response) {
  return Reply{response.type, response.code, response.text};
}

/// The oracle: the script against a fresh in-process manager, no sockets,
/// no concurrency.
std::vector<Reply> SequentialOracle() {
  SessionManager manager;
  std::vector<Reply> replies;
  uint64_t request_id = 1;
  for (const Step& step : Script()) {
    Request request;
    request.type = step.type;
    request.request_id = request_id++;
    request.session_id = 1;
    request.text = step.text;
    request.ops = step.ops;
    replies.push_back(ToReply(manager.Handle(request, 0)));
  }
  return replies;
}

TEST(DifferentialTest, ConcurrentLoopbackMatchesSequentialOracle) {
  std::vector<Reply> oracle = SequentialOracle();
  ASSERT_EQ(oracle.size(), Script().size());
  ASSERT_EQ(oracle[0].type, MsgType::kReply) << oracle[0].text;

  ServerOptions options;
  options.manager.max_sessions = 80;
  ExecOptions exec;
  exec.num_threads = 2;
  options.pool = ThreadPool::For(exec);
  Server server(options);
  server.Start();

  constexpr int kThreads = 8;
  constexpr int kSessionsPerThread = 8;  // 64 sessions total.
  std::vector<std::vector<std::vector<Reply>>> replies(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client;
      client.Connect("127.0.0.1", server.port());
      replies[t].resize(kSessionsPerThread);
      // Interleave sessions within the thread too: each session advances
      // one script step per round, so cross-session cache interleavings
      // happen at every step boundary.
      std::vector<Step> script = Script();
      for (size_t step = 0; step < script.size(); ++step) {
        for (int s = 0; s < kSessionsPerThread; ++s) {
          uint64_t session_id =
              static_cast<uint64_t>(t) * kSessionsPerThread + s + 1;
          Request request;
          request.type = script[step].type;
          request.session_id = session_id;
          request.text = script[step].text;
          request.ops = script[step].ops;
          replies[t][s].push_back(ToReply(client.Call(request)));
        }
      }
      client.Close();
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t) {
    for (int s = 0; s < kSessionsPerThread; ++s) {
      ASSERT_EQ(replies[t][s].size(), oracle.size());
      for (size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(replies[t][s][i], oracle[i])
            << "thread " << t << " session " << s << " step " << i
            << " diverged: got [" << replies[t][s][i].text << "] want ["
            << oracle[i].text << "]";
      }
    }
  }

  // The point of the exercise: identical histories actually shared work.
  SharedRouteCacheStats cache = server.manager().shared_cache().stats();
  EXPECT_GT(cache.route_hits, 0u);
  server.Stop();
}

TEST(DifferentialTest, InProcessConcurrentManagerMatchesOracle) {
  // The same property one layer down: concurrent threads against ONE
  // SessionManager (no sockets), as the server's pool would drive it.
  std::vector<Reply> oracle = SequentialOracle();

  SessionManager manager;
  constexpr int kThreads = 8;
  std::vector<std::vector<Reply>> replies(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t request_id = 1;
      for (const Step& step : Script()) {
        Request request;
        request.type = step.type;
        request.request_id = request_id++;
        request.session_id = static_cast<uint64_t>(t) + 1;
        request.text = step.text;
        request.ops = step.ops;
        replies[t].push_back(ToReply(manager.Handle(request, 0)));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(replies[t].size(), oracle.size());
    for (size_t i = 0; i < oracle.size(); ++i) {
      EXPECT_EQ(replies[t][i], oracle[i]) << "thread " << t << " step " << i;
    }
  }
}

}  // namespace
}  // namespace spider::serve
