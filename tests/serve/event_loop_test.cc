// EventLoop unit tests: cross-thread Post, one-shot timers (ordering and
// cancellation), and fd readiness through a plain pipe.
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/event_loop.h"

namespace spider::serve {
namespace {

TEST(EventLoopTest, PostFromAnotherThreadRunsOnLoop) {
  EventLoop loop;
  std::atomic<int> ran{0};
  std::thread poster([&] {
    for (int i = 0; i < 10; ++i) {
      loop.Post([&] { ++ran; });
    }
    loop.Post([&] { loop.Stop(); });
  });
  loop.Run();
  poster.join();
  EXPECT_EQ(ran.load(), 10);
}

TEST(EventLoopTest, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.AddTimer(30, [&] {
    order.push_back(3);
    loop.Stop();
  });
  loop.AddTimer(1, [&] { order.push_back(1); });
  loop.AddTimer(10, [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopTest, CancelledTimerNeverFires) {
  EventLoop loop;
  bool fired = false;
  uint64_t id = loop.AddTimer(1, [&] { fired = true; });
  loop.CancelTimer(id);
  loop.AddTimer(20, [&] { loop.Stop(); });
  loop.Run();
  EXPECT_FALSE(fired);
}

TEST(EventLoopTest, TimerMayRearmItself) {
  EventLoop loop;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks == 3) {
      loop.Stop();
      return;
    }
    loop.AddTimer(1, tick);
  };
  loop.AddTimer(1, tick);
  loop.Run();
  EXPECT_EQ(ticks, 3);
}

TEST(EventLoopTest, FdReadinessDeliversBytes) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::string received;
  loop.WatchFd(fds[0], /*want_read=*/true, /*want_write=*/false,
               [&](uint32_t events) {
                 ASSERT_TRUE(events & kEventRead);
                 char buf[16];
                 ssize_t n = read(fds[0], buf, sizeof(buf));
                 ASSERT_GT(n, 0);
                 received.append(buf, static_cast<size_t>(n));
                 if (received.size() >= 5) loop.Stop();
               });
  std::thread writer([&] {
    ASSERT_EQ(write(fds[1], "hello", 5), 5);
  });
  loop.Run();
  writer.join();
  loop.ForgetFd(fds[0]);
  close(fds[0]);
  close(fds[1]);
  EXPECT_EQ(received, "hello");
}

TEST(EventLoopTest, CallbackMayForgetItsOwnFd) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  int calls = 0;
  loop.WatchFd(fds[0], /*want_read=*/true, /*want_write=*/false,
               [&](uint32_t) {
                 ++calls;
                 loop.ForgetFd(fds[0]);
                 loop.AddTimer(5, [&] { loop.Stop(); });
               });
  ASSERT_EQ(write(fds[1], "x", 1), 1);
  loop.Run();
  // The byte was never drained; without ForgetFd a level-triggered loop
  // would spin. Exactly one delivery proves the fd was dropped.
  EXPECT_EQ(calls, 1);
  close(fds[0]);
  close(fds[1]);
}

TEST(EventLoopTest, NowMsAdvances) {
  EventLoop loop;
  uint64_t before = loop.NowMs();
  loop.AddTimer(5, [&] { loop.Stop(); });
  loop.Run();
  EXPECT_GE(loop.NowMs(), before + 5);
}

}  // namespace
}  // namespace spider::serve
