// Deterministic fault injection for the serve socket layer, through the
// SocketOps seam: short writes, EAGAIN storms, byte-at-a-time reads, and
// mid-write disconnects — all scripted, no kernel socket-buffer games, so
// every run (including under sanitizers) exercises the same interleaving.
// The invariant under every fault: a request produces exactly one clean
// reply, or the connection drops — never a corrupt or duplicate frame.
//
// The same shim drives the backpressure regressions: a "slow consumer"
// (writes all fail with EAGAIN) must suspend reads at the soft cap and be
// dropped at the hard cap, with bounded server-side buffering throughout.
#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "serve/client.h"
#include "serve/server.h"
#include "serve/socket_ops.h"
#include "serve/wire.h"
#include "testing/fixtures.h"

namespace spider::serve {
namespace {

/// Scripted SocketOps. Each Read/Write call pops the next action from its
/// queue; an empty queue passes through to the real syscall. Actions apply
/// to every connection fd (tests use one connection at a time), and the
/// queues are mutex-guarded because the test thread seeds them while the
/// loop thread consumes.
class FaultyOps : public SocketOps {
 public:
  struct Action {
    enum Kind { kPass, kCap, kEagain, kFail } kind = kPass;
    size_t cap = 0;  ///< kCap: at most this many bytes move.
  };

  ssize_t Read(int fd, void* buf, size_t len) override {
    Action action = Next(&read_actions_);
    switch (action.kind) {
      case Action::kEagain:
        errno = EAGAIN;
        return -1;
      case Action::kFail:
        errno = ECONNRESET;
        return -1;
      case Action::kCap:
        return RealSocketOps()->Read(fd, buf, std::min(len, action.cap));
      case Action::kPass:
        break;
    }
    return RealSocketOps()->Read(fd, buf, len);
  }

  ssize_t Write(int fd, const void* buf, size_t len) override {
    if (block_writes_.load(std::memory_order_relaxed)) {
      errno = EAGAIN;
      return -1;
    }
    Action action = Next(&write_actions_);
    switch (action.kind) {
      case Action::kEagain:
        errno = EAGAIN;
        return -1;
      case Action::kFail:
        errno = EPIPE;
        return -1;
      case Action::kCap:
        return RealSocketOps()->Write(fd, buf, std::min(len, action.cap));
      case Action::kPass:
        break;
    }
    return RealSocketOps()->Write(fd, buf, len);
  }

  void PushRead(Action action, int times = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < times; ++i) read_actions_.push_back(action);
  }
  void PushWrite(Action action, int times = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < times; ++i) write_actions_.push_back(action);
  }
  /// Simulates a peer that stops consuming: every write EAGAINs until
  /// released. Overrides the scripted queue.
  void BlockWrites(bool blocked) {
    block_writes_.store(blocked, std::memory_order_relaxed);
  }

 private:
  Action Next(std::deque<Action>* queue) {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue->empty()) return Action{};
    Action action = queue->front();
    queue->pop_front();
    return action;
  }

  std::mutex mu_;
  std::deque<Action> read_actions_;
  std::deque<Action> write_actions_;
  std::atomic<bool> block_writes_{false};
};

struct Harness {
  FaultyOps ops;
  Server server;

  explicit Harness(ServerOptions options = {}) : server(WithOps(options)) {
    server.Start();
  }
  ServerOptions WithOps(ServerOptions options) {
    options.socket_ops = &ops;
    return options;
  }
  Client Connect() {
    Client client;
    client.Connect("127.0.0.1", server.port());
    return client;
  }
};

TEST(FaultInjectionTest, ShortWritesDeliverOneCleanReply) {
  Harness h;
  Client client = h.Connect();
  // The pong frame dribbles out 3 bytes per write with EAGAIN after each
  // chunk — the server must keep its place in the backlog.
  for (int i = 0; i < 16; ++i) {
    h.ops.PushWrite({FaultyOps::Action::kCap, 3});
    h.ops.PushWrite({FaultyOps::Action::kEagain});
  }
  Response pong = client.Ping();
  EXPECT_EQ(pong.type, MsgType::kReply);
  EXPECT_EQ(pong.text, "pong\n");
  client.Close();
  h.server.Stop();
}

TEST(FaultInjectionTest, EagainStormStillDelivers) {
  Harness h;
  Client client = h.Connect();
  h.ops.PushWrite({FaultyOps::Action::kEagain}, 64);
  Response pong = client.Ping();
  EXPECT_EQ(pong.type, MsgType::kReply);
  EXPECT_EQ(pong.text, "pong\n");
  client.Close();
  h.server.Stop();
}

TEST(FaultInjectionTest, ByteAtATimeReadsAssembleTheFrame) {
  Harness h;
  Client client = h.Connect();
  // The request frame arrives one byte per read() with EAGAINs between:
  // the framing layer must tolerate arbitrarily fragmented input.
  for (int i = 0; i < 64; ++i) {
    h.ops.PushRead({FaultyOps::Action::kCap, 1});
    h.ops.PushRead({FaultyOps::Action::kEagain});
  }
  Response pong = client.Ping();
  EXPECT_EQ(pong.type, MsgType::kReply);
  EXPECT_EQ(pong.text, "pong\n");
  client.Close();
  h.server.Stop();
}

TEST(FaultInjectionTest, MidWriteDisconnectDropsCleanly) {
  Harness h;
  Client client = h.Connect();
  // First write moves 2 bytes of the reply, the next one fails hard: the
  // server must drop the connection, not retry into a closed pipe.
  h.ops.PushWrite({FaultyOps::Action::kCap, 2});
  h.ops.PushWrite({FaultyOps::Action::kFail});
  client.SendRaw([] {
    Request ping;
    ping.type = MsgType::kPing;
    ping.request_id = 1;
    std::string frame;
    AppendFrame(EncodeRequest(ping), &frame);
    return frame;
  }());
  Response response;
  EXPECT_FALSE(client.ReadResponse(&response));  // Truncated frame, then EOF.

  // The server survives: a fresh connection works.
  Client again = h.Connect();
  EXPECT_EQ(again.Ping().text, "pong\n");
  again.Close();
  client.Close();
  h.server.Stop();
}

TEST(FaultInjectionTest, ReadErrorDropsConnectionOnly) {
  Harness h;
  Client client = h.Connect();
  EXPECT_EQ(client.Ping().text, "pong\n");  // Healthy first.
  h.ops.PushRead({FaultyOps::Action::kFail});
  client.SendRaw("\x01");  // Trigger readiness; the read itself fails.
  Response response;
  EXPECT_FALSE(client.ReadResponse(&response));
  Client again = h.Connect();
  EXPECT_EQ(again.Ping().text, "pong\n");
  again.Close();
  client.Close();
  h.server.Stop();
}

TEST(FaultInjectionTest, SlowConsumerSuspendsReadsAtSoftCap) {
  ServerOptions options;
  options.max_conn_out_bytes = 64;  // Tiny soft cap: two pongs cross it.
  options.conn_out_hard_limit_bytes = 1u << 20;
  Harness h(options);
  Client client = h.Connect();
  h.ops.BlockWrites(true);

  // Pipeline enough pings that the reply backlog crosses the soft cap.
  std::string burst;
  constexpr uint64_t kPings = 8;
  for (uint64_t id = 1; id <= kPings; ++id) {
    Request ping;
    ping.type = MsgType::kPing;
    ping.request_id = id;
    AppendFrame(EncodeRequest(ping), &burst);
  }
  client.SendRaw(burst);

  // The backlog cannot drain, so the server must suspend reads.
  for (int i = 0; i < 500 && h.server.netstats().read_suspends == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(h.server.netstats().read_suspends, 1u);
  EXPECT_LE(h.server.netstats().peak_conn_out_bytes,
            options.conn_out_hard_limit_bytes);

  // Peer starts consuming again: everything drains, in order, no losses.
  h.ops.BlockWrites(false);
  for (uint64_t id = 1; id <= kPings; ++id) {
    Response response;
    ASSERT_TRUE(client.ReadResponse(&response));
    EXPECT_EQ(response.request_id, id);
    EXPECT_EQ(response.text, "pong\n");
  }
  client.Close();
  h.server.Stop();
}

TEST(FaultInjectionTest, RunawayBacklogDropsConnectionAtHardCap) {
  ServerOptions options;
  // Soft cap above the hard cap so read suspension cannot kick in first:
  // this isolates the hard-cap drop path (in production the hard cap is
  // reached by pool completions landing while reads are already paused).
  options.max_conn_out_bytes = 1u << 20;
  options.conn_out_hard_limit_bytes = 512;
  Harness h(options);
  Client client = h.Connect();
  h.ops.BlockWrites(true);

  // Each pong is ~20 backlog bytes; a burst of pings the peer never
  // consumes must blow past the 512-byte hard cap.
  std::string burst;
  for (uint64_t id = 1; id <= 64; ++id) {
    Request ping;
    ping.type = MsgType::kPing;
    ping.request_id = id;
    AppendFrame(EncodeRequest(ping), &burst);
  }
  client.SendRaw(burst);

  for (int i = 0; i < 500 && h.server.netstats().conns_dropped == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(h.server.netstats().conns_dropped, 1u);

  // The dropped connection's memory is bounded by the hard cap plus one
  // frame, and the server keeps serving others.
  h.ops.BlockWrites(false);
  Client again = h.Connect();
  EXPECT_EQ(again.Ping().text, "pong\n");
  again.Close();
  client.Close();
  h.server.Stop();
}

}  // namespace
}  // namespace spider::serve
