// Protocol robustness: truncated frames, oversized frames, garbage bytes,
// and mid-request disconnects must produce clean error replies or clean
// drops — never a crash, hang, or leak (this suite runs under ASan/UBSan
// and TSan in CI).
#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "exec/exec_options.h"
#include "exec/thread_pool.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "testing/fixtures.h"

namespace spider::serve {
namespace {

class ProtocolFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.max_payload_bytes = 4096;
    ExecOptions exec;
    exec.num_threads = 2;
    options.pool = ThreadPool::For(exec);
    server_ = std::make_unique<Server>(options);
    server_->Start();
  }

  void TearDown() override { server_->Stop(); }

  /// The liveness probe: a fresh connection must still get a pong.
  void ExpectServerAlive() {
    Client client;
    client.Connect("127.0.0.1", server_->port());
    Response pong = client.Ping();
    ASSERT_EQ(pong.type, MsgType::kReply);
    EXPECT_EQ(pong.text, "pong\n");
    client.Close();
  }

  std::unique_ptr<Server> server_;
};

TEST_F(ProtocolFuzzTest, OversizedFrameGetsErrorThenDrop) {
  Client client;
  client.Connect("127.0.0.1", server_->port());
  std::string frame;
  AppendFrame(std::string(8192, 'x'), &frame);  // Above max_payload_bytes.
  client.SendRaw(frame);
  Response response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.type, MsgType::kError);
  EXPECT_EQ(response.code, ErrorCode::kBadRequest);
  // After the error the server drops the connection (stream desync).
  EXPECT_FALSE(client.ReadResponse(&response));
  client.Close();
  ExpectServerAlive();
}

TEST_F(ProtocolFuzzTest, RuntLengthPrefixGetsErrorThenDrop) {
  Client client;
  client.Connect("127.0.0.1", server_->port());
  // Length prefix 2: below the minimum payload (type + request id).
  client.SendRaw(std::string("\x02\x00\x00\x00\xab\xcd", 6));
  Response response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.type, MsgType::kError);
  EXPECT_FALSE(client.ReadResponse(&response));
  client.Close();
  ExpectServerAlive();
}

TEST_F(ProtocolFuzzTest, UndecodablePayloadKeepsConnectionUsable) {
  Client client;
  client.Connect("127.0.0.1", server_->port());
  // Well-framed, but an unknown message type: error reply, no drop.
  WireWriter w;
  w.PutU8(42);
  w.PutU64(777);
  std::string frame;
  AppendFrame(w.Take(), &frame);
  client.SendRaw(frame);
  Response response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.type, MsgType::kError);
  EXPECT_EQ(response.code, ErrorCode::kBadRequest);
  EXPECT_EQ(response.request_id, 777u);
  // Same connection still serves valid requests.
  EXPECT_EQ(client.Ping().text, "pong\n");
  client.Close();
}

TEST_F(ProtocolFuzzTest, TruncatedFrameThenDisconnect) {
  for (int i = 0; i < 10; ++i) {
    Client client;
    client.Connect("127.0.0.1", server_->port());
    Request request;
    request.type = MsgType::kCreateSession;
    request.request_id = 1;
    request.session_id = 100 + i;
    request.text = testing::TransitiveClosureText();
    std::string frame;
    AppendFrame(EncodeRequest(request), &frame);
    // Send only a prefix, then vanish mid-request.
    client.SendRaw(frame.substr(0, frame.size() / 2));
    client.Close();
  }
  ExpectServerAlive();
  // None of the half-sent creates became sessions.
  EXPECT_EQ(server_->manager().stats().open_sessions, 0u);
}

TEST_F(ProtocolFuzzTest, DisconnectAfterFullRequestDropsReplyOnly) {
  {
    Client client;
    client.Connect("127.0.0.1", server_->port());
    Request request;
    request.type = MsgType::kCreateSession;
    request.request_id = 1;
    request.session_id = 5;
    request.text = testing::TransitiveClosureText();
    std::string frame;
    AppendFrame(EncodeRequest(request), &frame);
    client.SendRaw(frame);
    client.Close();  // Gone before the reply: the server must not care.
  }
  // The request itself completed server-side.
  Client probe;
  probe.Connect("127.0.0.1", server_->port());
  for (int i = 0; i < 100; ++i) {
    if (probe.Route(5, "T(1, 3)").type == MsgType::kReply) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(probe.Route(5, "T(1, 3)").type, MsgType::kReply);
  probe.Close();
}

TEST_F(ProtocolFuzzTest, SeededGarbageStreams) {
  std::mt19937_64 rng(20260809);
  std::uniform_int_distribution<int> len_dist(1, 512);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int round = 0; round < 50; ++round) {
    Client client;
    client.Connect("127.0.0.1", server_->port());
    std::string garbage(len_dist(rng), '\0');
    for (char& c : garbage) c = static_cast<char>(byte_dist(rng));
    client.SendRaw(garbage);
    // Whatever the server does — error reply, drop, or wait for more
    // bytes — the client just walks away.
    client.Close();
  }
  ExpectServerAlive();
}

TEST_F(ProtocolFuzzTest, SeededStructuredFuzz) {
  // Mutated VALID frames: flip bytes inside well-framed requests so the
  // decoder's field validation does the rejecting (framing stays intact).
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  Request request;
  request.type = MsgType::kApplyDelta;
  request.session_id = 1;
  request.ops = {DeltaOp{DeltaOp::kInsert, "S(1, 2)"},
                 DeltaOp{DeltaOp::kDelete, "S(2, 3)"}};
  for (int round = 0; round < 100; ++round) {
    request.request_id = static_cast<uint64_t>(round) + 1;
    std::string payload = EncodeRequest(request);
    std::uniform_int_distribution<size_t> pos_dist(0, payload.size() - 1);
    payload[pos_dist(rng)] = static_cast<char>(byte_dist(rng));
    std::string frame;
    AppendFrame(payload, &frame);
    Client client;
    client.Connect("127.0.0.1", server_->port());
    client.SendRaw(frame);
    Response response;
    // Every mutation yields exactly one reply (ok or error) — never a
    // crash, and never silence with the connection left open.
    ASSERT_TRUE(client.ReadResponse(&response));
    client.Close();
  }
  ExpectServerAlive();
}

}  // namespace
}  // namespace spider::serve
