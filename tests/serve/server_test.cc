// Server integration over real loopback sockets: lifecycle, pipelining,
// per-session serialization, 64 concurrent sessions with shared-cache
// reuse, and idle reaping off the timer queue.
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/exec_options.h"
#include "exec/thread_pool.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "testing/fixtures.h"

namespace spider::serve {
namespace {

ServerOptions PooledOptions() {
  ServerOptions options;
  ExecOptions exec;
  exec.num_threads = 2;  // Exercise the pool handoff even on 1-core hosts.
  options.pool = ThreadPool::For(exec);
  return options;
}

TEST(ServerTest, StartStopAndEphemeralPort) {
  Server server(PooledOptions());
  server.Start();
  EXPECT_GT(server.port(), 0);
  server.Stop();
  server.Stop();  // Idempotent.
}

TEST(ServerTest, PingAndStatsOverLoopback) {
  Server server(PooledOptions());
  server.Start();
  Client client;
  client.Connect("127.0.0.1", server.port());
  Response pong = client.Ping();
  ASSERT_EQ(pong.type, MsgType::kReply);
  EXPECT_EQ(pong.text, "pong\n");
  Response stats = client.Stats();
  EXPECT_NE(stats.text.find("sessions 0\n"), std::string::npos);
  client.Close();
  server.Stop();
}

TEST(ServerTest, SessionLifecycleOverLoopback) {
  Server server(PooledOptions());
  server.Start();
  Client client;
  client.Connect("127.0.0.1", server.port());

  Response created =
      client.CreateSession(7, testing::TransitiveClosureText());
  ASSERT_EQ(created.type, MsgType::kReply) << created.text;

  Response route = client.Route(7, "T(1, 3)");
  ASSERT_EQ(route.type, MsgType::kReply) << route.text;

  Response applied = client.ApplyDelta(
      7, {DeltaOp{DeltaOp::kInsert, "S(3, 4)"}});
  ASSERT_EQ(applied.type, MsgType::kReply) << applied.text;

  Response after = client.Route(7, "T(1, 4)");
  ASSERT_EQ(after.type, MsgType::kReply) << after.text;

  Response missing = client.Route(99, "T(1, 3)");
  EXPECT_EQ(missing.type, MsgType::kError);
  EXPECT_EQ(missing.code, ErrorCode::kNoSuchSession);

  Response closed = client.CloseSession(7);
  EXPECT_EQ(closed.text, "closed\n");
  client.Close();
  server.Stop();
}

TEST(ServerTest, PipelinedRequestsReplyInOrder) {
  Server server(PooledOptions());
  server.Start();
  Client client;
  client.Connect("127.0.0.1", server.port());
  Response created =
      client.CreateSession(1, testing::TransitiveClosureText());
  ASSERT_EQ(created.type, MsgType::kReply) << created.text;

  // Fire several probes for ONE session without reading replies: the
  // server must serialize them and reply in arrival order.
  std::string burst;
  for (uint64_t id = 10; id < 20; ++id) {
    Request request;
    request.type = MsgType::kRoute;
    request.request_id = id;
    request.session_id = 1;
    request.text = "T(1, 3)";
    AppendFrame(EncodeRequest(request), &burst);
  }
  client.SendRaw(burst);
  std::string first_text;
  for (uint64_t id = 10; id < 20; ++id) {
    Response response;
    ASSERT_TRUE(client.ReadResponse(&response));
    EXPECT_EQ(response.request_id, id);
    ASSERT_EQ(response.type, MsgType::kReply) << response.text;
    if (first_text.empty()) {
      first_text = response.text;
    } else {
      EXPECT_EQ(response.text, first_text);
    }
  }
  client.Close();
  server.Stop();
}

TEST(ServerTest, SixtyFourConcurrentSessions) {
  ServerOptions options = PooledOptions();
  options.manager.max_sessions = 80;
  Server server(options);
  server.Start();

  constexpr int kThreads = 4;
  constexpr int kSessionsPerThread = 16;  // 64 sessions total.
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client;
      client.Connect("127.0.0.1", server.port());
      for (int s = 0; s < kSessionsPerThread; ++s) {
        uint64_t id = static_cast<uint64_t>(t) * kSessionsPerThread + s + 1;
        if (client.CreateSession(id, testing::TransitiveClosureText()).type !=
            MsgType::kReply) {
          ++failures[t];
        }
      }
      // All 64 sessions are now open simultaneously; probe each.
      for (int s = 0; s < kSessionsPerThread; ++s) {
        uint64_t id = static_cast<uint64_t>(t) * kSessionsPerThread + s + 1;
        Response route = client.Route(id, "T(1, 3)");
        if (route.type != MsgType::kReply) ++failures[t];
        Response forest = client.AllRoutes(id, "T(1, 3)");
        if (forest.type != MsgType::kReply) ++failures[t];
      }
      client.Close();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0);

  EXPECT_EQ(server.manager().stats().open_sessions, 64u);
  // Identical histories: the shared tier must have produced cross-session
  // hits (at most a few concurrent first-probes can miss).
  SharedRouteCacheStats cache = server.manager().shared_cache().stats();
  EXPECT_GT(cache.route_hits, 0u);
  EXPECT_GT(cache.forest_hits, 0u);
  server.Stop();
}

TEST(ServerTest, IdleSessionsAreReaped) {
  ServerOptions options = PooledOptions();
  options.reap_interval_ms = 20;
  options.manager.idle_timeout_ms = 40;
  Server server(options);
  server.Start();
  Client client;
  client.Connect("127.0.0.1", server.port());
  ASSERT_EQ(client.CreateSession(1, testing::TransitiveClosureText()).type,
            MsgType::kReply);

  // Wait out the idle timeout plus a couple of reap ticks.
  for (int i = 0; i < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (server.manager().stats().open_sessions == 0) break;
  }
  EXPECT_EQ(server.manager().stats().open_sessions, 0u);
  Response gone = client.Route(1, "T(1, 3)");
  EXPECT_EQ(gone.code, ErrorCode::kNoSuchSession);
  client.Close();
  server.Stop();
}

TEST(ServerTest, InlineModeWithoutPool) {
  ServerOptions options;  // pool == nullptr: loop-thread handling.
  Server server(options);
  server.Start();
  Client client;
  client.Connect("127.0.0.1", server.port());
  ASSERT_EQ(client.CreateSession(1, testing::TransitiveClosureText()).type,
            MsgType::kReply);
  EXPECT_EQ(client.Route(1, "T(1, 3)").type, MsgType::kReply);
  client.Close();
  server.Stop();
}

}  // namespace
}  // namespace spider::serve
