// SessionManager: the protocol-to-engine bridge, driven in-process.
// Covers the request handlers, admission control, error mapping, idle
// listing, and the close-path plan-cache Forget discipline.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/protocol.h"
#include "serve/session_manager.h"
#include "testing/fixtures.h"

namespace spider::serve {
namespace {

Request Make(MsgType type, uint64_t session_id, std::string text = "",
             std::vector<DeltaOp> ops = {}) {
  Request request;
  request.type = type;
  request.request_id = 1;
  request.session_id = session_id;
  request.text = std::move(text);
  request.ops = std::move(ops);
  return request;
}

TEST(SessionManagerTest, CreateProbeApplyCloseLifecycle) {
  SessionManager manager;
  Response created = manager.Handle(
      Make(MsgType::kCreateSession, 1, testing::TransitiveClosureText()), 0);
  ASSERT_EQ(created.type, MsgType::kReply) << created.text;
  EXPECT_NE(created.text.find("created\n"), std::string::npos);
  EXPECT_NE(created.text.find("target_tuples 3"), std::string::npos);

  Response route = manager.Handle(Make(MsgType::kRoute, 1, "T(1, 3)"), 0);
  ASSERT_EQ(route.type, MsgType::kReply) << route.text;
  EXPECT_FALSE(route.text.empty());

  Response forest = manager.Handle(Make(MsgType::kAllRoutes, 1, "T(1, 3)"), 0);
  ASSERT_EQ(forest.type, MsgType::kReply) << forest.text;

  Response lint = manager.Handle(Make(MsgType::kLint, 1), 0);
  ASSERT_EQ(lint.type, MsgType::kReply) << lint.text;

  Response applied = manager.Handle(
      Make(MsgType::kApplyDelta, 1, "",
           {DeltaOp{DeltaOp::kInsert, "S(3, 4)"}}),
      0);
  ASSERT_EQ(applied.type, MsgType::kReply) << applied.text;
  EXPECT_NE(applied.text.find("source_inserted 1"), std::string::npos);

  // The probe after the edit sees the new consequences.
  Response after = manager.Handle(Make(MsgType::kRoute, 1, "T(3, 4)"), 0);
  ASSERT_EQ(after.type, MsgType::kReply) << after.text;

  Response closed = manager.Handle(Make(MsgType::kCloseSession, 1), 0);
  ASSERT_EQ(closed.type, MsgType::kReply);
  EXPECT_EQ(closed.text, "closed\n");
  EXPECT_EQ(manager.stats().open_sessions, 0u);

  Response gone = manager.Handle(Make(MsgType::kRoute, 1, "T(1, 3)"), 0);
  EXPECT_EQ(gone.type, MsgType::kError);
  EXPECT_EQ(gone.code, ErrorCode::kNoSuchSession);
}

TEST(SessionManagerTest, LoadSessionSpecs) {
  SessionManager manager;
  Response random = manager.Handle(
      Make(MsgType::kLoadSession, 1, "random:7"), 0);
  ASSERT_EQ(random.type, MsgType::kReply) << random.text;

  Response relational = manager.Handle(
      Make(MsgType::kLoadSession, 2, "relational:2,2,1"), 0);
  ASSERT_EQ(relational.type, MsgType::kReply) << relational.text;

  Response bad = manager.Handle(Make(MsgType::kLoadSession, 3, "nope:1"), 0);
  EXPECT_EQ(bad.type, MsgType::kError);
  EXPECT_EQ(bad.code, ErrorCode::kBadRequest);

  Response malformed = manager.Handle(
      Make(MsgType::kLoadSession, 3, "random:xyz"), 0);
  EXPECT_EQ(malformed.type, MsgType::kError);
  EXPECT_EQ(malformed.code, ErrorCode::kBadRequest);
  // Failed creates never leak a session slot.
  EXPECT_EQ(manager.stats().open_sessions, 2u);
}

TEST(SessionManagerTest, ErrorMapping) {
  SessionManager manager;
  manager.Handle(
      Make(MsgType::kCreateSession, 1, testing::TransitiveClosureText()), 0);

  Response duplicate = manager.Handle(
      Make(MsgType::kCreateSession, 1, testing::TransitiveClosureText()), 0);
  EXPECT_EQ(duplicate.code, ErrorCode::kSessionExists);

  Response bad_scenario =
      manager.Handle(Make(MsgType::kCreateSession, 2, "not a scenario"), 0);
  EXPECT_EQ(bad_scenario.code, ErrorCode::kBadRequest);

  Response bad_fact = manager.Handle(Make(MsgType::kRoute, 1, "}{"), 0);
  EXPECT_EQ(bad_fact.type, MsgType::kError);
  EXPECT_EQ(bad_fact.code, ErrorCode::kEngineError);

  Response bad_delta = manager.Handle(
      Make(MsgType::kApplyDelta, 1, "",
           {DeltaOp{DeltaOp::kInsert, "NoSuchRel(1)"}}),
      0);
  EXPECT_EQ(bad_delta.type, MsgType::kError);

  Response ping = manager.Handle(Make(MsgType::kPing, 0), 0);
  EXPECT_EQ(ping.text, "pong\n");

  Response stats = manager.Handle(Make(MsgType::kStats, 0), 0);
  EXPECT_NE(stats.text.find("sessions 1\n"), std::string::npos);
  EXPECT_NE(stats.text.find("shared_route_hits "), std::string::npos);
}

TEST(SessionManagerTest, AdmissionControlBySessionCount) {
  SessionManagerOptions options;
  options.max_sessions = 2;
  SessionManager manager(options);
  for (uint64_t id = 1; id <= 2; ++id) {
    Response r = manager.Handle(
        Make(MsgType::kCreateSession, id, testing::TransitiveClosureText()),
        0);
    ASSERT_EQ(r.type, MsgType::kReply) << r.text;
  }
  Response third = manager.Handle(
      Make(MsgType::kCreateSession, 3, testing::TransitiveClosureText()), 0);
  EXPECT_EQ(third.type, MsgType::kError);
  EXPECT_EQ(third.code, ErrorCode::kOverBudget);
  EXPECT_EQ(manager.stats().rejected_over_budget, 1u);

  // Closing one frees a slot.
  manager.Handle(Make(MsgType::kCloseSession, 1), 0);
  Response again = manager.Handle(
      Make(MsgType::kCreateSession, 3, testing::TransitiveClosureText()), 0);
  EXPECT_EQ(again.type, MsgType::kReply) << again.text;
}

TEST(SessionManagerTest, AdmissionControlByByteBudget) {
  SessionManagerOptions options;
  options.session_budget_bytes = 1;  // Below any session's fixed overhead.
  SessionManager manager(options);
  Response r = manager.Handle(
      Make(MsgType::kCreateSession, 1, testing::TransitiveClosureText()), 0);
  EXPECT_EQ(r.type, MsgType::kError);
  EXPECT_EQ(r.code, ErrorCode::kOverBudget);
  EXPECT_EQ(manager.stats().open_sessions, 0u);
}

TEST(SessionManagerTest, IdleSessionListingAndReap) {
  SessionManagerOptions options;
  options.idle_timeout_ms = 100;
  SessionManager manager(options);
  manager.Handle(
      Make(MsgType::kCreateSession, 1, testing::TransitiveClosureText()),
      /*now_ms=*/0);
  manager.Handle(
      Make(MsgType::kCreateSession, 2, testing::TransitiveClosureText()),
      /*now_ms=*/0);
  // Session 2 stays active at t=90; session 1 goes idle.
  manager.Handle(Make(MsgType::kRoute, 2, "T(1, 3)"), /*now_ms=*/90);

  std::vector<uint64_t> idle = manager.IdleSessionIds(/*now_ms=*/150);
  ASSERT_EQ(idle.size(), 1u);
  EXPECT_EQ(idle[0], 1u);
  EXPECT_TRUE(manager.CloseSession(1));
  EXPECT_FALSE(manager.CloseSession(1));
  EXPECT_EQ(manager.stats().open_sessions, 1u);
}

TEST(SessionManagerTest, CloseForgetsPlansForDeadInstances) {
  SessionManager manager;
  manager.Handle(
      Make(MsgType::kCreateSession, 1, testing::TransitiveClosureText()), 0);
  manager.Handle(Make(MsgType::kRoute, 1, "T(1, 3)"), 0);
  size_t with_session = manager.plan_cache().size();
  EXPECT_GT(with_session, 0u);
  manager.Handle(Make(MsgType::kCloseSession, 1), 0);
  // Every plan keyed by the dead session's instances is gone.
  EXPECT_EQ(manager.plan_cache().size(), 0u);
}

}  // namespace
}  // namespace spider::serve
