// The shared cache tiers: SharedRouteCache (state-keyed routes/forests,
// byte-bounded LRU) and PlanCache's bounded mode (per-instance keying,
// eviction, Forget). Plus the end-to-end property the tiers exist for:
// two DebugSessions with identical histories reuse each other's work, and
// a shared-tier hit leaves a session's behavior identical to a miss.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/value.h"
#include "debugger/debug_session.h"
#include "incremental/shared_route_cache.h"
#include "mapping/parser.h"
#include "query/plan_cache.h"
#include "storage/instance.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

FactKey TestKey(int32_t relation, int64_t a, int64_t b) {
  return FactKey{Side::kTarget, relation,
                 Tuple({Value::Int(a), Value::Int(b)})};
}

TEST(SharedRouteCacheTest, RouteRoundTripAndStateIsolation) {
  SharedRouteCache cache;
  FactKey fact = TestKey(0, 1, 3);
  EXPECT_EQ(cache.FindRoute(1, fact), nullptr);

  Route route;
  cache.PutRoute(1, fact, route, {TestKey(0, 1, 2)});
  auto hit = cache.FindRoute(1, fact);
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->deps.size(), 1u);
  EXPECT_EQ(hit->deps[0], TestKey(0, 1, 2));

  // A different state key is a different world: no hit.
  EXPECT_EQ(cache.FindRoute(2, fact), nullptr);

  SharedRouteCacheStats stats = cache.stats();
  EXPECT_EQ(stats.route_hits, 1u);
  EXPECT_EQ(stats.route_misses, 2u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(SharedRouteCacheTest, EvictsColdestUnderByteBudget) {
  SharedRouteCache cache(/*max_bytes=*/1);  // Room for one entry at most.
  cache.PutRoute(1, TestKey(0, 1, 2), Route(), {});
  cache.PutRoute(1, TestKey(0, 3, 4), Route(), {});
  SharedRouteCacheStats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  // The newest entry survives; the older one was evicted.
  EXPECT_NE(cache.FindRoute(1, TestKey(0, 3, 4)), nullptr);
  EXPECT_EQ(cache.FindRoute(1, TestKey(0, 1, 2)), nullptr);
}

TEST(SharedRouteCacheTest, EvictedForestSurvivesViaSharedPtr) {
  SharedRouteCache cache(/*max_bytes=*/1);
  DebugSession session(ParseScenario(testing::TransitiveClosureText()));
  auto forest = std::make_shared<RouteForest>(
      session.debugger().AllRoutes({session.debugger().TargetFact("T(1, 3)")}));
  size_t nodes = forest->NumNodes();
  std::shared_ptr<RouteForest> held =
      cache.PutForest(1, TestKey(0, 1, 2), std::move(forest));
  cache.PutRoute(1, TestKey(0, 9, 9), Route(), {});  // Evicts the forest.
  EXPECT_EQ(cache.FindForest(1, TestKey(0, 1, 2)), nullptr);
  ASSERT_NE(held, nullptr);  // The handed-out reference stays valid.
  EXPECT_EQ(held->NumNodes(), nodes);
}

TEST(SharedRouteCacheTest, SessionsWithEqualHistoryShareRoutes) {
  SharedRouteCache shared;
  DebugSessionOptions options;
  options.shared_route_cache = &shared;

  DebugSession a(ParseScenario(testing::TransitiveClosureText()), options);
  DebugSession b(ParseScenario(testing::TransitiveClosureText()), options);
  ASSERT_EQ(a.state_key(), b.state_key());

  std::string first = a.debugger().Render(a.RouteFor("T(1, 3)"));
  // b's local cache is cold, but the shared tier is hot.
  std::string second = b.debugger().Render(b.RouteFor("T(1, 3)"));
  EXPECT_EQ(first, second);
  SharedRouteCacheStats stats = shared.stats();
  EXPECT_EQ(stats.route_hits, 1u);
  EXPECT_EQ(stats.route_misses, 1u);

  // The shared hit seeded b's LOCAL cache: a further probe stays local
  // (no new shared lookup), exactly as if b had computed the route itself.
  b.RouteFor("T(1, 3)");
  EXPECT_EQ(shared.stats().route_hits, 1u);
  EXPECT_EQ(b.cache_stats().route_hits, 1u);
}

TEST(SharedRouteCacheTest, ApplyDivergesStateKey) {
  SharedRouteCache shared;
  DebugSessionOptions options;
  options.shared_route_cache = &shared;

  DebugSession a(ParseScenario(testing::TransitiveClosureText()), options);
  DebugSession b(ParseScenario(testing::TransitiveClosureText()), options);
  a.RouteFor("T(1, 3)");

  SourceDelta delta;
  delta.Insert("S", Tuple({Value::Int(7), Value::Int(8)}));
  b.Apply(delta);
  EXPECT_NE(a.state_key(), b.state_key());

  // b is in a different state now: a's entry must not serve it.
  uint64_t misses_before = shared.stats().route_misses;
  b.RouteFor("T(1, 3)");
  EXPECT_EQ(shared.stats().route_hits, 0u);
  EXPECT_GT(shared.stats().route_misses, misses_before);

  // Applying the SAME delta to a converges the keys again.
  SourceDelta same;
  same.Insert("S", Tuple({Value::Int(7), Value::Int(8)}));
  a.Apply(same);
  EXPECT_EQ(a.state_key(), b.state_key());
}

TEST(SharedRouteCacheTest, ForestSharedAcrossSessions) {
  SharedRouteCache shared;
  DebugSessionOptions options;
  options.shared_route_cache = &shared;

  DebugSession a(ParseScenario(testing::TransitiveClosureText()), options);
  DebugSession b(ParseScenario(testing::TransitiveClosureText()), options);
  std::string first = a.debugger().Render(a.ForestFor("T(1, 3)"));
  std::string second = b.debugger().Render(b.ForestFor("T(1, 3)"));
  EXPECT_EQ(first, second);
  SharedRouteCacheStats stats = shared.stats();
  EXPECT_EQ(stats.forest_hits, 1u);
  EXPECT_EQ(stats.forest_misses, 1u);
}

/// A distinguishable single-atom plan for cache bookkeeping tests.
QueryPlan OrderPlan(std::vector<size_t> order) {
  QueryPlan plan;
  plan.order = std::move(order);
  plan.levels.resize(plan.order.size());
  return plan;
}

TEST(PlanCacheBoundedTest, EvictsAndRecountsBytes) {
  Schema schema("S");
  schema.AddRelation("R", {"a", "b"});
  Instance instance(&schema);

  PlanCache cache(/*max_bytes=*/1);  // Every insert evicts the previous.
  EvalStats stats;
  auto plan = [] { return OrderPlan({0, 1}); };
  cache.Get(1, instance, plan, &stats);
  cache.Get(2, instance, plan, &stats);
  EXPECT_GE(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 1u);

  // Key 1 was evicted: a re-Get re-plans rather than hitting.
  uint64_t built_before = stats.plans_built;
  cache.Get(1, instance, plan, &stats);
  EXPECT_EQ(stats.plans_built, built_before + 1);
}

TEST(PlanCacheBoundedTest, InstancesKeyedSeparatelyAndForgotten) {
  Schema schema("S");
  schema.AddRelation("R", {"a", "b"});
  Instance one(&schema);
  Instance two(&schema);

  PlanCache cache(/*max_bytes=*/1 << 20);
  EvalStats stats;
  cache.Get(1, one, [] { return OrderPlan({0}); }, &stats);
  cache.Get(1, two, [] { return OrderPlan({1}); }, &stats);
  EXPECT_EQ(cache.size(), 2u);
  // Same key, different instance: each sees its own plan.
  EXPECT_EQ(cache.Get(1, one, [] { return OrderPlan({9}); }, &stats)->order,
            (std::vector<size_t>{0}));
  EXPECT_EQ(cache.Get(1, two, [] { return OrderPlan({9}); }, &stats)->order,
            (std::vector<size_t>{1}));

  cache.Forget(&one);
  EXPECT_EQ(cache.size(), 1u);
  // Forgetting never counts as eviction...
  EXPECT_EQ(cache.evictions(), 0u);
  // ...and a new instance at one's old address would re-plan, not inherit.
  EXPECT_EQ(cache.Get(1, one, [] { return OrderPlan({7}); }, &stats)->order,
            (std::vector<size_t>{7}));
}

}  // namespace
}  // namespace spider
