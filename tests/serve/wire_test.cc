// Framing and payload encoding: writer/reader round trips, bounds
// checking, and NextFrame's handling of partial, oversized, and garbage
// length prefixes.
#include <string>

#include <gtest/gtest.h>

#include "serve/protocol.h"
#include "serve/wire.h"

namespace spider::serve {
namespace {

TEST(WireTest, WriterReaderRoundTrip) {
  WireWriter w;
  w.PutU8(7);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefull);
  w.PutString("hello");
  std::string bytes = w.Take();

  WireReader r(bytes);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  std::string s;
  ASSERT_TRUE(r.ReadU8(&u8));
  ASSERT_TRUE(r.ReadU32(&u32));
  ASSERT_TRUE(r.ReadU64(&u64));
  ASSERT_TRUE(r.ReadString(&s));
  EXPECT_EQ(u8, 7u);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, ReaderRejectsShortReads) {
  std::string two_bytes = "\x01\x02";
  WireReader r(two_bytes);
  uint32_t u32 = 0;
  EXPECT_FALSE(r.ReadU32(&u32));
  uint64_t u64 = 0;
  EXPECT_FALSE(r.ReadU64(&u64));
  // A failed read leaves the position unchanged; the bytes remain.
  uint8_t u8 = 0;
  EXPECT_TRUE(r.ReadU8(&u8));
  EXPECT_EQ(u8, 1u);
}

TEST(WireTest, ReaderRejectsStringLengthBeyondPayload) {
  WireWriter w;
  w.PutU32(1000);  // Claims 1000 bytes follow; none do.
  std::string bytes = w.Take();
  WireReader r(bytes);
  std::string s;
  EXPECT_FALSE(r.ReadString(&s));
}

TEST(WireTest, NextFrameNeedsHeaderThenBody) {
  Request ping;
  ping.type = MsgType::kPing;
  ping.request_id = 42;
  std::string frame;
  AppendFrame(EncodeRequest(ping), &frame);

  std::string buffer;
  std::string payload;
  // Feed one byte at a time: kNeedMore until the last byte lands.
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    buffer.push_back(frame[i]);
    EXPECT_EQ(NextFrame(&buffer, 1 << 20, &payload), FrameStatus::kNeedMore);
  }
  buffer.push_back(frame.back());
  ASSERT_EQ(NextFrame(&buffer, 1 << 20, &payload), FrameStatus::kFrame);
  EXPECT_TRUE(buffer.empty());

  Request decoded;
  std::string error;
  ASSERT_TRUE(DecodeRequest(payload, &decoded, &error)) << error;
  EXPECT_EQ(decoded.type, MsgType::kPing);
  EXPECT_EQ(decoded.request_id, 42u);
}

TEST(WireTest, NextFrameFlagsOversizedAndRunt) {
  std::string buffer;
  AppendFrame(std::string(100, 'x'), &buffer);
  std::string payload;
  EXPECT_EQ(NextFrame(&buffer, /*max_payload=*/50, &payload),
            FrameStatus::kOversized);

  // A length below the minimum payload (type + request id) is garbage.
  std::string runt;
  AppendFrame("abc", &runt);
  EXPECT_EQ(NextFrame(&runt, 1 << 20, &payload), FrameStatus::kMalformed);
}

TEST(WireTest, BackToBackFramesDrainInOrder) {
  std::string buffer;
  for (uint64_t id = 1; id <= 3; ++id) {
    Request ping;
    ping.type = MsgType::kPing;
    ping.request_id = id;
    AppendFrame(EncodeRequest(ping), &buffer);
  }
  for (uint64_t id = 1; id <= 3; ++id) {
    std::string payload;
    ASSERT_EQ(NextFrame(&buffer, 1 << 20, &payload), FrameStatus::kFrame);
    Request decoded;
    std::string error;
    ASSERT_TRUE(DecodeRequest(payload, &decoded, &error)) << error;
    EXPECT_EQ(decoded.request_id, id);
  }
  EXPECT_TRUE(buffer.empty());
}

TEST(ProtocolTest, RequestRoundTripAllFields) {
  Request request;
  request.type = MsgType::kApplyDelta;
  request.request_id = 99;
  request.deadline_ms = 1500;
  request.session_id = 123456789;
  request.ops.push_back(DeltaOp{DeltaOp::kInsert, "S(1, 2)"});
  request.ops.push_back(DeltaOp{DeltaOp::kDelete, "S(2, 3)"});

  Request decoded;
  std::string error;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(request), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.type, MsgType::kApplyDelta);
  EXPECT_EQ(decoded.request_id, 99u);
  EXPECT_EQ(decoded.deadline_ms, 1500u);
  EXPECT_EQ(decoded.session_id, 123456789u);
  ASSERT_EQ(decoded.ops.size(), 2u);
  EXPECT_EQ(decoded.ops[0].kind, DeltaOp::kInsert);
  EXPECT_EQ(decoded.ops[0].fact, "S(1, 2)");
  EXPECT_EQ(decoded.ops[1].kind, DeltaOp::kDelete);
  EXPECT_EQ(decoded.ops[1].fact, "S(2, 3)");
}

TEST(ProtocolTest, CancelRoundTrip) {
  Request request;
  request.type = MsgType::kCancel;
  request.request_id = 7;
  request.target_request_id = 42;

  Request decoded;
  std::string error;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(request), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.type, MsgType::kCancel);
  EXPECT_EQ(decoded.request_id, 7u);
  EXPECT_EQ(decoded.target_request_id, 42u);

  // A cancel frame without its target field is rejected, not misread.
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kCancel));
  w.PutU64(7);  // request id
  w.PutU32(0);  // deadline_ms
  EXPECT_FALSE(DecodeRequest(w.Take(), &decoded, &error));
  EXPECT_EQ(error, "missing cancel target");
}

TEST(ProtocolTest, ResponseRoundTrip) {
  Response response = ErrorResponse(7, ErrorCode::kNoSuchSession, "gone");
  Response decoded;
  std::string error;
  ASSERT_TRUE(DecodeResponse(EncodeResponse(response), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.type, MsgType::kError);
  EXPECT_EQ(decoded.request_id, 7u);
  EXPECT_EQ(decoded.code, ErrorCode::kNoSuchSession);
  EXPECT_EQ(decoded.text, "gone");
}

TEST(ProtocolTest, DecodeRejectsGarbage) {
  Request request;
  std::string error;
  EXPECT_FALSE(DecodeRequest("", &request, &error));
  EXPECT_FALSE(DecodeRequest("\xff\x00\x01", &request, &error));

  // Unknown message type.
  WireWriter w;
  w.PutU8(200);
  w.PutU64(1);
  EXPECT_FALSE(DecodeRequest(w.Take(), &request, &error));

  // Trailing bytes after a valid ping.
  Request ping;
  ping.type = MsgType::kPing;
  ping.request_id = 1;
  std::string payload = EncodeRequest(ping) + "extra";
  EXPECT_FALSE(DecodeRequest(payload, &request, &error));
}

TEST(ProtocolTest, DecodeRejectsAbsurdOpCount) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kApplyDelta));
  w.PutU64(1);   // request id
  w.PutU32(0);   // deadline_ms
  w.PutU64(2);   // session id
  w.PutU32(0xffffffff);  // op count far beyond the payload
  Request request;
  std::string error;
  EXPECT_FALSE(DecodeRequest(w.Take(), &request, &error));
  EXPECT_EQ(error, "op count exceeds payload");
}

}  // namespace
}  // namespace spider::serve
