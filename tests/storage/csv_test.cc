#include "storage/csv.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "base/status.h"

namespace spider {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  CsvTest() : schema_("s") {
    rel_ = schema_.AddRelation("Cards", {"cardNo", "limit", "name"});
    instance_ = std::make_unique<Instance>(&schema_);
  }
  Schema schema_;
  RelationId rel_;
  std::unique_ptr<Instance> instance_;
};

TEST_F(CsvTest, BasicRowsWithTypeInference) {
  size_t n = LoadCsvText("6689,15.5,\"J. Long\"\n7012,25,\"B. Short\"\n",
                         "Cards", instance_.get());
  EXPECT_EQ(n, 2u);
  const Tuple& row = instance_->tuple(rel_, 0);
  EXPECT_EQ(row.at(0), Value::Int(6689));
  EXPECT_EQ(row.at(1), Value::Real(15.5));
  EXPECT_EQ(row.at(2), Value::Str("J. Long"));
}

TEST_F(CsvTest, QuotedFieldsStayStrings) {
  LoadCsvText("\"42\",\"1.5\",\"x\"\n", "Cards", instance_.get());
  const Tuple& row = instance_->tuple(rel_, 0);
  EXPECT_EQ(row.at(0), Value::Str("42"));
  EXPECT_EQ(row.at(1), Value::Str("1.5"));
}

TEST_F(CsvTest, EscapedQuotesAndCommas) {
  LoadCsvText(R"(1,2,"said ""hi"", twice")" "\n", "Cards", instance_.get());
  EXPECT_EQ(instance_->tuple(rel_, 0).at(2),
            Value::Str("said \"hi\", twice"));
}

TEST_F(CsvTest, HeaderSkippedOnRequest) {
  CsvOptions options;
  options.skip_header = true;
  size_t n = LoadCsvText("cardNo,limit,name\n1,2,\"x\"\n", "Cards",
                         instance_.get(), options);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(instance_->NumTuples(rel_), 1u);
}

TEST_F(CsvTest, CrLfAndBlankLinesTolerated) {
  size_t n = LoadCsvText("1,2,\"a\"\r\n\r\n3,4,\"b\"\r\n", "Cards",
                         instance_.get());
  EXPECT_EQ(n, 2u);
}

TEST_F(CsvTest, DuplicateRowsDeduplicated) {
  size_t n = LoadCsvText("1,2,\"a\"\n1,2,\"a\"\n", "Cards", instance_.get());
  EXPECT_EQ(n, 1u);
}

TEST_F(CsvTest, ArityMismatchRejectedWithLineNumber) {
  try {
    LoadCsvText("1,2,\"a\"\n1,2\n", "Cards", instance_.get());
    FAIL() << "expected SpiderError";
  } catch (const SpiderError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST_F(CsvTest, UnterminatedQuoteRejected) {
  EXPECT_THROW(LoadCsvText("1,2,\"oops\n", "Cards", instance_.get()),
               SpiderError);
}

TEST_F(CsvTest, UnknownRelationRejected) {
  EXPECT_THROW(LoadCsvText("1\n", "Nope", instance_.get()), SpiderError);
}

TEST_F(CsvTest, DumpRoundTrips) {
  LoadCsvText("6689,15.5,\"J. \"\"Long\"\"\"\n-3,2,\"plain\"\n", "Cards",
              instance_.get());
  std::string csv = DumpCsv(*instance_, "Cards");
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "cardNo,limit,name");
  Instance fresh(&schema_);
  CsvOptions options;
  options.skip_header = true;
  LoadCsvText(csv, "Cards", &fresh, options);
  EXPECT_EQ(fresh.tuples(rel_), instance_->tuples(rel_));
}

TEST_F(CsvTest, QuotedFieldMaySpanLines) {
  size_t n = LoadCsvText("1,2,\"first\nsecond\"\n3,4,\"x\"\n", "Cards",
                         instance_.get());
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(instance_->tuple(rel_, 0).at(2), Value::Str("first\nsecond"));
}

TEST_F(CsvTest, CrLfInsideQuotedFieldNormalizedToLf) {
  LoadCsvText("1,2,\"a\r\nb\"\r\n", "Cards", instance_.get());
  EXPECT_EQ(instance_->tuple(rel_, 0).at(2), Value::Str("a\nb"));
}

TEST_F(CsvTest, ArityErrorAfterMultiLineRecordReportsFirstLine) {
  try {
    LoadCsvText("1,2,\"a\nb\"\n1,\"two\nlines\"\n", "Cards", instance_.get());
    FAIL() << "expected SpiderError";
  } catch (const SpiderError& e) {
    // The bad record starts on physical line 3.
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST_F(CsvTest, QuotedSpecialsRoundTrip) {
  // Values containing quotes, commas and newlines must survive
  // DumpCsv -> LoadCsv byte-for-byte (delta edit files are written and
  // re-read through this path).
  instance_->Insert(rel_, Tuple({Value::Int(1), Value::Real(2.5),
                                 Value::Str("he said \"hi, there\"\nbye")}));
  instance_->Insert(rel_, Tuple({Value::Int(2), Value::Int(3),
                                 Value::Str(",leading comma")}));
  instance_->Insert(rel_, Tuple({Value::Int(3), Value::Int(4),
                                 Value::Str("\"\"")}));
  instance_->Insert(rel_, Tuple({Value::Int(4), Value::Int(5),
                                 Value::Str("tri\nple\nline")}));
  std::string csv = DumpCsv(*instance_, "Cards");
  Instance fresh(&schema_);
  CsvOptions options;
  options.skip_header = true;
  LoadCsvText(csv, "Cards", &fresh, options);
  EXPECT_EQ(fresh.tuples(rel_), instance_->tuples(rel_));
}

TEST_F(CsvTest, ParseCsvRowsReturnsTuplesWithoutInserting) {
  std::istringstream in("1,2,\"a\"\n1,2,\"a\"\n");
  std::vector<Tuple> rows = ParseCsvRows(in, 3, "test rows");
  ASSERT_EQ(rows.size(), 2u);  // no dedup at this layer
  EXPECT_EQ(rows[0].at(2), Value::Str("a"));
}

TEST_F(CsvTest, NullsDumpedAsMarkers) {
  instance_->Insert(rel_, Tuple({Value::Int(1), Value::Null(7),
                                 Value::Str("x")}));
  std::string csv = DumpCsv(*instance_, "Cards");
  EXPECT_NE(csv.find("\"#N7\""), std::string::npos);
}

}  // namespace
}  // namespace spider
