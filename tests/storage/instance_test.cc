#include "storage/instance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "base/status.h"

namespace spider {
namespace {

class InstanceTest : public ::testing::Test {
 protected:
  InstanceTest() : schema_("test") {
    r_ = schema_.AddRelation("R", {"a", "b"});
    q_ = schema_.AddRelation("Q", {"x"});
  }
  Schema schema_;
  RelationId r_;
  RelationId q_;
};

TEST_F(InstanceTest, InsertAndRead) {
  Instance inst(&schema_);
  InsertResult res = inst.Insert(r_, Tuple({Value::Int(1), Value::Int(2)}));
  EXPECT_TRUE(res.inserted);
  EXPECT_EQ(res.row, 0);
  EXPECT_EQ(inst.NumTuples(r_), 1u);
  EXPECT_EQ(inst.tuple(r_, 0), Tuple({Value::Int(1), Value::Int(2)}));
}

TEST_F(InstanceTest, InsertDeduplicates) {
  Instance inst(&schema_);
  inst.Insert(r_, Tuple({Value::Int(1), Value::Int(2)}));
  InsertResult res = inst.Insert(r_, Tuple({Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(res.inserted);
  EXPECT_EQ(res.row, 0);
  EXPECT_EQ(inst.NumTuples(r_), 1u);
}

TEST_F(InstanceTest, InsertByName) {
  Instance inst(&schema_);
  inst.Insert("Q", {Value::Str("hello")});
  EXPECT_EQ(inst.NumTuples(q_), 1u);
  EXPECT_THROW(inst.Insert("Missing", {Value::Int(1)}), SpiderError);
}

TEST_F(InstanceTest, ArityMismatchRejected) {
  Instance inst(&schema_);
  EXPECT_THROW(inst.Insert(r_, Tuple({Value::Int(1)})), SpiderError);
}

TEST_F(InstanceTest, FindRow) {
  Instance inst(&schema_);
  inst.Insert(r_, Tuple({Value::Int(1), Value::Int(2)}));
  inst.Insert(r_, Tuple({Value::Int(3), Value::Int(4)}));
  EXPECT_EQ(inst.FindRow(r_, Tuple({Value::Int(3), Value::Int(4)})), 1);
  EXPECT_FALSE(inst.FindRow(r_, Tuple({Value::Int(9), Value::Int(9)}))
                   .has_value());
}

TEST_F(InstanceTest, TotalTuples) {
  Instance inst(&schema_);
  inst.Insert(r_, Tuple({Value::Int(1), Value::Int(2)}));
  inst.Insert(q_, Tuple({Value::Int(7)}));
  inst.Insert(q_, Tuple({Value::Int(8)}));
  EXPECT_EQ(inst.TotalTuples(), 3u);
}

TEST_F(InstanceTest, ProbeFindsMatchingRows) {
  Instance inst(&schema_);
  inst.Insert(r_, Tuple({Value::Int(1), Value::Int(10)}));
  inst.Insert(r_, Tuple({Value::Int(2), Value::Int(10)}));
  inst.Insert(r_, Tuple({Value::Int(1), Value::Int(20)}));
  const std::vector<int32_t>& rows = inst.Probe(r_, 0, Value::Int(1));
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(inst.Probe(r_, 1, Value::Int(10)).size(), 2u);
  EXPECT_TRUE(inst.Probe(r_, 0, Value::Int(99)).empty());
}

TEST_F(InstanceTest, ProbeIndexMaintainedIncrementally) {
  Instance inst(&schema_);
  inst.Insert(r_, Tuple({Value::Int(1), Value::Int(10)}));
  EXPECT_EQ(inst.Probe(r_, 0, Value::Int(1)).size(), 1u);  // builds index
  inst.Insert(r_, Tuple({Value::Int(1), Value::Int(30)}));
  EXPECT_EQ(inst.Probe(r_, 0, Value::Int(1)).size(), 2u);
}

TEST_F(InstanceTest, ContainsNulls) {
  Instance inst(&schema_);
  inst.Insert(r_, Tuple({Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(inst.ContainsNulls());
  inst.Insert(q_, Tuple({Value::Null(1)}));
  EXPECT_TRUE(inst.ContainsNulls());
}

TEST_F(InstanceTest, ApplySubstitutionRewritesCells) {
  Instance inst(&schema_);
  inst.Insert(r_, Tuple({Value::Null(1), Value::Int(2)}));
  inst.Insert(q_, Tuple({Value::Null(1)}));
  size_t rewritten = inst.ApplySubstitution(NullId{1}, Value::Int(9));
  EXPECT_EQ(rewritten, 2u);
  EXPECT_EQ(inst.tuple(r_, 0), Tuple({Value::Int(9), Value::Int(2)}));
  EXPECT_EQ(inst.tuple(q_, 0), Tuple({Value::Int(9)}));
  EXPECT_FALSE(inst.ContainsNulls());
}

TEST_F(InstanceTest, ApplySubstitutionMergesDuplicates) {
  Instance inst(&schema_);
  inst.Insert(q_, Tuple({Value::Null(1)}));
  inst.Insert(q_, Tuple({Value::Int(9)}));
  inst.ApplySubstitution(NullId{1}, Value::Int(9));
  EXPECT_EQ(inst.NumTuples(q_), 1u);
}

TEST_F(InstanceTest, ApplySubstitutionNullToNull) {
  Instance inst(&schema_);
  inst.Insert(q_, Tuple({Value::Null(2)}));
  inst.ApplySubstitution(NullId{2}, Value::Null(1));
  EXPECT_EQ(inst.tuple(q_, 0), Tuple({Value::Null(1)}));
}

TEST_F(InstanceTest, ProbeAfterSubstitutionIsConsistent) {
  Instance inst(&schema_);
  inst.Insert(r_, Tuple({Value::Null(1), Value::Int(2)}));
  EXPECT_EQ(inst.Probe(r_, 0, Value::Null(1)).size(), 1u);
  inst.ApplySubstitution(NullId{1}, Value::Int(5));
  EXPECT_TRUE(inst.Probe(r_, 0, Value::Null(1)).empty());
  EXPECT_EQ(inst.Probe(r_, 0, Value::Int(5)).size(), 1u);
}

TEST_F(InstanceTest, ToStringListsFacts) {
  Instance inst(&schema_);
  inst.Insert(r_, Tuple({Value::Int(1), Value::Str("x")}));
  EXPECT_EQ(inst.ToString(), "R(1, \"x\")\n");
}

TEST_F(InstanceTest, RequiresSchema) {
  EXPECT_THROW(Instance(nullptr), SpiderError);
}

TEST_F(InstanceTest, EraseRowsCompactsAndReindexes) {
  Instance inst(&schema_);
  inst.Insert(r_, Tuple({Value::Int(1), Value::Int(10)}));
  inst.Insert(r_, Tuple({Value::Int(2), Value::Int(10)}));
  inst.Insert(r_, Tuple({Value::Int(3), Value::Int(30)}));
  EXPECT_EQ(inst.Probe(r_, 1, Value::Int(10)).size(), 2u);  // build index
  EXPECT_EQ(inst.EraseRows(r_, {1, 1}), 1u);  // duplicates tolerated
  EXPECT_EQ(inst.NumTuples(r_), 2u);
  EXPECT_EQ(inst.tuple(r_, 0), Tuple({Value::Int(1), Value::Int(10)}));
  EXPECT_EQ(inst.tuple(r_, 1), Tuple({Value::Int(3), Value::Int(30)}));
  EXPECT_EQ(inst.Probe(r_, 1, Value::Int(10)).size(), 1u);
  EXPECT_FALSE(inst.FindRow(r_, Tuple({Value::Int(2), Value::Int(10)}))
                   .has_value());
  EXPECT_THROW(inst.EraseRows(r_, {5}), SpiderError);
}

// Small-batch erases maintain dedup and built indexes in place. Whatever
// the compaction did to row order, every probe must agree with a freshly
// rebuilt index: sorted posting lists that exactly cover the matching rows.
TEST_F(InstanceTest, SmallBatchEraseKeepsIndexesConsistent) {
  Instance inst(&schema_);
  for (int i = 0; i < 12; ++i) {
    inst.Insert(r_, Tuple({Value::Int(i), Value::Int(i % 3)}));
  }
  // Build both column indexes before erasing so maintenance is exercised.
  EXPECT_EQ(inst.Probe(r_, 0, Value::Int(5)).size(), 1u);
  EXPECT_EQ(inst.Probe(r_, 1, Value::Int(2)).size(), 4u);

  EXPECT_EQ(inst.EraseRows(r_, {2, 5, 11}), 3u);  // 3*4 < 12: in-place path
  EXPECT_EQ(inst.NumTuples(r_), 9u);
  for (int i = 0; i < 12; ++i) {
    bool erased = i == 2 || i == 5 || i == 11;
    EXPECT_EQ(inst.FindRow(r_, Tuple({Value::Int(i), Value::Int(i % 3)}))
                  .has_value(),
              !erased)
        << "tuple " << i;
  }
  for (int v = 0; v < 3; ++v) {
    const std::vector<int32_t>& hits = inst.Probe(r_, 1, Value::Int(v));
    EXPECT_TRUE(std::is_sorted(hits.begin(), hits.end()));
    std::vector<int32_t> scan;
    for (int32_t row = 0; row < static_cast<int32_t>(inst.NumTuples(r_));
         ++row) {
      if (inst.tuple(r_, row).at(1) == Value::Int(v)) scan.push_back(row);
    }
    EXPECT_EQ(hits, scan) << "posting list for b=" << v;
  }
  EXPECT_EQ(inst.NumDistinct(r_, 1), 3u);
  EXPECT_TRUE(inst.Probe(r_, 0, Value::Int(5)).empty());
}

// A fully-duplicated column makes in-place posting-list maintenance cost
// more than the lazy rebuild; the index is dropped instead, and the next
// probe must still answer correctly.
TEST_F(InstanceTest, SmallBatchEraseDropsExpensiveIndex) {
  Instance inst(&schema_);
  for (int i = 0; i < 12; ++i) {
    inst.Insert(r_, Tuple({Value::Int(i), Value::Int(7)}));
  }
  EXPECT_EQ(inst.Probe(r_, 1, Value::Int(7)).size(), 12u);
  EXPECT_EQ(inst.EraseRows(r_, {0, 6}), 2u);
  EXPECT_EQ(inst.Probe(r_, 1, Value::Int(7)).size(), 10u);
  EXPECT_EQ(inst.NumDistinct(r_, 1), 1u);
}

TEST_F(InstanceTest, EraseByTuple) {
  Instance inst(&schema_);
  inst.Insert(q_, Tuple({Value::Int(7)}));
  EXPECT_FALSE(inst.Erase(q_, Tuple({Value::Int(8)})));
  EXPECT_TRUE(inst.Erase(q_, Tuple({Value::Int(7)})));
  EXPECT_EQ(inst.NumTuples(q_), 0u);
}

TEST_F(InstanceTest, ReplaceContentsSwapsTuples) {
  Instance a(&schema_);
  a.Insert(q_, Tuple({Value::Int(1)}));
  Instance b(&schema_);
  b.Insert(q_, Tuple({Value::Int(2)}));
  b.Insert(q_, Tuple({Value::Int(3)}));
  a.ReplaceContents(std::move(b));
  EXPECT_EQ(a.NumTuples(q_), 2u);
  EXPECT_EQ(a.tuple(q_, 0), Tuple({Value::Int(2)}));
}

// --- version() audit: every content-mutation path must bump the version
// (PlanCache and the incremental route cache key on it; a missed bump is
// silent stale-plan corruption). The mutation paths are: Insert,
// ApplySubstitution, EraseRows/Erase, ReplaceContents.

TEST_F(InstanceTest, VersionBumpedByInsert) {
  Instance inst(&schema_);
  uint64_t v0 = inst.version();
  inst.Insert(q_, Tuple({Value::Int(1)}));
  EXPECT_GT(inst.version(), v0);
}

TEST_F(InstanceTest, VersionNotBumpedByDeduplicatedInsert) {
  // A dedup hit leaves the content untouched, so cached plans stay valid;
  // not bumping is intentional (it preserves cross-round plan reuse in the
  // chase).
  Instance inst(&schema_);
  inst.Insert(q_, Tuple({Value::Int(1)}));
  uint64_t v1 = inst.version();
  inst.Insert(q_, Tuple({Value::Int(1)}));
  EXPECT_EQ(inst.version(), v1);
}

TEST_F(InstanceTest, VersionBumpedByApplySubstitution) {
  Instance inst(&schema_);
  inst.Insert(q_, Tuple({Value::Null(1)}));
  uint64_t v1 = inst.version();
  inst.ApplySubstitution(NullId{1}, Value::Int(9));
  EXPECT_GT(inst.version(), v1);
}

TEST_F(InstanceTest, VersionBumpedByEraseRows) {
  Instance inst(&schema_);
  inst.Insert(q_, Tuple({Value::Int(1)}));
  uint64_t v1 = inst.version();
  inst.EraseRows(q_, {0});
  EXPECT_GT(inst.version(), v1);
  // An empty erase is a no-op and must not bump.
  uint64_t v2 = inst.version();
  inst.EraseRows(q_, {});
  EXPECT_EQ(inst.version(), v2);
}

TEST_F(InstanceTest, VersionBumpedByErase) {
  Instance inst(&schema_);
  inst.Insert(q_, Tuple({Value::Int(1)}));
  uint64_t v1 = inst.version();
  EXPECT_TRUE(inst.Erase(q_, Tuple({Value::Int(1)})));
  EXPECT_GT(inst.version(), v1);
  // Erasing an absent tuple is a no-op and must not bump.
  uint64_t v2 = inst.version();
  EXPECT_FALSE(inst.Erase(q_, Tuple({Value::Int(1)})));
  EXPECT_EQ(inst.version(), v2);
}

TEST_F(InstanceTest, VersionStrictlyAboveBothAfterReplaceContents) {
  // ReplaceContents must land strictly above BOTH versions: plan-cache
  // entries key on (instance pointer, version), so reusing any version the
  // old content ever had would alias plans across different contents.
  Instance a(&schema_);
  a.Insert(q_, Tuple({Value::Int(1)}));
  a.Insert(q_, Tuple({Value::Int(2)}));
  Instance b(&schema_);
  b.Insert(q_, Tuple({Value::Int(3)}));
  uint64_t va = a.version();
  uint64_t vb = b.version();
  a.ReplaceContents(std::move(b));
  EXPECT_GT(a.version(), va);
  EXPECT_GT(a.version(), vb);
}

}  // namespace
}  // namespace spider
