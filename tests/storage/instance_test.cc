#include "storage/instance.h"

#include <gtest/gtest.h>

#include "base/status.h"

namespace spider {
namespace {

class InstanceTest : public ::testing::Test {
 protected:
  InstanceTest() : schema_("test") {
    r_ = schema_.AddRelation("R", {"a", "b"});
    q_ = schema_.AddRelation("Q", {"x"});
  }
  Schema schema_;
  RelationId r_;
  RelationId q_;
};

TEST_F(InstanceTest, InsertAndRead) {
  Instance inst(&schema_);
  InsertResult res = inst.Insert(r_, Tuple({Value::Int(1), Value::Int(2)}));
  EXPECT_TRUE(res.inserted);
  EXPECT_EQ(res.row, 0);
  EXPECT_EQ(inst.NumTuples(r_), 1u);
  EXPECT_EQ(inst.tuple(r_, 0), Tuple({Value::Int(1), Value::Int(2)}));
}

TEST_F(InstanceTest, InsertDeduplicates) {
  Instance inst(&schema_);
  inst.Insert(r_, Tuple({Value::Int(1), Value::Int(2)}));
  InsertResult res = inst.Insert(r_, Tuple({Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(res.inserted);
  EXPECT_EQ(res.row, 0);
  EXPECT_EQ(inst.NumTuples(r_), 1u);
}

TEST_F(InstanceTest, InsertByName) {
  Instance inst(&schema_);
  inst.Insert("Q", {Value::Str("hello")});
  EXPECT_EQ(inst.NumTuples(q_), 1u);
  EXPECT_THROW(inst.Insert("Missing", {Value::Int(1)}), SpiderError);
}

TEST_F(InstanceTest, ArityMismatchRejected) {
  Instance inst(&schema_);
  EXPECT_THROW(inst.Insert(r_, Tuple({Value::Int(1)})), SpiderError);
}

TEST_F(InstanceTest, FindRow) {
  Instance inst(&schema_);
  inst.Insert(r_, Tuple({Value::Int(1), Value::Int(2)}));
  inst.Insert(r_, Tuple({Value::Int(3), Value::Int(4)}));
  EXPECT_EQ(inst.FindRow(r_, Tuple({Value::Int(3), Value::Int(4)})), 1);
  EXPECT_FALSE(inst.FindRow(r_, Tuple({Value::Int(9), Value::Int(9)}))
                   .has_value());
}

TEST_F(InstanceTest, TotalTuples) {
  Instance inst(&schema_);
  inst.Insert(r_, Tuple({Value::Int(1), Value::Int(2)}));
  inst.Insert(q_, Tuple({Value::Int(7)}));
  inst.Insert(q_, Tuple({Value::Int(8)}));
  EXPECT_EQ(inst.TotalTuples(), 3u);
}

TEST_F(InstanceTest, ProbeFindsMatchingRows) {
  Instance inst(&schema_);
  inst.Insert(r_, Tuple({Value::Int(1), Value::Int(10)}));
  inst.Insert(r_, Tuple({Value::Int(2), Value::Int(10)}));
  inst.Insert(r_, Tuple({Value::Int(1), Value::Int(20)}));
  const std::vector<int32_t>& rows = inst.Probe(r_, 0, Value::Int(1));
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(inst.Probe(r_, 1, Value::Int(10)).size(), 2u);
  EXPECT_TRUE(inst.Probe(r_, 0, Value::Int(99)).empty());
}

TEST_F(InstanceTest, ProbeIndexMaintainedIncrementally) {
  Instance inst(&schema_);
  inst.Insert(r_, Tuple({Value::Int(1), Value::Int(10)}));
  EXPECT_EQ(inst.Probe(r_, 0, Value::Int(1)).size(), 1u);  // builds index
  inst.Insert(r_, Tuple({Value::Int(1), Value::Int(30)}));
  EXPECT_EQ(inst.Probe(r_, 0, Value::Int(1)).size(), 2u);
}

TEST_F(InstanceTest, ContainsNulls) {
  Instance inst(&schema_);
  inst.Insert(r_, Tuple({Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(inst.ContainsNulls());
  inst.Insert(q_, Tuple({Value::Null(1)}));
  EXPECT_TRUE(inst.ContainsNulls());
}

TEST_F(InstanceTest, ApplySubstitutionRewritesCells) {
  Instance inst(&schema_);
  inst.Insert(r_, Tuple({Value::Null(1), Value::Int(2)}));
  inst.Insert(q_, Tuple({Value::Null(1)}));
  size_t rewritten = inst.ApplySubstitution(NullId{1}, Value::Int(9));
  EXPECT_EQ(rewritten, 2u);
  EXPECT_EQ(inst.tuple(r_, 0), Tuple({Value::Int(9), Value::Int(2)}));
  EXPECT_EQ(inst.tuple(q_, 0), Tuple({Value::Int(9)}));
  EXPECT_FALSE(inst.ContainsNulls());
}

TEST_F(InstanceTest, ApplySubstitutionMergesDuplicates) {
  Instance inst(&schema_);
  inst.Insert(q_, Tuple({Value::Null(1)}));
  inst.Insert(q_, Tuple({Value::Int(9)}));
  inst.ApplySubstitution(NullId{1}, Value::Int(9));
  EXPECT_EQ(inst.NumTuples(q_), 1u);
}

TEST_F(InstanceTest, ApplySubstitutionNullToNull) {
  Instance inst(&schema_);
  inst.Insert(q_, Tuple({Value::Null(2)}));
  inst.ApplySubstitution(NullId{2}, Value::Null(1));
  EXPECT_EQ(inst.tuple(q_, 0), Tuple({Value::Null(1)}));
}

TEST_F(InstanceTest, ProbeAfterSubstitutionIsConsistent) {
  Instance inst(&schema_);
  inst.Insert(r_, Tuple({Value::Null(1), Value::Int(2)}));
  EXPECT_EQ(inst.Probe(r_, 0, Value::Null(1)).size(), 1u);
  inst.ApplySubstitution(NullId{1}, Value::Int(5));
  EXPECT_TRUE(inst.Probe(r_, 0, Value::Null(1)).empty());
  EXPECT_EQ(inst.Probe(r_, 0, Value::Int(5)).size(), 1u);
}

TEST_F(InstanceTest, ToStringListsFacts) {
  Instance inst(&schema_);
  inst.Insert(r_, Tuple({Value::Int(1), Value::Str("x")}));
  EXPECT_EQ(inst.ToString(), "R(1, \"x\")\n");
}

TEST_F(InstanceTest, RequiresSchema) {
  EXPECT_THROW(Instance(nullptr), SpiderError);
}

}  // namespace
}  // namespace spider
