#ifndef SPIDER_TESTS_TESTING_FIXTURES_H_
#define SPIDER_TESTS_TESTING_FIXTURES_H_

#include <string>

#include "chase/chase.h"
#include "mapping/parser.h"
#include "mapping/scenario.h"

namespace spider::testing {

/// The paper's running example (Figures 1 and 2): the Manhattan Credit /
/// Fargo Bank -> Fargo Finance mapping with the source instance I and the
/// solution J exactly as printed. Tuple names follow the figure (s1..s6,
/// t1..t10), in insertion order.
inline std::string CreditCardScenarioText() {
  return R"(
source schema {
  Cards(cardNo, limit, ssn, name, maidenName, salary, location);
  SupplementaryCards(accNo, ssn, name, address);
  FBAccounts(bankNo, ssn, name, income, address);
  CreditCards(cardNo, creditLimit, custSSN);
}
target schema {
  Accounts(accNo, limit, accHolder);
  Clients(ssn, name, maidenName, income, address);
}
m1: Cards(cn,l,s,n,m,sal,loc) ->
      exists A . Accounts(cn,l,s) & Clients(s,m,m,sal,A);
m2: SupplementaryCards(an,s,n,a) -> exists M, I . Clients(s,n,M,I,a);
m3: FBAccounts(bn,s,n,i,a) & CreditCards(cn,cl,cs) ->
      exists M . Accounts(cn,cl,cs) & Clients(cs,n,M,i,a);
m4: Accounts(a,l,s) -> exists N, M, I, A2 . Clients(s,N,M,I,A2);
m5: Clients(s,n,m,i,a) -> exists N, L . Accounts(N,L,s);
m6: Accounts(a,l,s) & Accounts(a2,l2,s) -> l = l2;

source instance {
  Cards(6689, "15K", 434, "J. Long", "Smith", "50K", "Seattle");   // s1
  SupplementaryCards(6689, 234, "A. Long", "California");          // s2
  FBAccounts(1001, 234, "A. Long", "30K", "California");           // s3
  FBAccounts(4341, 153, "C. Don", "900K", "New York");             // s4
  CreditCards(2252, "2K", 234);                                    // s5
  CreditCards(5539, "40K", 153);                                   // s6
}
target instance {
  Accounts(6689, "15K", 434);                                      // t1
  Accounts(#N1, "2K", 234);                                        // t2
  Accounts(2252, "2K", 234);                                       // t3
  Accounts(5539, "40K", 153);                                      // t4
  Clients(434, "Smith", "Smith", "50K", #A1);                      // t5
  Clients(234, "A. Long", #M1, #I1, "California");                 // t6
  Clients(153, "A. Long", #M2, "30K", "California");               // t7
  Clients(234, "A. Long", #M3, "30K", "California");               // t8
  Clients(153, "C. Don", #M4, "900K", "New York");                 // t9
  Clients(234, "C. Don", #M5, "900K", "New York");                 // t10
}
)";
}

inline Scenario CreditCardScenario() {
  return ParseScenario(CreditCardScenarioText());
}

/// Example 3.5 / Fig. 5: the sigma1..sigma8 mapping over unary relations.
/// sigma7 is declared before sigma3 so that exploration visits the sigma7
/// branch of T3(a) first, matching the paper's trace of both algorithms.
/// `extended` adds sigma9 (S3(x) -> T5(x)), sigma10
/// (T5(x) & T8(y) -> T3(x)) and the source tuple S3(a) plus T8 facts — the
/// dotted branches of Fig. 5.
inline std::string Example35Text(bool extended, int num_t8 = 2) {
  std::string text = R"(
source schema { S1(a); S2(a); S3(a); }
target schema { T1(a); T2(a); T3(a); T4(a); T5(a); T6(a); T7(a); T8(a); }
sigma1: S1(x) -> T1(x);
sigma2: S2(x) -> T2(x);
sigma7: T5(x) -> T3(x);
sigma3: T2(x) -> T3(x);
sigma4: T3(x) -> T4(x);
sigma5: T4(x) & T1(x) -> T5(x);
sigma6: T4(x) & T6(x) -> T7(x);
sigma8: T5(x) -> T6(x);
)";
  if (extended) {
    text += R"(
sigma9: S3(x) -> T5(x);
sigma10: T5(x) & T8(y) -> T3(x);
)";
  }
  text += R"(
source instance { S1("a"); S2("a"); )";
  if (extended) text += R"(S3("a"); )";
  text += R"(}
target instance {
  T1("a"); T2("a"); T3("a"); T4("a"); T5("a"); T6("a"); T7("a");
)";
  if (extended) {
    for (int i = 1; i <= num_t8; ++i) {
      text += "  T8(\"b" + std::to_string(i) + "\");\n";
    }
  }
  text += "}\n";
  return text;
}

/// §5.1's transitive-closure example: sigma1 copies S into T, sigma2 closes
/// T transitively. I = {S(1,2), S(2,3)}; J = {T(1,2), T(2,3), T(1,3)}.
inline std::string TransitiveClosureText() {
  return R"(
source schema { S(x, y); }
target schema { T(x, y); }
sigma1: S(x,y) -> T(x,y);
sigma2: T(x,y) & T(y,z) -> T(x,z);
source instance { S(1,2); S(2,3); }
target instance { T(1,2); T(2,3); T(1,3); }
)";
}

}  // namespace spider::testing

#endif  // SPIDER_TESTS_TESTING_FIXTURES_H_
