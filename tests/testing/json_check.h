#ifndef SPIDER_TESTS_TESTING_JSON_CHECK_H_
#define SPIDER_TESTS_TESTING_JSON_CHECK_H_

// A minimal recursive-descent JSON reader for schema-checking the JSON the
// library emits (metrics dumps, Chrome trace files, bench reports) without
// pulling a JSON dependency into the build. It parses the full grammar the
// emitters use — objects, arrays, strings with \-escapes, numbers, true/
// false/null — into a small document tree. Not a general-purpose parser:
// error reporting is a position in `error`, and numbers are kept as text.

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace spider::testing {

struct JsonValue {
  enum class Kind { kObject, kArray, kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  // Object members keep insertion order so key-order assertions are possible.
  std::vector<std::pair<std::string, std::unique_ptr<JsonValue>>> members;
  std::vector<std::unique_ptr<JsonValue>> items;
  std::string string_value;  // kString: decoded; kNumber: raw text.
  bool bool_value = false;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return v.get();
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string text) : text_(std::move(text)) {}

  /// Parses the whole input; returns nullptr (and sets error()) on any
  /// syntax violation, including trailing garbage.
  std::unique_ptr<JsonValue> Parse() {
    pos_ = 0;
    error_.clear();
    std::unique_ptr<JsonValue> value = ParseValue();
    if (value == nullptr) return nullptr;
    SkipSpace();
    if (pos_ != text_.size()) {
      Fail("trailing characters");
      return nullptr;
    }
    return value;
  }

  const std::string& error() const { return error_; }

 private:
  void Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::unique_ptr<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return nullptr;
    }
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    if (ParseKeyword("true")) return MakeBool(true);
    if (ParseKeyword("false")) return MakeBool(false);
    if (ParseKeyword("null")) return std::make_unique<JsonValue>();
    Fail("unexpected character");
    return nullptr;
  }

  bool ParseKeyword(const char* word) {
    size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  static std::unique_ptr<JsonValue> MakeBool(bool b) {
    auto v = std::make_unique<JsonValue>();
    v->kind = JsonValue::Kind::kBool;
    v->bool_value = b;
    return v;
  }

  std::unique_ptr<JsonValue> ParseObject() {
    ++pos_;  // '{'
    auto v = std::make_unique<JsonValue>();
    v->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return v;
    while (true) {
      std::unique_ptr<JsonValue> key = ParseString();
      if (key == nullptr) return nullptr;
      if (!Consume(':')) {
        Fail("expected ':'");
        return nullptr;
      }
      std::unique_ptr<JsonValue> value = ParseValue();
      if (value == nullptr) return nullptr;
      v->members.emplace_back(key->string_value, std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      Fail("expected ',' or '}'");
      return nullptr;
    }
  }

  std::unique_ptr<JsonValue> ParseArray() {
    ++pos_;  // '['
    auto v = std::make_unique<JsonValue>();
    v->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return v;
    while (true) {
      std::unique_ptr<JsonValue> item = ParseValue();
      if (item == nullptr) return nullptr;
      v->items.push_back(std::move(item));
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      Fail("expected ',' or ']'");
      return nullptr;
    }
  }

  std::unique_ptr<JsonValue> ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      Fail("expected string");
      return nullptr;
    }
    ++pos_;
    auto v = std::make_unique<JsonValue>();
    v->kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\n' || c == '\r') {
        Fail("raw newline in string");
        return nullptr;
      }
      if (c != '\\') {
        v->string_value.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"': v->string_value.push_back('"'); break;
        case '\\': v->string_value.push_back('\\'); break;
        case '/': v->string_value.push_back('/'); break;
        case 'b': v->string_value.push_back('\b'); break;
        case 'f': v->string_value.push_back('\f'); break;
        case 'n': v->string_value.push_back('\n'); break;
        case 'r': v->string_value.push_back('\r'); break;
        case 't': v->string_value.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
            return nullptr;
          }
          // Decoded as a code-point marker only; the emitters stay ASCII.
          v->string_value.push_back('?');
          pos_ += 4;
          break;
        }
        default:
          Fail("bad escape");
          return nullptr;
      }
    }
    Fail("unterminated string");
    return nullptr;
  }

  std::unique_ptr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) {
      Fail("expected digits");
      return nullptr;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) {
        Fail("expected fraction digits");
        return nullptr;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) {
        Fail("expected exponent digits");
        return nullptr;
      }
    }
    auto v = std::make_unique<JsonValue>();
    v->kind = JsonValue::Kind::kNumber;
    v->string_value = text_.substr(start, pos_ - start);
    return v;
  }

  const std::string text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace spider::testing

#endif  // SPIDER_TESTS_TESTING_JSON_CHECK_H_
