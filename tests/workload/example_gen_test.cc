#include "workload/example_gen.h"

#include <set>

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "mapping/parser.h"
#include "query/evaluator.h"
#include "routes/one_route.h"
#include "testing/fixtures.h"

namespace spider {
namespace {

TEST(ExampleGenTest, EveryStTgdFires) {
  Scenario s = testing::CreditCardScenario();
  // Start from an empty source.
  s.source = std::make_unique<Instance>(&s.mapping->source());
  s.target = std::make_unique<Instance>(&s.mapping->target());
  size_t inserted = GenerateIllustrativeSource(&s);
  EXPECT_GT(inserted, 0u);
  // Every s-t tgd has at least one LHS match.
  for (TgdId id : s.mapping->st_tgds()) {
    const Tgd& tgd = s.mapping->tgd(id);
    EXPECT_TRUE(HasMatch(*s.source, tgd.lhs(), Binding(tgd.num_vars())))
        << tgd.name();
  }
}

TEST(ExampleGenTest, ChasedExampleAnswersRoutesForEveryTgd) {
  Scenario s = testing::CreditCardScenario();
  s.source = std::make_unique<Instance>(&s.mapping->source());
  s.target = std::make_unique<Instance>(&s.mapping->target());
  GenerateIllustrativeSource(&s);
  ChaseScenario(&s);
  // Every target fact has a route, and collectively the routes exercise
  // every s-t tgd.
  std::set<TgdId> used;
  for (size_t r = 0; r < s.target->NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    for (int32_t row = 0;
         row < static_cast<int32_t>(s.target->NumTuples(rel)); ++row) {
      OneRouteResult result = ComputeOneRoute(
          *s.mapping, *s.source, *s.target, {FactRef{Side::kTarget, rel,
                                                     row}});
      ASSERT_TRUE(result.found);
      for (const SatStep& step : result.route.steps()) used.insert(step.tgd);
    }
  }
  for (TgdId id : s.mapping->st_tgds()) {
    EXPECT_TRUE(used.count(id) > 0)
        << s.mapping->tgd(id).name() << " never used";
  }
}

TEST(ExampleGenTest, JoinConditionsHoldByConstruction) {
  Scenario s = ParseScenario(R"(
    source schema { R(a, b); Q(b, c); }
    target schema { T(a, c); }
    m: R(x, y) & Q(y, z) -> T(x, z);
  )");
  GenerateIllustrativeSource(&s);
  // The R and Q rows share the join value on b.
  const Tuple& r = s.source->tuples(0)[0];
  const Tuple& q = s.source->tuples(1)[0];
  EXPECT_EQ(r.at(1), q.at(0));
}

TEST(ExampleGenTest, RowsPerTgdScales) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); }
    target schema { T(a); }
    m: R(x) -> T(x);
  )");
  ExampleGenOptions options;
  options.rows_per_tgd = 5;
  EXPECT_EQ(GenerateIllustrativeSource(&s, options), 5u);
}

TEST(ExampleGenTest, IntegerMode) {
  Scenario s = ParseScenario(R"(
    source schema { R(a, b); }
    target schema { T(a); }
    m: R(x, y) -> T(x);
  )");
  ExampleGenOptions options;
  options.use_integers = true;
  GenerateIllustrativeSource(&s, options);
  EXPECT_EQ(s.source->tuple(0, 0).at(0).kind(), Value::Kind::kInt);
}

TEST(ExampleGenTest, DistinctTgdsDoNotShareValues) {
  Scenario s = ParseScenario(R"(
    source schema { R(a); Q(a); }
    target schema { T(a); U(a); }
    m1: R(x) -> T(x);
    m2: Q(x) -> U(x);
  )");
  GenerateIllustrativeSource(&s);
  EXPECT_NE(s.source->tuple(0, 0).at(0), s.source->tuple(1, 0).at(0));
}

}  // namespace
}  // namespace spider
