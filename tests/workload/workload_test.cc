#include <gtest/gtest.h>

#include "chase/chase.h"
#include "chase/solution_check.h"
#include "routes/one_route.h"
#include "workload/hierarchy_scenario.h"
#include "workload/real_scenarios.h"
#include "workload/relational_scenario.h"
#include "workload/tpch.h"

namespace spider {
namespace {

TEST(TpchTest, SizesScaleWithUnits) {
  TpchSizes small;
  small.units = 1;
  TpchSizes big;
  big.units = 10;
  EXPECT_EQ(big.suppliers(), 10 * small.suppliers());
  EXPECT_EQ(small.regions(), big.regions());
  EXPECT_GT(big.total(), small.total());
}

TEST(TpchTest, GeneratedDataIsReferentiallyConsistent) {
  Schema schema("s");
  AddTpchRelations(&schema, "0");
  Instance inst(&schema);
  TpchSizes sizes;
  sizes.units = 3;
  GenerateTpchData(&inst, "0", sizes, /*seed=*/7);
  EXPECT_EQ(inst.TotalTuples(), sizes.total());
  // Every Lineitem (partkey, suppkey) pair exists in Partsupp.
  RelationId lineitem = schema.Require("Lineitem0");
  RelationId partsupp = schema.Require("Partsupp0");
  for (const Tuple& l : inst.tuples(lineitem)) {
    bool found = false;
    for (int32_t row : inst.Probe(partsupp, 0, l.at(1))) {
      if (inst.tuple(partsupp, row).at(1) == l.at(2)) found = true;
    }
    EXPECT_TRUE(found) << l.ToString();
  }
}

TEST(TpchTest, GenerationIsDeterministic) {
  Schema schema("s");
  AddTpchRelations(&schema, "0");
  Instance a(&schema);
  Instance b(&schema);
  TpchSizes sizes;
  sizes.units = 2;
  GenerateTpchData(&a, "0", sizes, 42);
  GenerateTpchData(&b, "0", sizes, 42);
  for (size_t r = 0; r < schema.size(); ++r) {
    EXPECT_EQ(a.tuples(static_cast<RelationId>(r)),
              b.tuples(static_cast<RelationId>(r)));
  }
}

class RelationalScenarioTest : public ::testing::TestWithParam<int> {};

TEST_P(RelationalScenarioTest, ChasesToSolutionForAllJoinCounts) {
  RelationalScenarioOptions options;
  options.joins = GetParam();
  options.groups = 3;
  options.sizes.units = 2;
  Scenario s = BuildRelationalScenario(options);
  ChaseScenario(&s);
  EXPECT_GT(s.target->TotalTuples(), 0u);
  std::string why;
  EXPECT_TRUE(IsSolution(*s.mapping, *s.source, *s.target, &why)) << why;
}

TEST_P(RelationalScenarioTest, GroupFactsHaveExpectedRouteLength) {
  RelationalScenarioOptions options;
  options.joins = GetParam();
  options.groups = 3;
  options.sizes.units = 2;
  Scenario s = BuildRelationalScenario(options);
  ChaseScenario(&s);
  // A fact in group g has M/T factor g: its minimal route has g steps
  // (1 s-t + (g-1) target copy steps) — for 0/1 join templates each step
  // witnesses all tuples of its template, so the ComputeOneRoute result
  // minimizes to exactly g steps.
  for (int group = 1; group <= 3; ++group) {
    std::vector<FactRef> facts = SelectGroupFacts(s, group, 1, /*seed=*/5);
    ASSERT_EQ(facts.size(), 1u);
    OneRouteResult result =
        ComputeOneRoute(*s.mapping, *s.source, *s.target, facts);
    ASSERT_TRUE(result.found) << "group " << group;
    Route minimal = result.route.Minimize(*s.mapping, *s.source, *s.target,
                                          facts);
    EXPECT_EQ(minimal.size(), static_cast<size_t>(group));
  }
}

INSTANTIATE_TEST_SUITE_P(Joins, RelationalScenarioTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(RelationalScenarioShapeTest, MappingShapeMatchesPaper) {
  RelationalScenarioOptions options;
  options.joins = 1;
  options.groups = 6;
  options.sizes.units = 1;
  Scenario s = BuildRelationalScenario(options);
  // 4 templates for 1 join: 4 s-t tgds and 5x4 target tgds.
  EXPECT_EQ(s.mapping->st_tgds().size(), 4u);
  EXPECT_EQ(s.mapping->target_tgds().size(), 20u);
  // 8 source relations, 48 target relations.
  EXPECT_EQ(s.mapping->source().size(), 8u);
  EXPECT_EQ(s.mapping->target().size(), 48u);
}

TEST(DeepHierarchyTest, ChasesAndSelectsAtEveryDepth) {
  DeepHierarchyOptions options;
  options.regions = 2;
  options.fanout = 2;
  Scenario s = BuildDeepHierarchyScenario(options);
  ChaseScenario(&s);
  std::string why;
  EXPECT_TRUE(IsSolution(*s.mapping, *s.source, *s.target, &why)) << why;
  for (int depth = 1; depth <= 5; ++depth) {
    std::vector<FactRef> facts = SelectDepthFacts(s, depth, 2, 7);
    ASSERT_FALSE(facts.empty());
    OneRouteResult result =
        ComputeOneRoute(*s.mapping, *s.source, *s.target, facts);
    EXPECT_TRUE(result.found) << "depth " << depth;
  }
}

TEST(DeepHierarchyTest, DeeperSelectionsYieldFewerEagerAssignments) {
  // The Fig. 11 mechanism: with eager (XML-style) evaluation, probing a
  // shallow element enumerates every path below it, a deep element pins
  // the whole path.
  DeepHierarchyOptions options;
  options.regions = 2;
  options.fanout = 3;
  Scenario s = BuildDeepHierarchyScenario(options);
  ChaseScenario(&s);
  RouteOptions eager;
  eager.eager_findhom = true;
  std::vector<FactRef> shallow = SelectDepthFacts(s, 1, 1, 3);
  std::vector<FactRef> deep = SelectDepthFacts(s, 5, 1, 3);
  OneRouteResult r_shallow =
      ComputeOneRoute(*s.mapping, *s.source, *s.target, shallow, eager);
  OneRouteResult r_deep =
      ComputeOneRoute(*s.mapping, *s.source, *s.target, deep, eager);
  ASSERT_TRUE(r_shallow.found);
  ASSERT_TRUE(r_deep.found);
  // findhom_successes counts enumerated assignments.
  EXPECT_GT(r_shallow.stats.findhom_successes,
            r_deep.stats.findhom_successes);
}

TEST(FlatHierarchyTest, BuildsAndChases) {
  FlatHierarchyOptions options;
  options.joins = 1;
  options.groups = 2;
  options.units = 1;
  Scenario s = BuildFlatHierarchyScenario(options);
  ChaseScenario(&s);
  EXPECT_GT(s.target->TotalTuples(), 0u);
  std::string why;
  EXPECT_TRUE(IsSolution(*s.mapping, *s.source, *s.target, &why)) << why;
  // Every relation has the rootid column first.
  EXPECT_EQ(s.mapping->source().relation(0).attribute(0), "rootid");
}

TEST(RealScenariosTest, DblpBuildsChasesAndAnswersRoutes) {
  RealScenarioOptions options;
  options.units = 2;
  Scenario s = BuildDblpScenario(options);
  ChaseScenario(&s);
  std::string why;
  EXPECT_TRUE(IsSolution(*s.mapping, *s.source, *s.target, &why)) << why;
  ScenarioStats stats = ComputeStats(s);
  EXPECT_EQ(stats.st_tgds, 12u);
  EXPECT_EQ(stats.target_tgds, 14u);
  EXPECT_GT(stats.target_tuples, stats.source_tuples / 2);
  // Probe a random publication.
  RelationId pubs = s.mapping->target().Require("APublication");
  ASSERT_GT(s.target->NumTuples(pubs), 0u);
  OneRouteResult result = ComputeOneRoute(
      *s.mapping, *s.source, *s.target, {FactRef{Side::kTarget, pubs, 0}});
  EXPECT_TRUE(result.found);
}

TEST(RealScenariosTest, MondialBuildsChasesAndAnswersRoutes) {
  RealScenarioOptions options;
  options.units = 2;
  Scenario s = BuildMondialScenario(options);
  ChaseScenario(&s);
  std::string why;
  EXPECT_TRUE(IsSolution(*s.mapping, *s.source, *s.target, &why)) << why;
  ScenarioStats stats = ComputeStats(s);
  EXPECT_EQ(stats.st_tgds, 17u);
  EXPECT_EQ(stats.target_tgds, 25u);
  RelationId cities = s.mapping->target().Require("NCity");
  ASSERT_GT(s.target->NumTuples(cities), 0u);
  OneRouteResult result = ComputeOneRoute(
      *s.mapping, *s.source, *s.target, {FactRef{Side::kTarget, cities, 0}});
  EXPECT_TRUE(result.found);
}

TEST(RealScenariosTest, StatsInTable1Ballpark) {
  Scenario dblp = BuildDblpScenario();
  ScenarioStats stats = ComputeStats(dblp);
  // Table 1: DBLP sources 65+20 elements, Amalgam target 117. Our
  // emulation is in the same ballpark.
  EXPECT_GT(stats.source_elements, 50u);
  EXPECT_GT(stats.target_elements, 50u);
  Scenario mondial = BuildMondialScenario();
  ScenarioStats mstats = ComputeStats(mondial);
  EXPECT_GT(mstats.source_elements, 80u);
  EXPECT_GT(mstats.target_elements, 50u);
}

}  // namespace
}  // namespace spider
