#!/usr/bin/env python3
"""Repo-invariant lint: rejects patterns that break spider's determinism
contracts before they reach review.

Rules
-----
  clock-in-engine
      The chase, route, executor, and algebra layers (src/chase,
      src/routes, src/exec, src/algebra) must be time-free: results and
      stats are byte-identical
      across runs, so no steady_clock/system_clock/high_resolution_clock
      reads are allowed there. Timing belongs to bench/ and src/obs.

  unordered-serialize
      Iterating an unordered container directly into serialized output
      (streams, string +=/append) ships hash-order bytes, which vary
      across libstdc++ versions and ASLR seeds. Sort first (or iterate a
      dense index) before rendering.

Escape hatch: a line (or its predecessor) carrying
    // invariant-lint: allow(<rule-name>)
is exempt — use it when the output provably does not depend on iteration
order (e.g. accumulating a sum).

Usage
-----
    invariant_lint.py [--root DIR]   # lint the tree (exit 1 on findings)
    invariant_lint.py --self-test    # prove both rules catch seeded
                                     # violations and honor allow()
"""

import argparse
import os
import re
import sys
import tempfile

CLOCK_RULE = "clock-in-engine"
UNORDERED_RULE = "unordered-serialize"

# Directories whose code must never read a clock. src/query is included so
# plans and match order can never depend on timing; the one sanctioned
# exception is the cost-model calibration harness, whose clock reads carry
# explicit allow(clock-in-engine) markers.
CLOCK_FREE_DIRS = ("src/chase", "src/routes", "src/exec", "src/algebra",
                   "src/query")
# Directories scanned for unordered-iteration-into-output.
SERIALIZE_DIRS = ("src",)

CLOCK_RE = re.compile(
    r"\b(steady_clock|system_clock|high_resolution_clock)\b")
ALLOW_RE = re.compile(r"//\s*invariant-lint:\s*allow\(([a-z\-,\s]+)\)")
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*&?\s*"
    r"(\w+)\s*[;={(,)]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*?:\s*([^)]+)\)")
# Serialization sinks: stream insertion or string growth on a conventional
# output accumulator.
SINK_RE = re.compile(
    r"(\b(?:out|os|oss|buffer|text|result|json|stream)\w*\s*(?:\+=|<<))"
    r"|\.append\s*\(")


def allowed(lines, index, rule):
    """True when line `index` (0-based) or the one above carries an
    allow(...) naming `rule`."""
    for probe in (index, index - 1):
        if probe < 0:
            continue
        match = ALLOW_RE.search(lines[probe])
        if match and rule in [r.strip() for r in match.group(1).split(",")]:
            return True
    return False


def lint_clock(path, lines):
    findings = []
    for i, line in enumerate(lines):
        if CLOCK_RE.search(line) and not allowed(lines, i, CLOCK_RULE):
            findings.append((path, i + 1, CLOCK_RULE,
                             "clock read in a determinism-critical layer: "
                             + line.strip()))
    return findings


def lint_unordered(path, lines):
    """Flags range-fors over unordered containers whose body feeds a
    serialization sink within the loop's lexical extent."""
    unordered_names = set()
    for line in lines:
        for match in UNORDERED_DECL_RE.finditer(line):
            unordered_names.add(match.group(1))
    if not unordered_names:
        return []

    findings = []
    for i, line in enumerate(lines):
        match = RANGE_FOR_RE.search(line)
        if not match:
            continue
        range_expr = match.group(1)
        words = set(re.findall(r"\w+", range_expr))
        if not (words & unordered_names):
            continue
        # Walk the loop body: from the for-line until its brace closes
        # (or a 12-line heuristic window for brace-less bodies).
        depth = 0
        opened = False
        for j in range(i, min(i + 40, len(lines))):
            depth += lines[j].count("{") - lines[j].count("}")
            if "{" in lines[j]:
                opened = True
            body_line = lines[j]
            if SINK_RE.search(body_line):
                if not (allowed(lines, j, UNORDERED_RULE)
                        or allowed(lines, i, UNORDERED_RULE)):
                    findings.append(
                        (path, i + 1, UNORDERED_RULE,
                         "unordered iteration feeds serialized output at "
                         f"line {j + 1}: {body_line.strip()}"))
                break
            if opened and depth <= 0:
                break
            if not opened and j > i + 12:
                break
    return findings


def lint_tree(root):
    findings = []
    for rel_dirs, rule_fn, needs_clock_dir in (
            (CLOCK_FREE_DIRS, lint_clock, True),
            (SERIALIZE_DIRS, lint_unordered, False)):
        for rel in rel_dirs:
            base = os.path.join(root, rel)
            if not os.path.isdir(base):
                continue
            for dirpath, _, filenames in os.walk(base):
                for name in sorted(filenames):
                    if not name.endswith((".h", ".cc", ".cpp")):
                        continue
                    path = os.path.join(dirpath, name)
                    with open(path, encoding="utf-8") as f:
                        lines = f.read().splitlines()
                    findings.extend(rule_fn(os.path.relpath(path, root),
                                            lines))
    return findings


SELF_TEST_CLOCK = """\
#include <chrono>
void Tick() {
  auto t = std::chrono::steady_clock::now();
  (void)t;
}
"""

SELF_TEST_CLOCK_ALLOWED = """\
#include <chrono>
void Tick() {
  // invariant-lint: allow(clock-in-engine)
  auto t = std::chrono::steady_clock::now();
  (void)t;
}
"""

SELF_TEST_UNORDERED = """\
#include <string>
#include <unordered_map>
std::string Render(const std::unordered_map<int, int>& counts) {
  std::string out;
  for (const auto& [k, v] : counts) {
    out += std::to_string(k);
  }
  return out;
}
"""

SELF_TEST_UNORDERED_ALLOWED = """\
#include <string>
#include <unordered_map>
std::string Render(const std::unordered_map<int, int>& counts) {
  std::string out;
  // invariant-lint: allow(unordered-serialize)
  for (const auto& [k, v] : counts) {
    out += std::to_string(k);
  }
  return out;
}
"""


def self_test():
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        for rel, content in (
                ("src/chase/seeded_clock.cc", SELF_TEST_CLOCK),
                ("src/chase/allowed_clock.cc", SELF_TEST_CLOCK_ALLOWED),
                ("src/algebra/seeded_algebra_clock.cc", SELF_TEST_CLOCK),
                ("src/render/seeded_unordered.cc", SELF_TEST_UNORDERED),
                ("src/render/allowed_unordered.cc",
                 SELF_TEST_UNORDERED_ALLOWED)):
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        findings = lint_tree(tmp)
        by_file = {os.path.basename(f[0]) for f in findings}
        if "seeded_clock.cc" not in by_file:
            failures.append("clock rule missed the seeded violation")
        if "seeded_algebra_clock.cc" not in by_file:
            failures.append("clock rule missed the src/algebra violation")
        if "allowed_clock.cc" in by_file:
            failures.append("clock rule ignored allow()")
        if "seeded_unordered.cc" not in by_file:
            failures.append("unordered rule missed the seeded violation")
        if "allowed_unordered.cc" in by_file:
            failures.append("unordered rule ignored allow()")
    if failures:
        for failure in failures:
            print("self-test FAILED:", failure, file=sys.stderr)
        return 1
    print("self-test OK: both rules catch seeded violations and honor "
          "allow()")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules against seeded violations")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_tree(args.root)
    for path, line, rule, message in findings:
        print(f"{path}:{line}: [{rule}] {message}")
    if findings:
        print(f"{len(findings)} invariant violation(s)", file=sys.stderr)
        return 1
    print("invariant-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
